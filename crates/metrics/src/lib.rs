//! Run-metrics observability layer for the PIM scheduling pipeline.
//!
//! A [`Metrics`] handle is a cheap, clonable sink that the scheduling stack
//! threads through its hot paths. It is **zero-cost when disabled**: the
//! disabled handle holds no allocation, every recording method is a single
//! `Option` check that returns immediately, and no clock is ever read. When
//! enabled (one `Arc` allocation), recorders are lock-free atomic adds —
//! phase timers take a short mutex only on scope exit.
//!
//! What the stack records:
//!
//! * **cache behavior** — lazy prefix-table builds, queries served from
//!   prefix tables, and queries served from the raw projections
//!   ([`CacheStats`], installed into the cost cache by the scheduling
//!   context);
//! * **capacity displacement** — for every datum placed under a bounded
//!   memory policy, how far below the optimal center (rank 0 in the
//!   scheduler's candidate list) it actually landed;
//! * **phase timings** — wall time per named phase (whole scheduler runs,
//!   and the phase-1 parallel / phase-2 capacity-replay split inside the
//!   two-phase bounded schedulers);
//! * **pool utilization** — jobs, per-worker task counts, and condvar
//!   parks from the `pim-par` worker pool, recorded as a per-run delta
//!   ([`PoolUsage`]).
//!
//! Recording **never** influences scheduling decisions; the registry-wide
//! conformance property in `tests/cache_equivalence.rs` proves every
//! schedule is bit-identical with metrics enabled vs. disabled.
//!
//! [`MetricsReport`] is the frozen snapshot; [`MetricsReport::to_json`]
//! renders it as a JSON object (hand-rolled — the vendored serde shim has
//! no serializer) for embedding into a `RunReport` or a bench row.

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Counters for cost-cache behavior. Shared (via `Arc`) between the
/// [`Metrics`] sink and the per-datum cost caches it is installed into.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lazy prefix-table builds (at most one per datum per cache).
    pub prefix_builds: AtomicU64,
    /// Range queries served from the prefix tables.
    pub prefix_hits: AtomicU64,
    /// Range queries served directly from the raw per-axis projections
    /// (single-window or full-range, where no tables are needed).
    pub raw_serves: AtomicU64,
    /// Per-datum prefix tables discarded because an edit rewrote the
    /// datum's reference string (incremental rescheduling only).
    pub invalidations: AtomicU64,
    /// Built prefix tables extended in place by append-only window edits
    /// instead of being rebuilt from scratch.
    pub prefix_extends: AtomicU64,
}

#[derive(Debug, Default)]
struct IncrementalStats {
    resolves: AtomicU64,
    dirty_data: AtomicU64,
    fallbacks: AtomicU64,
}

#[derive(Debug, Default)]
struct PlacementStats {
    placements: AtomicU64,
    displaced: AtomicU64,
    total_displacement: AtomicU64,
    max_displacement: AtomicU64,
}

/// Pool-utilization delta over one run of the `pim-par` worker pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct PoolUsage {
    /// Parallel jobs submitted to the pool.
    pub jobs: u64,
    /// Items executed on pool worker threads.
    pub worker_tasks: u64,
    /// Items executed on the submitting thread (it always participates).
    pub submitter_tasks: u64,
    /// Items executed by the busiest single worker thread.
    pub max_worker_tasks: u64,
    /// Times a worker parked on the condvar waiting for work.
    pub parks: u64,
}

impl PoolUsage {
    fn accumulate(&mut self, other: PoolUsage) {
        self.jobs += other.jobs;
        self.worker_tasks += other.worker_tasks;
        self.submitter_tasks += other.submitter_tasks;
        self.max_worker_tasks = self.max_worker_tasks.max(other.max_worker_tasks);
        self.parks += other.parks;
    }
}

#[derive(Debug)]
struct PhaseAgg {
    name: &'static str,
    calls: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct Sink {
    cache: Arc<CacheStats>,
    placement: PlacementStats,
    incremental: IncrementalStats,
    phases: Mutex<Vec<PhaseAgg>>,
    pool: Mutex<PoolUsage>,
}

/// Cheap, clonable metrics handle. Clones share one sink, so a handle can
/// be passed by value into workspaces and contexts while the caller keeps
/// one to [`report`](Metrics::report) from.
///
/// The default handle is [disabled](Metrics::disabled): recording methods
/// return immediately without touching a clock or an atomic.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    sink: Option<Arc<Sink>>,
}

impl Metrics {
    /// A disabled handle: all recording is a no-op, nothing is allocated.
    pub fn disabled() -> Self {
        Metrics { sink: None }
    }

    /// An enabled handle backed by a fresh sink.
    pub fn enabled() -> Self {
        Metrics {
            sink: Some(Arc::new(Sink::default())),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The shared cache-counter block, for installing into a cost cache.
    /// `None` when disabled — the cache then skips counting entirely.
    pub fn cache_stats(&self) -> Option<Arc<CacheStats>> {
        self.sink.as_ref().map(|s| Arc::clone(&s.cache))
    }

    /// Start timing a named phase; the elapsed wall time is recorded when
    /// the returned guard drops. Disabled handles never read the clock.
    #[must_use = "the timer records on drop; binding it to _ discards it immediately"]
    pub fn phase(&self, name: &'static str) -> PhaseTimer<'_> {
        PhaseTimer {
            active: self
                .sink
                .as_deref()
                .map(|sink| (Instant::now(), name, sink)),
        }
    }

    /// Record one datum placement under a bounded policy. `displacement`
    /// is the datum's rank in the scheduler's candidate processor list:
    /// 0 means it landed on the optimal center, k means k better-ranked
    /// processors were already full.
    pub fn record_placement(&self, displacement: usize) {
        let Some(sink) = self.sink.as_deref() else {
            return;
        };
        let d = displacement as u64;
        sink.placement.placements.fetch_add(1, Ordering::Relaxed);
        if d > 0 {
            sink.placement.displaced.fetch_add(1, Ordering::Relaxed);
            sink.placement
                .total_displacement
                .fetch_add(d, Ordering::Relaxed);
            sink.placement
                .max_displacement
                .fetch_max(d, Ordering::Relaxed);
        }
    }

    /// Record one incremental resolve: how many data were dirty, and
    /// whether the bounded-policy patch had to fall back to a full
    /// capacity replay because a dirty datum displaced a clean one.
    pub fn record_incremental(&self, dirty_data: u64, fallback: bool) {
        let Some(sink) = self.sink.as_deref() else {
            return;
        };
        sink.incremental.resolves.fetch_add(1, Ordering::Relaxed);
        sink.incremental
            .dirty_data
            .fetch_add(dirty_data, Ordering::Relaxed);
        if fallback {
            sink.incremental.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accumulate a pool-utilization delta (one per scheduled run).
    pub fn record_pool(&self, usage: PoolUsage) {
        let Some(sink) = self.sink.as_deref() else {
            return;
        };
        sink.pool
            .lock()
            .expect("metrics pool lock")
            .accumulate(usage);
    }

    /// Freeze the counters into a report. Disabled handles report
    /// `enabled: false` with all-zero counters.
    pub fn report(&self) -> MetricsReport {
        let Some(sink) = self.sink.as_deref() else {
            return MetricsReport::default();
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let placements = load(&sink.placement.placements);
        let total_displacement = load(&sink.placement.total_displacement);
        MetricsReport {
            enabled: true,
            cache: CacheReport {
                prefix_builds: load(&sink.cache.prefix_builds),
                prefix_hits: load(&sink.cache.prefix_hits),
                raw_serves: load(&sink.cache.raw_serves),
                invalidations: load(&sink.cache.invalidations),
                prefix_extends: load(&sink.cache.prefix_extends),
            },
            incremental: IncrementalReport {
                resolves: load(&sink.incremental.resolves),
                dirty_data: load(&sink.incremental.dirty_data),
                fallbacks: load(&sink.incremental.fallbacks),
            },
            placement: PlacementReport {
                placements,
                displaced: load(&sink.placement.displaced),
                total_displacement,
                max_displacement: load(&sink.placement.max_displacement),
                mean_displacement: if placements == 0 {
                    0.0
                } else {
                    total_displacement as f64 / placements as f64
                },
            },
            phases: sink
                .phases
                .lock()
                .expect("metrics phase lock")
                .iter()
                .map(|p| PhaseReport {
                    name: p.name.to_string(),
                    calls: p.calls,
                    total_ns: p.total_ns,
                })
                .collect(),
            pool: *sink.pool.lock().expect("metrics pool lock"),
        }
    }
}

/// Drop guard returned by [`Metrics::phase`]; records the elapsed wall
/// time under its phase name when it goes out of scope.
#[derive(Debug)]
pub struct PhaseTimer<'m> {
    active: Option<(Instant, &'static str, &'m Sink)>,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let Some((start, name, sink)) = self.active.take() else {
            return;
        };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut phases = sink.phases.lock().expect("metrics phase lock");
        match phases.iter_mut().find(|p| p.name == name) {
            Some(p) => {
                p.calls += 1;
                p.total_ns += ns;
            }
            None => phases.push(PhaseAgg {
                name,
                calls: 1,
                total_ns: ns,
            }),
        }
    }
}

/// Frozen cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheReport {
    /// Lazy prefix-table builds.
    pub prefix_builds: u64,
    /// Queries served from prefix tables.
    pub prefix_hits: u64,
    /// Queries served from raw projections.
    pub raw_serves: u64,
    /// Per-datum tables discarded by rewriting edits.
    pub invalidations: u64,
    /// Built tables extended in place by append-only edits.
    pub prefix_extends: u64,
}

/// Frozen incremental-rescheduling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IncrementalReport {
    /// Delta resolves performed by an incremental engine.
    pub resolves: u64,
    /// Total dirty data re-solved across all resolves.
    pub dirty_data: u64,
    /// Resolves that fell back to a full capacity replay.
    pub fallbacks: u64,
}

/// Frozen capacity-displacement counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct PlacementReport {
    /// Bounded-policy placements recorded.
    pub placements: u64,
    /// Placements that missed the optimal center (rank > 0).
    pub displaced: u64,
    /// Sum of displacement ranks over all placements.
    pub total_displacement: u64,
    /// Worst single displacement rank.
    pub max_displacement: u64,
    /// `total_displacement / placements` (0 when nothing was placed).
    pub mean_displacement: f64,
}

/// Frozen wall time of one named phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct PhaseReport {
    /// Phase name (scheduler name, or `<name>/phase1-…` inside two-phase
    /// bounded runs).
    pub name: String,
    /// Times the phase ran.
    pub calls: u64,
    /// Total wall time across all calls, nanoseconds.
    pub total_ns: u64,
}

/// Full frozen snapshot of a [`Metrics`] sink.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsReport {
    /// False when the run recorded nothing (disabled handle).
    pub enabled: bool,
    /// Cost-cache behavior.
    pub cache: CacheReport,
    /// Capacity-displacement summary.
    pub placement: PlacementReport,
    /// Incremental-rescheduling summary (all zero outside delta runs).
    pub incremental: IncrementalReport,
    /// Per-phase wall times, in first-recorded order.
    pub phases: Vec<PhaseReport>,
    /// Worker-pool utilization.
    pub pool: PoolUsage,
}

/// Format a mean/ratio field for JSON: `NaN`/`inf` (a zero denominator,
/// or a report assembled by hand) must never reach the output — bare
/// `NaN` is not valid JSON and would break every consumer of the serve
/// `stats` endpoint downstream.
fn json_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

impl MetricsReport {
    /// Render as a JSON object, suitable for embedding as a value inside a
    /// larger hand-rolled JSON document. Non-finite float fields are
    /// clamped to `0.0` so the output always parses.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        write!(
            s,
            "{{\"enabled\": {}, \"cache\": {{\"prefix_builds\": {}, \"prefix_hits\": {}, \
             \"raw_serves\": {}, \"invalidations\": {}, \"prefix_extends\": {}}}, \
             \"incremental\": {{\"resolves\": {}, \"dirty_data\": {}, \"fallbacks\": {}}}, \
             \"placement\": {{\"placements\": {}, \"displaced\": {}, \
             \"total_displacement\": {}, \"max_displacement\": {}, \"mean_displacement\": {:.3}}}, \
             \"phases\": [",
            self.enabled,
            self.cache.prefix_builds,
            self.cache.prefix_hits,
            self.cache.raw_serves,
            self.cache.invalidations,
            self.cache.prefix_extends,
            self.incremental.resolves,
            self.incremental.dirty_data,
            self.incremental.fallbacks,
            self.placement.placements,
            self.placement.displaced,
            self.placement.total_displacement,
            self.placement.max_displacement,
            json_f64(self.placement.mean_displacement),
        )
        .expect("write to String cannot fail");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(
                s,
                "{{\"name\": \"{}\", \"calls\": {}, \"total_ns\": {}}}",
                p.name, p.calls, p.total_ns
            )
            .expect("write to String cannot fail");
        }
        write!(
            s,
            "], \"pool\": {{\"jobs\": {}, \"worker_tasks\": {}, \"submitter_tasks\": {}, \
             \"max_worker_tasks\": {}, \"parks\": {}}}}}",
            self.pool.jobs,
            self.pool.worker_tasks,
            self.pool.submitter_tasks,
            self.pool.max_worker_tasks,
            self.pool.parks,
        )
        .expect("write to String cannot fail");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        assert!(!m.is_enabled());
        assert!(m.cache_stats().is_none());
        m.record_placement(3);
        m.record_pool(PoolUsage {
            jobs: 1,
            ..PoolUsage::default()
        });
        drop(m.phase("noop"));
        let report = m.report();
        assert_eq!(report, MetricsReport::default());
        assert!(!report.enabled);
    }

    #[test]
    fn clones_share_one_sink() {
        let m = Metrics::enabled();
        let clone = m.clone();
        clone.record_placement(0);
        clone.record_placement(2);
        let report = m.report();
        assert_eq!(report.placement.placements, 2);
        assert_eq!(report.placement.displaced, 1);
        assert_eq!(report.placement.total_displacement, 2);
        assert_eq!(report.placement.max_displacement, 2);
        assert!((report.placement.mean_displacement - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_stats_feed_the_report() {
        let m = Metrics::enabled();
        let stats = m.cache_stats().expect("enabled");
        stats.prefix_builds.fetch_add(1, Ordering::Relaxed);
        stats.prefix_hits.fetch_add(5, Ordering::Relaxed);
        stats.raw_serves.fetch_add(7, Ordering::Relaxed);
        stats.invalidations.fetch_add(2, Ordering::Relaxed);
        stats.prefix_extends.fetch_add(3, Ordering::Relaxed);
        let report = m.report();
        assert_eq!(report.cache.prefix_builds, 1);
        assert_eq!(report.cache.prefix_hits, 5);
        assert_eq!(report.cache.raw_serves, 7);
        assert_eq!(report.cache.invalidations, 2);
        assert_eq!(report.cache.prefix_extends, 3);
    }

    #[test]
    fn incremental_counters_feed_the_report() {
        let m = Metrics::enabled();
        m.record_incremental(10, false);
        m.record_incremental(3, true);
        let report = m.report();
        assert_eq!(report.incremental.resolves, 2);
        assert_eq!(report.incremental.dirty_data, 13);
        assert_eq!(report.incremental.fallbacks, 1);
    }

    #[test]
    fn phase_timer_aggregates_by_name() {
        let m = Metrics::enabled();
        drop(m.phase("alpha"));
        drop(m.phase("alpha"));
        drop(m.phase("beta"));
        let report = m.report();
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].name, "alpha");
        assert_eq!(report.phases[0].calls, 2);
        assert_eq!(report.phases[1].name, "beta");
        assert_eq!(report.phases[1].calls, 1);
    }

    #[test]
    fn pool_usage_accumulates_across_runs() {
        let m = Metrics::enabled();
        m.record_pool(PoolUsage {
            jobs: 2,
            worker_tasks: 10,
            submitter_tasks: 4,
            max_worker_tasks: 6,
            parks: 1,
        });
        m.record_pool(PoolUsage {
            jobs: 1,
            worker_tasks: 5,
            submitter_tasks: 2,
            max_worker_tasks: 4,
            parks: 0,
        });
        let pool = m.report().pool;
        assert_eq!(pool.jobs, 3);
        assert_eq!(pool.worker_tasks, 15);
        assert_eq!(pool.submitter_tasks, 6);
        assert_eq!(pool.max_worker_tasks, 6);
        assert_eq!(pool.parks, 1);
    }

    #[test]
    fn json_snapshot_has_every_key() {
        let m = Metrics::enabled();
        m.record_placement(1);
        drop(m.phase("run"));
        let json = m.report().to_json();
        for key in [
            "\"enabled\"",
            "\"cache\"",
            "\"prefix_builds\"",
            "\"prefix_hits\"",
            "\"raw_serves\"",
            "\"invalidations\"",
            "\"prefix_extends\"",
            "\"incremental\"",
            "\"resolves\"",
            "\"dirty_data\"",
            "\"fallbacks\"",
            "\"placement\"",
            "\"placements\"",
            "\"mean_displacement\"",
            "\"phases\"",
            "\"name\"",
            "\"total_ns\"",
            "\"pool\"",
            "\"jobs\"",
            "\"parks\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_report_renders_valid_json() {
        // Regression: an empty (zero-placement) report must parse as JSON.
        // `pim-serve` embeds this output verbatim in its `stats` response,
        // so a bare NaN here would take the whole endpoint down.
        for report in [Metrics::disabled().report(), Metrics::enabled().report()] {
            let json = report.to_json();
            assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
            pim_trace::json::parse(&json)
                .unwrap_or_else(|e| panic!("empty report JSON does not parse: {e}\n{json}"));
        }
    }

    #[test]
    fn non_finite_means_are_clamped_in_json() {
        // The struct's fields are public; a hand-assembled report (or a
        // future unguarded division) must still render parseable JSON.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let report = MetricsReport {
                enabled: true,
                placement: PlacementReport {
                    placements: 0,
                    mean_displacement: bad,
                    ..PlacementReport::default()
                },
                ..MetricsReport::default()
            };
            let json = report.to_json();
            assert!(json.contains("\"mean_displacement\": 0.000"), "{json}");
            pim_trace::json::parse(&json)
                .unwrap_or_else(|e| panic!("clamped report JSON does not parse: {e}\n{json}"));
        }
    }
}
