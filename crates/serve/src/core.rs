//! Transport-independent request execution.
//!
//! [`ServeCore`] owns everything a request needs — the resident-trace
//! store, the shared scheduling pool, the enabled [`Metrics`] handle
//! threaded into every engine build, the server counters and the
//! shutdown flag — and turns one request line into one response line.
//! Transports ([`crate::server`]) only move bytes and enforce admission
//! control; tests can call [`ServeCore::handle_line`] directly and get
//! byte-identical responses to the socket path.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use pim_metrics::Metrics;
use pim_par::Pool;
use pim_sched::{flat_total_cost, IncrementalError, IncrementalRun, MemoryPolicy, Method};
use pim_trace::FlatTrace;

use crate::error::ServeError;
use crate::proto::{self, EvictScope, LoadSource, Request};
use crate::stats::ServerStats;
use crate::store::{self, TraceStore};

/// Daemon sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Service worker threads executing requests.
    pub workers: usize,
    /// Admission queue capacity; a full queue rejects with `overloaded`.
    pub queue_capacity: usize,
    /// Resident-trace store byte budget.
    pub cache_bytes: u64,
    /// Threads in the shared scheduling pool (0 = serial).
    pub pool_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_bytes: 256 << 20,
            pool_threads: 0,
        }
    }
}

/// Queue occupancy a `stats` response reports: `(depth, capacity)`.
/// Direct (transport-less) callers pass `(0, 0)`.
pub type QueueView = (usize, usize);

/// The daemon's shared state and request dispatcher.
pub struct ServeCore {
    store: TraceStore,
    stats: ServerStats,
    metrics: Metrics,
    pool: Pool,
    shutdown: AtomicBool,
}

impl ServeCore {
    /// Build the shared state for `config`.
    pub fn new(config: &ServeConfig) -> ServeCore {
        ServeCore {
            store: TraceStore::new(config.cache_bytes),
            stats: ServerStats::default(),
            metrics: Metrics::enabled(),
            pool: if config.pool_threads == 0 {
                Pool::serial()
            } else {
                Pool::with_threads(config.pool_threads)
            },
            shutdown: AtomicBool::new(false),
        }
    }

    /// The server counters (transports record admission rejections here).
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The resident-trace store.
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// Whether a `shutdown` request has begun the drain.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flip the drain flag (idempotent).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Execute one request line and render the response line. Never
    /// panics on request input — every failure is a typed error
    /// response. Also records per-op counters and service latency.
    pub fn handle_line(&self, line: &str, queue: QueueView) -> String {
        let started = Instant::now();
        let (id, parsed) = proto::parse_request(line);
        let response = match parsed {
            Err(err) => {
                self.stats.record_error();
                proto::error_response(id, &err)
            }
            Ok(req) => {
                self.stats.record_op(req.op());
                if self.is_shutting_down()
                    && !matches!(req, Request::Stats | Request::Ping | Request::Shutdown)
                {
                    self.stats.record_error();
                    proto::error_response(id, &ServeError::ShuttingDown)
                } else {
                    match self.execute(req, queue) {
                        Ok(fields) => proto::ok_response(id, &fields),
                        Err(err) => {
                            self.stats.record_error();
                            proto::error_response(id, &err)
                        }
                    }
                }
            }
        };
        self.stats
            .record_latency(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        response
    }

    fn execute(&self, req: Request, queue: QueueView) -> Result<String, ServeError> {
        match req {
            Request::Load { source } => self.do_load(source),
            Request::Schedule {
                trace,
                method,
                policy,
            } => self.do_schedule(trace, method, policy),
            Request::Simulate { trace } => self.do_simulate(trace),
            Request::Edit { trace, delta } => self.do_edit(trace, &delta),
            Request::Stats => Ok(self.do_stats(queue)),
            Request::Evict { trace, scope } => Ok(self.do_evict(trace, scope)),
            Request::Ping => Ok("\"pong\":true".to_string()),
            Request::Shutdown => {
                self.begin_shutdown();
                Ok("\"draining\":true".to_string())
            }
        }
    }

    fn do_load(&self, source: LoadSource) -> Result<String, ServeError> {
        let flat = match source {
            LoadSource::Text(text) => FlatTrace::from_reader(text.as_bytes())?,
            // The binary file is memory-mapped and fully validated
            // (checksum + structure) before the resident copy is made;
            // any failure is a typed `io_error`. The content key is the
            // same one an equivalent text load would produce, so path
            // and text loads of one trace dedup to one resident entry.
            LoadSource::Path(path) => pim_trace::BinTrace::open(&path)?.to_flat(),
        };
        let grid = flat.grid();
        let (windows, data, refs) = (flat.num_windows(), flat.num_data(), flat.num_refs());
        let (key, fresh) = self.store.insert(flat)?;
        Ok(format!(
            "\"trace\":\"{}\",\"fresh\":{fresh},\"grid\":[{},{}],\
             \"windows\":{windows},\"data\":{data},\"refs\":{refs}",
            store::key_hex(key),
            grid.width(),
            grid.height(),
        ))
    }

    /// Look up + lock helper: returns the entry `Arc` for `key`
    /// (store lock released before return, per the lock ordering).
    fn entry(
        &self,
        key: u64,
    ) -> Result<std::sync::Arc<std::sync::Mutex<store::Entry>>, ServeError> {
        self.store
            .get(key)
            .ok_or_else(|| ServeError::UnknownTrace(store::key_hex(key)))
    }

    fn do_schedule(
        &self,
        key: u64,
        method: Method,
        policy: MemoryPolicy,
    ) -> Result<String, ServeError> {
        if !matches!(method, Method::Scds | Method::Lomcds | Method::Gomcds) {
            return Err(ServeError::UnknownMethod(method.name().to_string()));
        }
        let slot = self.entry(key)?;
        let mut entry = slot.lock().expect("entry lock");
        let warm = entry.engine_matches(method, policy);
        if !warm {
            let flat = entry.current_flat();
            let engine = IncrementalRun::with_metrics(
                (*flat).clone(),
                method,
                policy,
                self.pool,
                self.metrics.clone(),
            )?;
            // A rebuilt engine starts a fresh edit history; stale caches
            // keyed by the old history must not survive it.
            let cost = flat_total_cost(&flat, engine.schedule());
            entry.engine = Some(engine);
            entry.cache_cost(cost);
        }
        self.stats.record_engine(warm);
        let cost = match entry.cached_cost() {
            Some(cost) => cost,
            None => {
                let flat = entry.current_flat();
                let engine = entry.engine.as_ref().expect("engine resident");
                let cost = flat_total_cost(&flat, engine.schedule());
                entry.cache_cost(cost);
                cost
            }
        };
        let engine = entry.engine.as_ref().expect("engine resident");
        let fields = format!(
            "\"trace\":\"{}\",\"method\":\"{}\",\"warm\":{warm},\"version\":{},\
             \"fallbacks\":{},\"cost\":{{\"reference\":{},\"movement\":{},\"total\":{}}}",
            store::key_hex(key),
            engine.method().name(),
            engine.version(),
            engine.fallbacks(),
            cost.reference,
            cost.movement,
            cost.total(),
        );
        let bytes = entry.resident_bytes();
        drop(entry);
        self.store.record_bytes(key, bytes);
        Ok(fields)
    }

    fn do_simulate(&self, key: u64) -> Result<String, ServeError> {
        let slot = self.entry(key)?;
        let mut entry = slot.lock().expect("entry lock");
        if entry.engine.is_none() {
            return Err(ServeError::NoSchedule(store::key_hex(key)));
        }
        let flat = entry.current_flat();
        let windowed = flat.to_windowed();
        let engine = entry.engine.as_ref().expect("checked above");
        let report = pim_sim::simulate(&windowed, engine.schedule(), self.pool);
        let fields = format!(
            "\"trace\":\"{}\",\"version\":{},\"hop_volume\":{},\"fetch_hop_volume\":{},\
             \"move_hop_volume\":{},\"completion_time\":{}",
            store::key_hex(key),
            engine.version(),
            report.total_hop_volume(),
            report.total_fetch_hop_volume(),
            report.total_move_hop_volume(),
            report.total_completion_time(),
        );
        let bytes = entry.resident_bytes();
        drop(entry);
        self.store.record_bytes(key, bytes);
        Ok(fields)
    }

    fn do_edit(&self, key: u64, delta: &pim_trace::TraceDelta) -> Result<String, ServeError> {
        let slot = self.entry(key)?;
        let mut entry = slot.lock().expect("entry lock");
        let engine = match entry.engine.as_mut() {
            Some(engine) => engine,
            None => return Err(ServeError::NoSchedule(store::key_hex(key))),
        };
        match engine.incremental(delta) {
            Ok(()) => {}
            Err(IncrementalError::Trace(e)) => return Err(ServeError::Trace(e)),
            Err(IncrementalError::Sched(e)) => {
                // The engine's state is unspecified after a scheduling
                // failure mid-resolve; drop it so the next `schedule`
                // rebuilds from the base rather than serving garbage.
                entry.drop_engine();
                let bytes = entry.resident_bytes();
                drop(entry);
                self.store.record_bytes(key, bytes);
                return Err(ServeError::Sched(e));
            }
        }
        let engine = entry.engine.as_ref().expect("still resident");
        let fields = format!(
            "\"trace\":\"{}\",\"version\":{},\"fallbacks\":{},\"ops\":{}",
            store::key_hex(key),
            engine.version(),
            engine.fallbacks(),
            delta.len(),
        );
        let bytes = entry.resident_bytes();
        drop(entry);
        self.store.record_bytes(key, bytes);
        Ok(fields)
    }

    fn do_stats(&self, queue: QueueView) -> String {
        let store = self.store.stats();
        format!(
            "\"server\":{},\"store\":{{\"traces\":{},\"bytes\":{},\"budget\":{},\
             \"evictions\":{}}},\"metrics\":{}",
            self.stats.to_json(queue.0, queue.1),
            store.traces,
            store.bytes,
            store.budget,
            store.evictions,
            self.metrics.report().to_json(),
        )
    }

    fn do_evict(&self, key: u64, scope: EvictScope) -> String {
        let evicted = match scope {
            EvictScope::Trace => self.store.remove(key),
            EvictScope::Engine => match self.store.get(key) {
                None => false,
                Some(slot) => {
                    let mut entry = slot.lock().expect("entry lock");
                    let had = entry.engine.is_some();
                    entry.drop_engine();
                    let bytes = entry.resident_bytes();
                    drop(entry);
                    self.store.record_bytes(key, bytes);
                    had
                }
            },
        };
        let scope_name = match scope {
            EvictScope::Trace => "trace",
            EvictScope::Engine => "engine",
        };
        format!(
            "\"trace\":\"{}\",\"scope\":\"{scope_name}\",\"evicted\":{evicted}",
            store::key_hex(key)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::json::{parse, Value};

    const NO_QUEUE: QueueView = (0, 0);

    fn core() -> ServeCore {
        ServeCore::new(&ServeConfig::default())
    }

    fn trace_text() -> String {
        // 4×4 grid, 2 windows, 3 data; every datum referenced in both
        // windows so edits and incremental resolves have work to do.
        let mut s = String::from("flat v1 4 4 2 3\n");
        for d in 0..3u32 {
            for w in 0..2u32 {
                s.push_str(&format!("{d} {w} {} {}\n", (d * 5 + w * 3) % 16, 2 + d));
            }
        }
        s
    }

    fn load_req(text: &str) -> String {
        let mut line = String::from("{\"id\":1,\"op\":\"load\",\"text\":\"");
        pim_trace::json::escape_into(&mut line, text);
        line.push_str("\"}");
        line
    }

    fn ok(core: &ServeCore, line: &str) -> Value {
        let resp = core.handle_line(line, NO_QUEUE);
        let v = parse(&resp).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{resp}"));
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "expected ok: {resp}"
        );
        v
    }

    fn fail(core: &ServeCore, line: &str) -> String {
        let resp = core.handle_line(line, NO_QUEUE);
        let v = parse(&resp).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{resp}"));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{resp}");
        v.get("error")
            .and_then(Value::as_str)
            .expect("error kind present")
            .to_string()
    }

    #[test]
    fn full_request_cycle() {
        let core = core();
        let loaded = ok(&core, &load_req(&trace_text()));
        let key = loaded
            .get("trace")
            .and_then(Value::as_str)
            .expect("trace key")
            .to_string();
        assert_eq!(loaded.get("fresh").and_then(Value::as_bool), Some(true));

        // Cold then warm schedule.
        let line = format!(r#"{{"id":2,"op":"schedule","trace":"{key}","method":"scds"}}"#);
        let cold = ok(&core, &line);
        assert_eq!(cold.get("warm").and_then(Value::as_bool), Some(false));
        let total = cold
            .get("cost")
            .and_then(|c| c.get("total"))
            .and_then(Value::as_u64)
            .expect("cost total");
        let warm = ok(&core, &line);
        assert_eq!(warm.get("warm").and_then(Value::as_bool), Some(true));
        assert_eq!(
            warm.get("cost")
                .and_then(|c| c.get("total"))
                .and_then(Value::as_u64),
            Some(total)
        );

        // Simulation agrees with the analytic cost (hop-volume == total).
        let sim = ok(&core, &format!(r#"{{"op":"simulate","trace":"{key}"}}"#));
        assert_eq!(sim.get("hop_volume").and_then(Value::as_u64), Some(total));

        // Edit bumps the version; a later schedule stays warm.
        let edit = format!(
            r#"{{"op":"edit","trace":"{key}","delta":{{"version":1,"ops":[{{"op":"set_run","datum":0,"window":1,"refs":[[9,4]]}}]}}}}"#
        );
        let edited = ok(&core, &edit);
        assert_eq!(edited.get("version").and_then(Value::as_u64), Some(1));
        let warm2 = ok(&core, &line);
        assert_eq!(warm2.get("warm").and_then(Value::as_bool), Some(true));
        assert_eq!(warm2.get("version").and_then(Value::as_u64), Some(1));

        // Stats reflect the traffic and parse end to end.
        let stats = ok(&core, r#"{"op":"stats"}"#);
        let server = stats.get("server").expect("server block");
        assert_eq!(
            server
                .get("requests")
                .and_then(|r| r.get("schedule"))
                .and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(server.get("engine_builds").and_then(Value::as_u64), Some(1));
        assert!(stats
            .get("metrics")
            .and_then(|m| m.get("enabled"))
            .is_some());
        assert_eq!(
            stats
                .get("store")
                .and_then(|s| s.get("traces"))
                .and_then(Value::as_u64),
            Some(1)
        );

        // Engine evict forces the next schedule cold; trace evict forgets it.
        let ev = ok(
            &core,
            &format!(r#"{{"op":"evict","trace":"{key}","scope":"engine"}}"#),
        );
        assert_eq!(ev.get("evicted").and_then(Value::as_bool), Some(true));
        let cold2 = ok(&core, &line);
        assert_eq!(cold2.get("warm").and_then(Value::as_bool), Some(false));
        ok(&core, &format!(r#"{{"op":"evict","trace":"{key}"}}"#));
        assert_eq!(fail(&core, &line), "unknown_trace");
    }

    #[test]
    fn error_paths_are_typed() {
        let core = core();
        assert_eq!(fail(&core, "garbage"), "bad_request");
        assert_eq!(
            fail(
                &core,
                r#"{"op":"schedule","trace":"0000000000000099","method":"scds"}"#
            ),
            "unknown_trace"
        );
        let loaded = ok(&core, &load_req(&trace_text()));
        let key = loaded
            .get("trace")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        // Parseable but non-incremental method names are refused.
        assert_eq!(
            fail(
                &core,
                &format!(r#"{{"op":"schedule","trace":"{key}","method":"gomcds-naive"}}"#)
            ),
            "unknown_method"
        );
        // simulate/edit before any schedule.
        assert_eq!(
            fail(&core, &format!(r#"{{"op":"simulate","trace":"{key}"}}"#)),
            "no_schedule"
        );
        let edit = format!(r#"{{"op":"edit","trace":"{key}","delta":{{"version":1,"ops":[]}}}}"#);
        assert_eq!(fail(&core, &edit), "no_schedule");
        // Out-of-range edit against a live engine is a trace error and
        // leaves the engine serviceable.
        ok(
            &core,
            &format!(r#"{{"op":"schedule","trace":"{key}","method":"scds"}}"#),
        );
        let bad_edit = format!(
            r#"{{"op":"edit","trace":"{key}","delta":{{"version":1,"ops":[{{"op":"set_run","datum":99,"window":0,"refs":[[0,1]]}}]}}}}"#
        );
        assert_eq!(fail(&core, &bad_edit), "trace_error");
        let warm = ok(
            &core,
            &format!(r#"{{"op":"schedule","trace":"{key}","method":"scds"}}"#),
        );
        assert_eq!(warm.get("warm").and_then(Value::as_bool), Some(true));
        // Malformed trace text is a trace error, not a panic.
        assert_eq!(
            fail(&core, &load_req("flat v1 4 4 1 1\n0 9 0 0 1\n")),
            "trace_error"
        );
    }

    #[test]
    fn shutdown_refuses_new_work_but_answers_probes() {
        let core = core();
        let v = ok(&core, r#"{"op":"shutdown"}"#);
        assert_eq!(v.get("draining").and_then(Value::as_bool), Some(true));
        assert!(core.is_shutting_down());
        assert_eq!(fail(&core, &load_req(&trace_text())), "shutting_down");
        ok(&core, r#"{"op":"ping"}"#);
        ok(&core, r#"{"op":"stats"}"#);
    }

    #[test]
    fn schedule_parity_with_direct_flat_run() {
        // The daemon's cost must be bit-identical to calling the flat
        // scheduler directly on the same trace.
        let core = core();
        let text = trace_text();
        let loaded = ok(&core, &load_req(&text));
        let key = loaded
            .get("trace")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        for method in ["scds", "lomcds", "gomcds"] {
            let v = ok(
                &core,
                &format!(r#"{{"op":"schedule","trace":"{key}","method":"{method}"}}"#),
            );
            let served = v
                .get("cost")
                .and_then(|c| c.get("total"))
                .and_then(Value::as_u64)
                .expect("cost");
            let flat = FlatTrace::from_reader(text.as_bytes()).unwrap();
            let solve = match Method::parse(method).unwrap() {
                Method::Scds => pim_sched::flat_scds,
                Method::Lomcds => pim_sched::flat_lomcds,
                Method::Gomcds => pim_sched::flat_gomcds,
                other => panic!("not served: {other}"),
            };
            let sched = solve(&flat, MemoryPolicy::Unbounded, Pool::serial()).unwrap();
            assert_eq!(served, flat_total_cost(&flat, &sched).total(), "{method}");
        }
    }

    /// Temp `.pimb` path that is cleaned up on drop.
    struct TempBin(std::path::PathBuf);

    impl TempBin {
        fn pack(flat: &FlatTrace, name: &str) -> Self {
            let path = std::env::temp_dir()
                .join(format!("pim_serve_core_{}_{name}.pimb", std::process::id()));
            pim_trace::binfmt::pack_file(flat, &path).expect("pack temp trace");
            TempBin(path)
        }

        fn req(&self) -> String {
            let mut line = String::from("{\"op\":\"load\",\"path\":\"");
            pim_trace::json::escape_into(&mut line, &self.0.display().to_string());
            line.push_str("\"}");
            line
        }
    }

    impl Drop for TempBin {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn load_by_path_admits_and_schedules() {
        let core = core();
        let flat = FlatTrace::from_reader(trace_text().as_bytes()).unwrap();
        let bin = TempBin::pack(&flat, "admit");
        let loaded = ok(&core, &bin.req());
        assert_eq!(loaded.get("fresh").and_then(Value::as_bool), Some(true));
        assert_eq!(loaded.get("data").and_then(Value::as_u64), Some(3));
        let key = loaded
            .get("trace")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let v = ok(
            &core,
            &format!(r#"{{"op":"schedule","trace":"{key}","method":"scds"}}"#),
        );
        assert!(v.get("cost").is_some());
    }

    #[test]
    fn load_by_path_dedups_against_text_load() {
        // Path and text loads of the same trace must hash to one
        // resident entry: the second load reports fresh:false and the
        // same key.
        let core = core();
        let text = trace_text();
        let by_text = ok(&core, &load_req(&text));
        let flat = FlatTrace::from_reader(text.as_bytes()).unwrap();
        let bin = TempBin::pack(&flat, "dedup");
        let by_path = ok(&core, &bin.req());
        assert_eq!(by_path.get("fresh").and_then(Value::as_bool), Some(false));
        assert_eq!(
            by_path.get("trace").and_then(Value::as_str),
            by_text.get("trace").and_then(Value::as_str)
        );
    }

    #[test]
    fn load_by_path_failures_are_typed_io_errors() {
        let core = core();
        let missing = std::env::temp_dir().join(format!(
            "pim_serve_core_{}_missing.pimb",
            std::process::id()
        ));
        let mut line = String::from("{\"op\":\"load\",\"path\":\"");
        pim_trace::json::escape_into(&mut line, &missing.display().to_string());
        line.push_str("\"}");
        assert_eq!(fail(&core, &line), "io_error");

        // Corrupt container: flip a refs byte so the checksum mismatches.
        let flat = FlatTrace::from_reader(trace_text().as_bytes()).unwrap();
        let bin = TempBin::pack(&flat, "corrupt");
        let mut bytes = std::fs::read(&bin.0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&bin.0, &bytes).unwrap();
        assert_eq!(fail(&core, &bin.req()), "io_error");
        assert!(core.handle_line(&bin.req(), NO_QUEUE).contains("detail"));
    }
}
