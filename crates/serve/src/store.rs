//! Resident-trace store: the daemon's working-set memory.
//!
//! Each loaded trace becomes an [`Entry`] keyed by a content hash of the
//! flat layout, holding the immutable base [`FlatTrace`] plus the warm
//! state a request stream accretes: the [`IncrementalRun`] engine (edit
//! log, cost cache, solver workspace) and a materialized flat view of
//! the current edit version. Entries live behind their own mutex so two
//! workers can service different traces concurrently; the store-level
//! mutex only guards the key map and the byte accounting.
//!
//! **Lock ordering:** the store lock and an entry lock are never held at
//! the same time. Lookups lock the store, clone the entry `Arc`, bump
//! the LRU stamp and unlock before the entry is locked; byte accounting
//! after a mutation ([`TraceStore::record_bytes`]) passes a plain number
//! computed while the entry lock was held. That makes deadlock
//! impossible by construction and keeps the store lock held only for
//! map-sized critical sections.
//!
//! **Eviction** is LRU by a monotonic touch clock under a byte budget.
//! A trace whose base alone exceeds the budget is refused up front
//! ([`ServeError::TooLarge`]) rather than flushing the whole working
//! set. Evicting an entry another worker still holds an `Arc` to is
//! safe: the worker finishes against the detached entry and the memory
//! is reclaimed when the last `Arc` drops.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use pim_sched::incremental::IncrementalRun;
use pim_sched::{CostBreakdown, MemoryPolicy, Method};
use pim_trace::FlatTrace;

use crate::error::ServeError;

/// Content hash of a flat trace (FNV-1a 64 over dims + span records).
/// This is the wire identity of a resident trace: `load` returns it and
/// every later request names the trace by its 16-hex rendering.
pub fn trace_key(flat: &FlatTrace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u32| {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    eat(flat.grid().width());
    eat(flat.grid().height());
    eat(flat.num_windows() as u32);
    eat(flat.num_data() as u32);
    for d in 0..flat.num_data() {
        for r in flat.span(pim_trace::DataId(d as u32)) {
            eat(r.window);
            eat(r.x);
            eat(r.y);
            eat(r.count);
        }
    }
    h
}

/// Render a trace key as the fixed-width lowercase hex used on the wire.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parse a wire trace key (16 lowercase/uppercase hex digits).
pub fn parse_key(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

/// Estimated resident bytes of one flat trace (refs dominate; offsets
/// and headers are noise but counted so empty traces aren't free).
pub fn flat_bytes(flat: &FlatTrace) -> u64 {
    (flat.num_refs() * 16 + flat.num_data() * 16 + 64) as u64
}

/// One resident trace and its warm per-trace state.
pub struct Entry {
    /// Content key (wire identity).
    pub key: u64,
    /// The immutable flat trace as loaded.
    pub base: Arc<FlatTrace>,
    /// Resident scheduling engine, if a `schedule` request built one.
    pub engine: Option<IncrementalRun>,
    /// Materialized flat view of `engine`'s current edit version.
    flat_cache: Option<(u64, Arc<FlatTrace>)>,
    /// Cost of the engine's schedule, keyed by the edit version it was
    /// computed at (method/policy changes rebuild the engine, so the
    /// version alone identifies the schedule).
    cost_cache: Option<(u64, CostBreakdown)>,
}

impl Entry {
    fn new(key: u64, base: Arc<FlatTrace>) -> Entry {
        Entry {
            key,
            base,
            engine: None,
            flat_cache: None,
            cost_cache: None,
        }
    }

    /// The flat trace at the engine's current edit version (the base
    /// when no engine is resident or nothing was edited). Cached per
    /// version so repeated `simulate`/cold `schedule` requests don't
    /// re-materialize.
    pub fn current_flat(&mut self) -> Arc<FlatTrace> {
        let engine = match &self.engine {
            None => return Arc::clone(&self.base),
            Some(e) => e,
        };
        if engine.version() == 0 {
            return Arc::clone(&self.base);
        }
        match &self.flat_cache {
            Some((v, flat)) if *v == engine.version() => Arc::clone(flat),
            _ => {
                let flat = Arc::new(engine.trace().materialize());
                self.flat_cache = Some((engine.version(), Arc::clone(&flat)));
                flat
            }
        }
    }

    /// True when the resident engine already runs `method` + `policy`
    /// (a `schedule` request can be served warm).
    pub fn engine_matches(&self, method: Method, policy: MemoryPolicy) -> bool {
        self.engine
            .as_ref()
            .is_some_and(|e| e.method() == method && e.policy() == policy)
    }

    /// Cached cost of the engine's current schedule, if still valid.
    pub fn cached_cost(&self) -> Option<CostBreakdown> {
        let engine = self.engine.as_ref()?;
        match self.cost_cache {
            Some((v, cost)) if v == engine.version() => Some(cost),
            _ => None,
        }
    }

    /// Record the cost of the engine's schedule at its current version.
    pub fn cache_cost(&mut self, cost: CostBreakdown) {
        if let Some(engine) = &self.engine {
            self.cost_cache = Some((engine.version(), cost));
        }
    }

    /// Drop the engine and everything derived from it, keeping the base
    /// resident (the `evict` request's `"engine"` scope; also the
    /// recovery path when an incremental resolve leaves the engine in an
    /// unspecified state).
    pub fn drop_engine(&mut self) {
        self.engine = None;
        self.flat_cache = None;
        self.cost_cache = None;
    }

    /// Estimated resident bytes of this entry right now. The engine is
    /// costed at 3× the base flat (editable overrides + shared cost
    /// cache + solver workspace all scale with the trace).
    pub fn resident_bytes(&self) -> u64 {
        let base = flat_bytes(&self.base);
        let engine = if self.engine.is_some() { 3 * base } else { 0 };
        let cache = match &self.flat_cache {
            Some((_, f)) => flat_bytes(f),
            None => 0,
        };
        base + engine + cache
    }
}

struct Slot {
    entry: Arc<Mutex<Entry>>,
    bytes: u64,
    last_used: u64,
}

struct StoreInner {
    slots: HashMap<u64, Slot>,
    clock: u64,
    bytes: u64,
    evictions: u64,
}

/// Byte-budgeted LRU map of resident traces.
pub struct TraceStore {
    inner: Mutex<StoreInner>,
    budget: u64,
}

/// Point-in-time store occupancy for the `stats` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Resident traces.
    pub traces: usize,
    /// Estimated resident bytes across all entries.
    pub bytes: u64,
    /// Configured byte budget.
    pub budget: u64,
    /// Entries evicted to make room since startup.
    pub evictions: u64,
}

impl TraceStore {
    /// An empty store with the given byte budget (≥ 1).
    pub fn new(budget: u64) -> TraceStore {
        TraceStore {
            inner: Mutex::new(StoreInner {
                slots: HashMap::new(),
                clock: 0,
                bytes: 0,
                evictions: 0,
            }),
            budget: budget.max(1),
        }
    }

    /// Configured byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Admit a freshly parsed trace. Returns its key and whether it was
    /// newly inserted (`false` = already resident; the parsed copy is
    /// dropped and the resident entry keeps its warm state).
    pub fn insert(&self, flat: FlatTrace) -> Result<(u64, bool), ServeError> {
        let key = trace_key(&flat);
        let bytes = flat_bytes(&flat);
        if bytes > self.budget {
            return Err(ServeError::TooLarge {
                bytes,
                budget: self.budget,
            });
        }
        let mut inner = self.inner.lock().expect("store lock");
        inner.clock += 1;
        let now = inner.clock;
        if let Some(slot) = inner.slots.get_mut(&key) {
            slot.last_used = now;
            return Ok((key, false));
        }
        Self::evict_until(&mut inner, self.budget.saturating_sub(bytes), key);
        let entry = Arc::new(Mutex::new(Entry::new(key, Arc::new(flat))));
        inner.slots.insert(
            key,
            Slot {
                entry,
                bytes,
                last_used: now,
            },
        );
        inner.bytes += bytes;
        Ok((key, true))
    }

    /// Look up a resident trace, bumping its LRU stamp. The returned
    /// `Arc` must be locked *after* this call returns (never under the
    /// store lock).
    pub fn get(&self, key: u64) -> Option<Arc<Mutex<Entry>>> {
        let mut inner = self.inner.lock().expect("store lock");
        inner.clock += 1;
        let now = inner.clock;
        let slot = inner.slots.get_mut(&key)?;
        slot.last_used = now;
        Some(Arc::clone(&slot.entry))
    }

    /// Remove a trace entirely. Returns `false` if it was not resident.
    pub fn remove(&self, key: u64) -> bool {
        let mut inner = self.inner.lock().expect("store lock");
        match inner.slots.remove(&key) {
            Some(slot) => {
                inner.bytes -= slot.bytes;
                true
            }
            None => false,
        }
    }

    /// Update a key's byte accounting after its entry was mutated
    /// (engine built or dropped, edits applied). `bytes` must have been
    /// computed via [`Entry::resident_bytes`] with the entry lock held —
    /// and released — before calling this. May evict *other* entries if
    /// the growth pushed the store over budget.
    pub fn record_bytes(&self, key: u64, bytes: u64) {
        let mut inner = self.inner.lock().expect("store lock");
        let old = match inner.slots.get_mut(&key) {
            Some(slot) => {
                let old = slot.bytes;
                slot.bytes = bytes;
                old
            }
            None => return, // evicted concurrently; nothing to account
        };
        inner.bytes = inner.bytes - old + bytes;
        Self::evict_until(&mut inner, self.budget, key);
    }

    /// Evict least-recently-used entries (never `keep`) until resident
    /// bytes fit in `limit`.
    fn evict_until(inner: &mut StoreInner, limit: u64, keep: u64) {
        while inner.bytes > limit {
            let victim = inner
                .slots
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let slot = inner.slots.remove(&k).expect("victim resident");
                    inner.bytes -= slot.bytes;
                    inner.evictions += 1;
                }
                None => break, // only `keep` is left; over-budget growth is tolerated
            }
        }
    }

    /// Current occupancy snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        StoreStats {
            traces: inner.slots.len(),
            bytes: inner.bytes,
            budget: self.budget,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;
    use pim_trace::{DataId, FlatRecord};

    fn tiny_flat(seed: u32) -> FlatTrace {
        let grid = Grid::new(4, 4);
        let records: Vec<FlatRecord> = (0..8)
            .map(|i| FlatRecord {
                datum: DataId(i % 4),
                window: i / 4,
                proc: grid.proc_xy((i + seed) % 4, i % 4),
                count: 1 + seed,
            })
            .collect();
        FlatTrace::from_records(grid, 2, 4, records).expect("valid records")
    }

    #[test]
    fn key_is_content_addressed() {
        let a = trace_key(&tiny_flat(0));
        let b = trace_key(&tiny_flat(0));
        let c = trace_key(&tiny_flat(1));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let hex = key_hex(a);
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_key(&hex), Some(a));
        assert_eq!(parse_key("zzzz"), None);
        assert_eq!(parse_key(""), None);
    }

    #[test]
    fn insert_dedupes_and_get_touches() {
        let store = TraceStore::new(1 << 20);
        let (k1, fresh1) = store.insert(tiny_flat(0)).unwrap();
        let (k2, fresh2) = store.insert(tiny_flat(0)).unwrap();
        assert_eq!(k1, k2);
        assert!(fresh1);
        assert!(!fresh2);
        assert_eq!(store.stats().traces, 1);
        assert!(store.get(k1).is_some());
        assert!(store.get(k1 ^ 1).is_none());
    }

    #[test]
    fn over_budget_single_trace_is_refused() {
        let flat = tiny_flat(0);
        let store = TraceStore::new(flat_bytes(&flat) - 1);
        match store.insert(flat) {
            Err(ServeError::TooLarge { bytes, budget }) => assert!(bytes > budget),
            other => panic!(
                "expected TooLarge, got {other:?}",
                other = other.map(|_| ())
            ),
        }
    }

    #[test]
    fn lru_eviction_prefers_cold_entries() {
        let one = flat_bytes(&tiny_flat(0));
        // Budget fits two tiny traces but not three.
        let store = TraceStore::new(2 * one + one / 2);
        let (k0, _) = store.insert(tiny_flat(0)).unwrap();
        let (k1, _) = store.insert(tiny_flat(1)).unwrap();
        store.get(k0); // k1 is now coldest
        let (k2, _) = store.insert(tiny_flat(2)).unwrap();
        assert!(store.get(k0).is_some());
        assert!(store.get(k1).is_none(), "cold entry should be evicted");
        assert!(store.get(k2).is_some());
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn record_bytes_growth_can_evict_others() {
        let one = flat_bytes(&tiny_flat(0));
        let store = TraceStore::new(3 * one);
        let (k0, _) = store.insert(tiny_flat(0)).unwrap();
        let (k1, _) = store.insert(tiny_flat(1)).unwrap();
        store.get(k1);
        // k1 "grows an engine": now needs the whole budget minus one slot.
        store.record_bytes(k1, 5 * one / 2);
        assert!(store.get(k1).is_some());
        assert!(store.get(k0).is_none(), "growth evicts the cold entry");
        let stats = store.stats();
        assert!(stats.bytes <= stats.budget);
    }

    #[test]
    fn remove_frees_bytes() {
        let store = TraceStore::new(1 << 20);
        let (k, _) = store.insert(tiny_flat(0)).unwrap();
        assert!(store.remove(k));
        assert!(!store.remove(k));
        assert_eq!(store.stats().traces, 0);
        assert_eq!(store.stats().bytes, 0);
    }
}
