//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! Every request is one JSON object on one line with an `"op"` field and
//! an optional numeric `"id"` the server echoes back, letting clients
//! pipeline requests over one connection. Responses are one line each:
//! `{"id":…,"ok":true,…}` on success, `{"id":…,"ok":false,"error":
//! "<kind>","detail":"…"}` on failure, with machine-readable extras for
//! the errors a client is expected to act on (`overloaded` carries the
//! queue depth and capacity, `too_large` the byte estimate and budget).
//!
//! The ops:
//!
//! | op        | fields                                 | reply payload |
//! |-----------|----------------------------------------|---------------|
//! | `load`    | `text` (flat-trace text format) *or* `path` (server-local `.pimb` binary file, memory-mapped + validated) | `trace`, `fresh`, dims |
//! | `schedule`| `trace`, `method`, `policy?`           | cost, `warm`, `version` |
//! | `simulate`| `trace`                                | hop volumes, completion time |
//! | `edit`    | `trace`, `delta` (TraceDelta JSON)     | `version`, `fallbacks` |
//! | `stats`   | —                                      | server + store counters |
//! | `evict`   | `trace`, `scope?` (`trace`\|`engine`)  | `evicted` |
//! | `ping`    | —                                      | `pong` |
//! | `shutdown`| —                                      | `draining` |
//!
//! Parsing never panics: every malformed line becomes a typed
//! [`ServeError::BadRequest`], which is what the decode-path property
//! tests assert.

use pim_sched::{MemoryPolicy, Method};
use pim_trace::json::{self, Value};
use pim_trace::TraceDelta;

use crate::error::ServeError;
use crate::store;

/// What an `evict` request removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictScope {
    /// Drop the whole entry (base trace and all warm state).
    Trace,
    /// Drop only the engine and derived caches; the base stays resident.
    /// This is how the benchmark forces cold-cache scheduling.
    Engine,
}

/// Where a `load` request's trace comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadSource {
    /// Inline `flat v1 …` text document (the `text` field).
    Text(String),
    /// Server-local `.pimb` binary file (the `path` field), memory-mapped
    /// and validated before admission; I/O and container failures come
    /// back as a typed `io_error`.
    Path(String),
}

/// One parsed request.
#[derive(Debug)]
pub enum Request {
    /// Admit a trace into the store.
    Load {
        /// Inline text or an on-disk binary file — exactly one.
        source: LoadSource,
    },
    /// Build or warm-hit the scheduling engine and return the cost.
    Schedule {
        /// Resident trace key.
        trace: u64,
        /// Scheduling method (scds, lomcds or gomcds).
        method: Method,
        /// Memory policy (defaults to unbounded).
        policy: MemoryPolicy,
    },
    /// Simulate the engine's schedule on the mesh.
    Simulate {
        /// Resident trace key.
        trace: u64,
    },
    /// Apply a churn delta and incrementally re-solve.
    Edit {
        /// Resident trace key.
        trace: u64,
        /// The edit batch.
        delta: TraceDelta,
    },
    /// Server + store counters and latency percentiles.
    Stats,
    /// Drop a trace or just its engine.
    Evict {
        /// Resident trace key.
        trace: u64,
        /// What to drop.
        scope: EvictScope,
    },
    /// Liveness probe.
    Ping,
    /// Begin graceful drain.
    Shutdown,
}

impl Request {
    /// The wire op name (matches [`crate::stats::OPS`]).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Schedule { .. } => "schedule",
            Request::Simulate { .. } => "simulate",
            Request::Edit { .. } => "edit",
            Request::Stats => "stats",
            Request::Evict { .. } => "evict",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

fn req_str<'v>(obj: &'v Value, key: &str) -> Result<&'v str, ServeError> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| bad(format!("missing or non-string {key:?} field")))
}

fn trace_field(obj: &Value) -> Result<u64, ServeError> {
    let text = req_str(obj, "trace")?;
    store::parse_key(text).ok_or_else(|| bad(format!("malformed trace key {text:?}")))
}

fn policy_field(obj: &Value) -> Result<MemoryPolicy, ServeError> {
    let v = match obj.get("policy") {
        None => return Ok(MemoryPolicy::Unbounded),
        Some(v) => v,
    };
    if let Some(name) = v.as_str() {
        return match name {
            "unbounded" => Ok(MemoryPolicy::Unbounded),
            other => Err(bad(format!("unknown policy name {other:?}"))),
        };
    }
    if let Some(obj) = v.as_obj() {
        if obj.len() != 1 {
            return Err(bad("policy object must have exactly one key"));
        }
        let (key, val) = &obj[0];
        let num = val
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| bad(format!("policy {key:?} needs a positive u32 value")))?;
        return match key.as_str() {
            "capacity" => Ok(MemoryPolicy::Capacity(num)),
            "scaled_min" => Ok(MemoryPolicy::ScaledMinimum { factor: num }),
            other => Err(bad(format!("unknown policy key {other:?}"))),
        };
    }
    Err(bad(
        "policy must be \"unbounded\", {\"capacity\":N} or {\"scaled_min\":N}",
    ))
}

/// Parse one request line. The `id` (when present and numeric) is
/// returned even when the body is malformed, so error responses still
/// correlate; any other failure mode is a typed [`ServeError`].
pub fn parse_request(line: &str) -> (Option<u64>, Result<Request, ServeError>) {
    let line = line.trim();
    let doc = match json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return (None, Err(bad(format!("request is not JSON: {e}")))),
    };
    if doc.as_obj().is_none() {
        return (None, Err(bad("request must be a JSON object")));
    }
    let id = doc.get("id").and_then(Value::as_u64);
    (id, parse_body(&doc))
}

fn parse_body(doc: &Value) -> Result<Request, ServeError> {
    let op = req_str(doc, "op")?;
    match op {
        "load" => {
            let source = match (doc.get("text").is_some(), doc.get("path").is_some()) {
                (true, true) => return Err(bad("load takes exactly one of \"text\" or \"path\"")),
                (true, false) => LoadSource::Text(req_str(doc, "text")?.to_string()),
                (false, true) => LoadSource::Path(req_str(doc, "path")?.to_string()),
                (false, false) => return Err(bad("load needs a \"text\" or \"path\" field")),
            };
            Ok(Request::Load { source })
        }
        "schedule" => {
            let method_name = req_str(doc, "method")?;
            let method = Method::parse(method_name)
                .ok_or_else(|| ServeError::UnknownMethod(method_name.to_string()))?;
            Ok(Request::Schedule {
                trace: trace_field(doc)?,
                method,
                policy: policy_field(doc)?,
            })
        }
        "simulate" => Ok(Request::Simulate {
            trace: trace_field(doc)?,
        }),
        "edit" => {
            let delta_doc = doc
                .get("delta")
                .ok_or_else(|| bad("missing \"delta\" field"))?;
            let delta = TraceDelta::from_json_value(delta_doc)
                .map_err(|e| bad(format!("bad delta: {e}")))?;
            Ok(Request::Edit {
                trace: trace_field(doc)?,
                delta,
            })
        }
        "stats" => Ok(Request::Stats),
        "evict" => {
            let scope = match doc.get("scope") {
                None => EvictScope::Trace,
                Some(v) => match v.as_str() {
                    Some("trace") => EvictScope::Trace,
                    Some("engine") => EvictScope::Engine,
                    _ => return Err(bad("scope must be \"trace\" or \"engine\"")),
                },
            };
            Ok(Request::Evict {
                trace: trace_field(doc)?,
                scope,
            })
        }
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::UnknownMethod(format!("op {other:?}"))),
    }
}

fn push_id(out: &mut String, id: Option<u64>) {
    use core::fmt::Write;
    match id {
        Some(id) => {
            let _ = write!(out, "{{\"id\":{id},");
        }
        None => out.push('{'),
    }
}

/// Build a success response: `fields` is a pre-rendered `"k":v,…` run
/// (may be empty) appended after `"ok":true`.
pub fn ok_response(id: Option<u64>, fields: &str) -> String {
    let mut out = String::with_capacity(fields.len() + 32);
    push_id(&mut out, id);
    out.push_str("\"ok\":true");
    if !fields.is_empty() {
        out.push(',');
        out.push_str(fields);
    }
    out.push('}');
    out
}

/// Build a failure response with the error's stable kind, its human
/// detail, and machine-readable extras where a client can act on them.
pub fn error_response(id: Option<u64>, err: &ServeError) -> String {
    use core::fmt::Write;
    let mut out = String::with_capacity(96);
    push_id(&mut out, id);
    let _ = write!(
        out,
        "\"ok\":false,\"error\":\"{}\",\"detail\":\"",
        err.kind()
    );
    json::escape_into(&mut out, &err.detail());
    out.push('"');
    match err {
        ServeError::Overloaded {
            queue_depth,
            capacity,
        } => {
            let _ = write!(
                out,
                ",\"queue_depth\":{queue_depth},\"capacity\":{capacity}"
            );
        }
        ServeError::TooLarge { bytes, budget } => {
            let _ = write!(out, ",\"bytes\":{bytes},\"budget\":{budget}");
        }
        _ => {}
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_op() {
        let key = store::key_hex(0xabcd);
        let cases: &[(&str, &str)] = &[
            (r#"{"id":1,"op":"load","text":"flat v1 4 4 1 1\n"}"#, "load"),
            (r#"{"op":"stats"}"#, "stats"),
            (r#"{"op":"ping"}"#, "ping"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
        ];
        for (line, op) in cases {
            let (_, req) = parse_request(line);
            assert_eq!(req.expect(line).op(), *op);
        }
        let line = format!(
            r#"{{"id":7,"op":"schedule","trace":"{key}","method":"lomcds","policy":{{"capacity":3}}}}"#
        );
        let (id, req) = parse_request(&line);
        assert_eq!(id, Some(7));
        match req.unwrap() {
            Request::Schedule {
                trace,
                method,
                policy,
            } => {
                assert_eq!(trace, 0xabcd);
                assert_eq!(method, Method::Lomcds);
                assert_eq!(policy, MemoryPolicy::Capacity(3));
            }
            other => panic!("unexpected {other:?}"),
        }
        let line = format!(r#"{{"op":"evict","trace":"{key}","scope":"engine"}}"#);
        match parse_request(&line).1.unwrap() {
            Request::Evict { scope, .. } => assert_eq!(scope, EvictScope::Engine),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_takes_text_or_path_exactly_one() {
        match parse_request(r#"{"op":"load","path":"/data/t.pimb"}"#)
            .1
            .unwrap()
        {
            Request::Load { source } => {
                assert_eq!(source, LoadSource::Path("/data/t.pimb".to_string()));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_request(r#"{"op":"load","text":"flat v1 4 4 1 1\n"}"#)
            .1
            .unwrap()
        {
            Request::Load { source } => assert!(matches!(source, LoadSource::Text(_))),
            other => panic!("unexpected {other:?}"),
        }
        for line in [
            r#"{"op":"load"}"#,
            r#"{"op":"load","text":"flat v1 4 4 1 1\n","path":"/t.pimb"}"#,
            r#"{"op":"load","path":42}"#,
        ] {
            let err = parse_request(line).1.expect_err(line);
            assert_eq!(err.kind(), "bad_request", "{line}");
        }
    }

    #[test]
    fn malformed_lines_yield_typed_errors_with_id() {
        // Unknown op keeps the id for correlation.
        let (id, req) = parse_request(r#"{"id":9,"op":"frobnicate"}"#);
        assert_eq!(id, Some(9));
        assert_eq!(req.unwrap_err().kind(), "unknown_method");
        for line in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"op":42}"#,
            r#"{"op":"schedule","trace":"xyz","method":"scds"}"#,
            r#"{"op":"schedule","trace":"0000000000000001","method":"bazro"}"#,
            r#"{"op":"schedule","trace":"0000000000000001","method":"scds","policy":{"capacity":0}}"#,
            r#"{"op":"edit","trace":"0000000000000001","delta":{"version":2,"ops":[]}}"#,
            r#"{"op":"evict","trace":"0000000000000001","scope":"galaxy"}"#,
        ] {
            let (_, req) = parse_request(line);
            let err = req.expect_err(line);
            assert!(
                matches!(
                    err,
                    ServeError::BadRequest(_) | ServeError::UnknownMethod(_)
                ),
                "{line} -> {err}"
            );
        }
    }

    #[test]
    fn responses_round_trip_through_the_parser() {
        let ok = ok_response(Some(3), "\"pong\":true");
        let v = json::parse(&ok).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("pong").and_then(Value::as_bool), Some(true));

        let err = error_response(
            None,
            &ServeError::Overloaded {
                queue_depth: 8,
                capacity: 8,
            },
        );
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(v.get("queue_depth").and_then(Value::as_u64), Some(8));

        let err = error_response(Some(1), &ServeError::BadRequest("quote \" here".into()));
        assert!(json::parse(&err).is_ok(), "detail must be escaped: {err}");
    }
}
