//! Typed serve-layer errors. Every failure a request can hit — malformed
//! JSON, an unknown trace, a scheduler refusal, an over-budget trace, a
//! full admission queue — maps to one [`ServeError`] variant, and every
//! variant renders as a structured error response. The daemon never
//! panics on request input; the decode paths feeding this type are
//! property-tested in `crates/trace/tests/encode_props.rs` and the
//! serve end-to-end suite.

use pim_sched::SchedError;
use pim_trace::{BinError, FlatTraceError};

/// Why a request was rejected or failed.
#[derive(Debug)]
pub enum ServeError {
    /// The request line did not parse or had the wrong shape.
    BadRequest(String),
    /// The named trace is not resident (never loaded, or evicted).
    UnknownTrace(String),
    /// The request named a method the serve layer cannot drive (only the
    /// incremental-capable SCDS/LOMCDS/GOMCDS run resident).
    UnknownMethod(String),
    /// `edit`/`simulate` against a trace with no resident engine: a
    /// `schedule` request must establish method + policy first.
    NoSchedule(String),
    /// The trace payload or edit delta failed validation.
    Trace(FlatTraceError),
    /// A `load` by `path` could not read or validate the `.pimb` binary
    /// file (missing file, truncation, checksum or structural failure).
    Io(BinError),
    /// Scheduling failed (typically capacity exhausted under the policy).
    Sched(SchedError),
    /// The trace alone exceeds the store's byte budget; admission control
    /// refuses it up front instead of evicting everything else.
    TooLarge {
        /// Estimated resident bytes of the offending trace.
        bytes: u64,
        /// Configured store budget.
        budget: u64,
    },
    /// The admission queue is full; the client should back off.
    Overloaded {
        /// Queue depth observed at rejection (== capacity).
        queue_depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
}

impl ServeError {
    /// Stable machine-readable error kind (the `"error"` response field).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::UnknownTrace(_) => "unknown_trace",
            ServeError::UnknownMethod(_) => "unknown_method",
            ServeError::NoSchedule(_) => "no_schedule",
            ServeError::Trace(_) => "trace_error",
            ServeError::Io(_) => "io_error",
            ServeError::Sched(_) => "sched_error",
            ServeError::TooLarge { .. } => "too_large",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
        }
    }

    /// Human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            ServeError::BadRequest(msg) => msg.clone(),
            ServeError::UnknownTrace(key) => format!("trace {key} is not resident"),
            ServeError::UnknownMethod(m) => {
                format!("method {m:?} cannot be served (use scds, lomcds or gomcds)")
            }
            ServeError::NoSchedule(key) => {
                format!("trace {key} has no resident engine; send a schedule request first")
            }
            ServeError::Trace(e) => e.to_string(),
            ServeError::Io(e) => e.to_string(),
            ServeError::Sched(e) => e.to_string(),
            ServeError::TooLarge { bytes, budget } => {
                format!("trace needs ~{bytes} resident bytes, budget is {budget}")
            }
            ServeError::Overloaded {
                queue_depth,
                capacity,
            } => format!("queue full ({queue_depth}/{capacity}); retry later"),
            ServeError::ShuttingDown => "server is draining".to_string(),
        }
    }
}

impl core::fmt::Display for ServeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Trace(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlatTraceError> for ServeError {
    fn from(e: FlatTraceError) -> Self {
        ServeError::Trace(e)
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

impl From<BinError> for ServeError {
    fn from(e: BinError) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let errs = [
            ServeError::BadRequest("x".into()),
            ServeError::UnknownTrace("t".into()),
            ServeError::UnknownMethod("m".into()),
            ServeError::NoSchedule("t".into()),
            ServeError::Io(BinError::BadMagic),
            ServeError::TooLarge {
                bytes: 2,
                budget: 1,
            },
            ServeError::Overloaded {
                queue_depth: 4,
                capacity: 4,
            },
            ServeError::ShuttingDown,
        ];
        let mut kinds: Vec<&str> = errs.iter().map(ServeError::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), errs.len());
        for e in &errs {
            assert!(!e.detail().is_empty());
        }
    }
}
