//! Bounded admission queue between connection handlers and service
//! workers.
//!
//! This queue is the backpressure mechanism the ISSUE names: connection
//! threads *try* to enqueue and get an immediate, typed answer — either
//! the job is admitted, or the queue is full and the caller must turn
//! that into an `overloaded` error response carrying the observed depth.
//! Nothing ever blocks on the submit side, so a burst beyond capacity is
//! rejected in microseconds instead of growing an unbounded backlog.
//!
//! Workers block on [`JobQueue::pop`]; closing the queue wakes them all
//! and lets them drain what was already admitted before exiting —
//! that drain is what makes shutdown graceful.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`JobQueue::try_push`] refused a job. The rejected job itself is
/// handed back alongside this, so the caller can build a correlated
/// error response without having paid to copy or re-parse it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue held `depth` jobs (== capacity) at rejection time.
    Full {
        /// Observed depth at rejection.
        depth: usize,
    },
    /// The queue was closed (server draining).
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    q: VecDeque<T>,
    open: bool,
}

/// A bounded multi-producer multi-consumer FIFO with non-blocking submit.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` waiting jobs (≥ 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                q: VecDeque::with_capacity(capacity.max(1)),
                open: true,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (racy by nature; for stats only).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").q.len()
    }

    /// Admit a job or refuse immediately, returning it. Never blocks.
    pub fn try_push(&self, job: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if !inner.open {
            return Err((job, PushError::Closed));
        }
        if inner.q.len() >= self.capacity {
            let depth = inner.q.len();
            return Err((job, PushError::Full { depth }));
        }
        inner.q.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until a job is available; `None` once the queue is closed
    /// *and* fully drained (workers exit on `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.q.pop_front() {
                return Some(job);
            }
            if !inner.open {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Stop admitting; wake every waiting worker. Already-admitted jobs
    /// stay queued and will still be popped (the graceful drain).
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").open = false;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_with_depth() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full { depth: 2 })));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(10).unwrap();
        q.try_push(11).unwrap();
        q.close();
        assert_eq!(q.try_push(12), Err((12, PushError::Closed)));
        // Admitted jobs still drain in order, then pop reports closure.
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(JobQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().expect("worker exits"), None);
        }
    }
}
