//! Server-side counters and the request-latency ring.
//!
//! Everything here is cheap enough to record on every request: per-op
//! counters are relaxed atomic adds, and the latency ring is a fixed-size
//! circular buffer behind a short mutex (one push per request). The
//! `stats` request freezes a snapshot; percentiles are computed only
//! then, by copying and sorting the occupied part of the ring.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Request ops the server counts, in wire order.
pub const OPS: [&str; 8] = [
    "load", "schedule", "simulate", "edit", "stats", "evict", "ping", "shutdown",
];

/// Latency observations kept for percentile estimation. Old observations
/// fall off; 4096 is plenty for p99 under sustained load while keeping a
/// `stats` request's copy + sort in the tens of microseconds.
pub const LATENCY_RING: usize = 4096;

/// Fixed-size ring of per-request service latencies, nanoseconds.
#[derive(Debug)]
pub struct LatencyRing {
    buf: Vec<u64>,
    next: usize,
    total: u64,
}

impl LatencyRing {
    fn new() -> Self {
        LatencyRing {
            buf: Vec::with_capacity(LATENCY_RING),
            next: 0,
            total: 0,
        }
    }

    fn push(&mut self, ns: u64) {
        if self.buf.len() < LATENCY_RING {
            self.buf.push(ns);
        } else {
            self.buf[self.next] = ns;
        }
        self.next = (self.next + 1) % LATENCY_RING;
        self.total += 1;
    }

    /// Percentile over the retained window (nearest-rank on the sorted
    /// copy). `None` when nothing has been recorded.
    fn snapshot(&self) -> Option<LatencySnapshot> {
        if self.buf.is_empty() {
            return None;
        }
        let mut sorted = self.buf.clone();
        sorted.sort_unstable();
        let pick = |p: f64| {
            let rank = ((sorted.len() as f64) * p).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Some(LatencySnapshot {
            count: self.total,
            p50_ns: pick(0.50),
            p90_ns: pick(0.90),
            p99_ns: pick(0.99),
            max_ns: *sorted.last().expect("non-empty"),
        })
    }
}

/// Frozen latency percentiles over the retained ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Requests ever recorded (not just the retained window).
    pub count: u64,
    /// Median service latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Worst retained observation.
    pub max_ns: u64,
}

/// Live server counters (shared across worker threads).
#[derive(Debug)]
pub struct ServerStats {
    per_op: [AtomicU64; OPS.len()],
    rejected_overloaded: AtomicU64,
    errors: AtomicU64,
    engine_builds: AtomicU64,
    engine_reuses: AtomicU64,
    latency: Mutex<LatencyRing>,
}

impl Default for ServerStats {
    fn default() -> Self {
        ServerStats {
            per_op: std::array::from_fn(|_| AtomicU64::new(0)),
            rejected_overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            engine_builds: AtomicU64::new(0),
            engine_reuses: AtomicU64::new(0),
            latency: Mutex::new(LatencyRing::new()),
        }
    }
}

impl ServerStats {
    /// Count one request of op `op` (wire name); unknown ops count as
    /// errors elsewhere and are not tracked per-op.
    pub fn record_op(&self, op: &str) {
        if let Some(i) = OPS.iter().position(|&o| o == op) {
            self.per_op[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one error response (any [`crate::ServeError`]).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one admission-control rejection (also an error response).
    pub fn record_overloaded(&self) {
        self.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
        self.record_error();
    }

    /// Count one engine build (cold schedule) or reuse (warm schedule).
    pub fn record_engine(&self, reused: bool) {
        if reused {
            self.engine_reuses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.engine_builds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one completed request's service latency.
    pub fn record_latency(&self, ns: u64) {
        self.latency.lock().expect("latency lock").push(ns);
    }

    /// Freeze the latency percentiles.
    pub fn latency_snapshot(&self) -> Option<LatencySnapshot> {
        self.latency.lock().expect("latency lock").snapshot()
    }

    /// Render the `"server"` JSON fragment of a `stats` response (an
    /// object; caller embeds it).
    pub fn to_json(&self, queue_depth: usize, queue_capacity: usize) -> String {
        use core::fmt::Write;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut s = String::with_capacity(512);
        s.push_str("{\"requests\":{");
        let mut total = 0u64;
        for (i, op) in OPS.iter().enumerate() {
            let n = load(&self.per_op[i]);
            total += n;
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{op}\":{n}");
        }
        let _ = write!(
            s,
            ",\"total\":{total}}},\"rejected_overloaded\":{},\"errors\":{},\
             \"engine_builds\":{},\"engine_reuses\":{},",
            load(&self.rejected_overloaded),
            load(&self.errors),
            load(&self.engine_builds),
            load(&self.engine_reuses),
        );
        let _ = write!(
            s,
            "\"queue\":{{\"depth\":{queue_depth},\"capacity\":{queue_capacity}}},"
        );
        match self.latency_snapshot() {
            Some(l) => {
                let us = |ns: u64| ns as f64 / 1000.0;
                let _ = write!(
                    s,
                    "\"latency\":{{\"count\":{},\"p50_us\":{:.1},\"p90_us\":{:.1},\
                     \"p99_us\":{:.1},\"max_us\":{:.1}}}}}",
                    l.count,
                    us(l.p50_ns),
                    us(l.p90_ns),
                    us(l.p99_ns),
                    us(l.max_ns),
                );
            }
            None => s.push_str("\"latency\":null}"),
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_percentiles_are_ordered() {
        let stats = ServerStats::default();
        assert!(stats.latency_snapshot().is_none());
        for ns in 1..=1000u64 {
            stats.record_latency(ns * 1000);
        }
        let l = stats.latency_snapshot().expect("recorded");
        assert_eq!(l.count, 1000);
        assert!(l.p50_ns <= l.p90_ns && l.p90_ns <= l.p99_ns && l.p99_ns <= l.max_ns);
        assert_eq!(l.p50_ns, 500_000);
        assert_eq!(l.max_ns, 1_000_000);
    }

    #[test]
    fn ring_wraps_and_keeps_counting() {
        let stats = ServerStats::default();
        for _ in 0..(LATENCY_RING as u64 + 100) {
            stats.record_latency(7);
        }
        let l = stats.latency_snapshot().expect("recorded");
        assert_eq!(l.count, LATENCY_RING as u64 + 100);
        assert_eq!(l.p99_ns, 7);
    }

    #[test]
    fn json_fragment_parses() {
        let stats = ServerStats::default();
        stats.record_op("load");
        stats.record_op("schedule");
        stats.record_overloaded();
        stats.record_engine(false);
        stats.record_engine(true);
        stats.record_latency(1234);
        let json = stats.to_json(2, 64);
        let v = pim_trace::json::parse(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert_eq!(
            v.get("requests")
                .and_then(|r| r.get("load"))
                .and_then(|n| n.as_u64()),
            Some(1)
        );
        assert_eq!(
            v.get("rejected_overloaded").and_then(|n| n.as_u64()),
            Some(1)
        );
        assert_eq!(
            v.get("queue")
                .and_then(|q| q.get("capacity"))
                .and_then(|n| n.as_u64()),
            Some(64)
        );
        assert!(v.get("latency").and_then(|l| l.get("p99_us")).is_some());
    }
}
