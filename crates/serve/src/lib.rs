//! `pim-serve` — a long-running scheduling daemon over the PIM stack.
//!
//! The offline pipeline (`pim-cli schedule`) pays the full cost of
//! parsing, cache construction and a cold solve on every invocation.
//! For workloads that schedule the *same* traces repeatedly — sweeping
//! policies, absorbing churn deltas, serving cost queries to a compiler
//! — that repeated setup dominates. This crate keeps the expensive
//! state resident: traces, their [`pim_sched::IncrementalRun`] engines
//! (edit log + cost cache + solver workspace) and materialized flat
//! views live in a byte-budgeted LRU store, and requests against a warm
//! trace skip straight to the solved schedule.
//!
//! The daemon speaks newline-delimited JSON (see [`proto`]) over three
//! transports: stdin/stdout, a Unix socket, or TCP ([`server`]).
//! Admission control is a bounded queue ([`queue`]) — a full queue
//! rejects immediately with a typed `overloaded` error carrying the
//! observed depth, so clients get backpressure instead of unbounded
//! latency. A `stats` request reports per-op counters, cache and
//! engine reuse rates, store occupancy, latency percentiles from a
//! fixed ring ([`stats`]) and the full [`pim_metrics::MetricsReport`].
//! A `shutdown` request (or EOF on stdin) drains: in-flight and
//! already-admitted work completes, new work is refused with
//! `shutting_down`, then all threads join.
//!
//! Request execution is transport-independent ([`core`]): tests and
//! the `pim-bench` load generator can drive [`ServeCore::handle_line`]
//! directly and observe byte-identical behaviour to the socket path.
//! Responses to `schedule` are bit-identical to the one-shot flat
//! schedulers — the engine parity the incremental layer already
//! guarantees extends through the wire.
//!
//! Nothing here panics on request input: every malformed line,
//! unknown trace, over-budget payload or scheduler refusal maps to one
//! [`ServeError`] variant with a stable wire kind ([`error`]).

pub mod core;
pub mod error;
pub mod proto;
pub mod queue;
pub mod server;
pub mod stats;
pub mod store;

pub use crate::core::{ServeConfig, ServeCore};
pub use error::ServeError;
pub use proto::{EvictScope, Request};
pub use queue::{JobQueue, PushError};
pub use server::{serve_stdio, submit, Client, Job, Server};
pub use stats::{LatencySnapshot, ServerStats, OPS};
pub use store::{key_hex, parse_key, trace_key, StoreStats, TraceStore};
