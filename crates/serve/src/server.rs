//! Transports and the worker pool: stdin/stdout, Unix socket, TCP.
//!
//! All three transports funnel request lines through one [`submit`]
//! path: try to enqueue on the bounded [`JobQueue`], reject immediately
//! with `overloaded` when full, otherwise block for the worker's
//! response. Service workers pull from the queue and execute on the
//! shared [`ServeCore`]; connection threads only move bytes. The socket
//! transports accept with a poll loop and read with a short timeout so
//! every thread notices the drain flag within a fraction of a second —
//! graceful shutdown is: flip the flag (the `shutdown` op does this),
//! stop accepting, close the queue, let workers drain admitted jobs,
//! join everything.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pim_trace::json;

use crate::core::{ServeConfig, ServeCore};
use crate::error::ServeError;
use crate::proto;
use crate::queue::{JobQueue, PushError};

/// How long blocking socket reads wait before re-checking the drain
/// flag.
const POLL: Duration = Duration::from_millis(100);

/// Accept-loop poll interval. Much shorter than [`POLL`]: this sleep is
/// the worst-case latency a fresh connection's first request pays, so
/// it must stay well under any latency target while remaining cheap to
/// spin (a no-op accept is one syscall).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// One admitted request: the raw line and where to send the response.
pub struct Job {
    line: String,
    reply: mpsc::SyncSender<String>,
}

/// Best-effort id extraction for responses built before a request is
/// admitted (rejections must still correlate).
fn peek_id(line: &str) -> Option<u64> {
    json::parse(line)
        .ok()?
        .get("id")
        .and_then(json::Value::as_u64)
}

/// Admission control + execution for one request line: returns the
/// response line, always (rejections are responses too).
pub fn submit(core: &ServeCore, queue: &JobQueue<Job>, line: String) -> String {
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job { line, reply: tx };
    match queue.try_push(job) {
        Ok(()) => rx.recv().unwrap_or_else(|_| {
            // Workers are gone (drain raced the admit); tell the client.
            proto::error_response(None, &ServeError::ShuttingDown)
        }),
        Err((job, PushError::Full { depth })) => {
            core.stats().record_overloaded();
            proto::error_response(
                peek_id(&job.line),
                &ServeError::Overloaded {
                    queue_depth: depth,
                    capacity: queue.capacity(),
                },
            )
        }
        Err((job, PushError::Closed)) => {
            proto::error_response(peek_id(&job.line), &ServeError::ShuttingDown)
        }
    }
}

fn worker_loop(core: Arc<ServeCore>, queue: Arc<JobQueue<Job>>) {
    while let Some(job) = queue.pop() {
        let view = (queue.depth(), queue.capacity());
        let response = core.handle_line(&job.line, view);
        // A client that hung up before its response is not an error.
        let _ = job.reply.send(response);
    }
}

fn spawn_workers(
    core: &Arc<ServeCore>,
    queue: &Arc<JobQueue<Job>>,
    count: usize,
) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|i| {
            let core = Arc::clone(core);
            let queue = Arc::clone(queue);
            std::thread::Builder::new()
                .name(format!("pim-serve-worker-{i}"))
                .spawn(move || worker_loop(core, queue))
                .expect("spawn worker thread")
        })
        .collect()
}

/// Serve one duplex byte stream: read request lines, write response
/// lines. Returns on EOF, on an unrecoverable stream error, or once the
/// drain flag is up (reads time out every [`POLL`] to check).
fn serve_stream<R: io::Read, W: Write>(
    core: &ServeCore,
    queue: &JobQueue<Job>,
    reader: R,
    mut writer: W,
) {
    let mut reader = BufReader::new(reader);
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                if line.trim().is_empty() {
                    continue;
                }
                let response = submit(core, queue, line);
                if writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return; // client hung up
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Read timeout: partial bytes (if any) stay in `buf` and
                // the next read_line keeps appending.
                if core.is_shutting_down() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Run the daemon over stdin/stdout, blocking until EOF or a `shutdown`
/// request, then drain. This is the transport the CI smoke uses: pipe
/// requests in, read responses out, no socket lifecycle to manage.
pub fn serve_stdio(config: &ServeConfig) {
    let core = Arc::new(ServeCore::new(config));
    let queue = Arc::new(JobQueue::new(config.queue_capacity));
    let workers = spawn_workers(&core, &queue, config.workers);
    let stdin = io::stdin();
    let stdout = io::stdout();
    {
        let mut reader = stdin.lock();
        let mut writer = stdout.lock();
        let mut buf = String::new();
        loop {
            if core.is_shutting_down() {
                break;
            }
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    if buf.trim().is_empty() {
                        continue;
                    }
                    let response = submit(&core, &queue, std::mem::take(&mut buf));
                    if writeln!(writer, "{response}")
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }
    core.begin_shutdown();
    queue.close();
    for w in workers {
        let _ = w.join();
    }
}

enum Endpoint {
    Unix(PathBuf),
    Tcp(SocketAddr),
}

/// A running socket daemon (Unix or TCP). Dropping without
/// [`Server::wait`]/[`Server::shutdown`] aborts the drain (threads are
/// detached); call one of them.
pub struct Server {
    core: Arc<ServeCore>,
    queue: Arc<JobQueue<Job>>,
    workers: Vec<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
    endpoint: Endpoint,
}

fn accept_loop_unix(core: Arc<ServeCore>, queue: Arc<JobQueue<Job>>, listener: UnixListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    listener
        .set_nonblocking(true)
        .expect("unix listener nonblocking");
    loop {
        if core.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(POLL));
                let core = Arc::clone(&core);
                let queue = Arc::clone(&queue);
                conns.push(
                    std::thread::Builder::new()
                        .name("pim-serve-conn".into())
                        .spawn(move || {
                            let writer = stream.try_clone().expect("clone unix stream");
                            serve_stream(&core, &queue, stream, writer);
                        })
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

fn accept_loop_tcp(core: Arc<ServeCore>, queue: Arc<JobQueue<Job>>, listener: TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    listener
        .set_nonblocking(true)
        .expect("tcp listener nonblocking");
    loop {
        if core.is_shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(POLL));
                let _ = stream.set_nodelay(true);
                let core = Arc::clone(&core);
                let queue = Arc::clone(&queue);
                conns.push(
                    std::thread::Builder::new()
                        .name("pim-serve-conn".into())
                        .spawn(move || {
                            let writer = stream.try_clone().expect("clone tcp stream");
                            serve_stream(&core, &queue, stream, writer);
                        })
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

impl Server {
    /// Bind a Unix-socket daemon at `path` (an existing socket file is
    /// replaced) and start accepting.
    pub fn start_unix(config: &ServeConfig, path: &Path) -> io::Result<Server> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        let core = Arc::new(ServeCore::new(config));
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let workers = spawn_workers(&core, &queue, config.workers);
        let accept = {
            let core = Arc::clone(&core);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("pim-serve-accept".into())
                .spawn(move || accept_loop_unix(core, queue, listener))
                .expect("spawn accept thread")
        };
        Ok(Server {
            core,
            queue,
            workers,
            accept: Some(accept),
            endpoint: Endpoint::Unix(path.to_path_buf()),
        })
    }

    /// Bind a TCP daemon at `addr` (`127.0.0.1:0` picks a free port —
    /// read it back via [`Server::tcp_addr`]) and start accepting.
    pub fn start_tcp(config: &ServeConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(ServeCore::new(config));
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let workers = spawn_workers(&core, &queue, config.workers);
        let accept = {
            let core = Arc::clone(&core);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("pim-serve-accept".into())
                .spawn(move || accept_loop_tcp(core, queue, listener))
                .expect("spawn accept thread")
        };
        Ok(Server {
            core,
            queue,
            workers,
            accept: Some(accept),
            endpoint: Endpoint::Tcp(local),
        })
    }

    /// Shared daemon state (tests inspect counters through this).
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// The bound TCP address, when this is a TCP server.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match self.endpoint {
            Endpoint::Tcp(addr) => Some(addr),
            Endpoint::Unix(_) => None,
        }
    }

    /// Block until a `shutdown` request flips the drain flag, then
    /// drain and join everything.
    pub fn wait(mut self) {
        while !self.core.is_shutting_down() {
            std::thread::sleep(POLL);
        }
        self.drain();
    }

    /// Initiate shutdown from the owning side (equivalent to receiving
    /// a `shutdown` request) and drain.
    pub fn shutdown(mut self) {
        self.core.begin_shutdown();
        self.drain();
    }

    fn drain(&mut self) {
        self.core.begin_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

enum ClientStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// A blocking line-protocol client for tests, the benchmark load
/// generator and simple scripting.
pub struct Client {
    reader: BufReader<ClientStream>,
}

impl io::Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl ClientStream {
    fn writer(&self) -> io::Result<ClientStream> {
        match self {
            ClientStream::Unix(s) => s.try_clone().map(ClientStream::Unix),
            ClientStream::Tcp(s) => s.try_clone().map(ClientStream::Tcp),
        }
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        let mut out = Vec::with_capacity(line.len() + 1);
        out.extend_from_slice(line.as_bytes());
        if !line.ends_with('\n') {
            out.push(b'\n');
        }
        match self {
            ClientStream::Unix(s) => s.write_all(&out),
            ClientStream::Tcp(s) => s.write_all(&out),
        }
    }
}

impl Client {
    /// Connect to a Unix-socket daemon.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Ok(Client {
            reader: BufReader::new(ClientStream::Unix(UnixStream::connect(path)?)),
        })
    }

    /// Connect to a TCP daemon.
    pub fn connect_tcp(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            reader: BufReader::new(ClientStream::Tcp(stream)),
        })
    }

    /// Send one request line and block for its response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.reader.get_mut().writer()?.write_line(line)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while response.ends_with('\n') || response.ends_with('\r') {
            response.pop();
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 8,
            cache_bytes: 16 << 20,
            pool_threads: 0,
        }
    }

    #[test]
    fn tcp_round_trip_and_graceful_shutdown() {
        let server = Server::start_tcp(&config(), "127.0.0.1:0").expect("bind");
        let addr = server.tcp_addr().expect("tcp endpoint");
        let mut client = Client::connect_tcp(addr).expect("connect");
        let pong = client.request(r#"{"id":1,"op":"ping"}"#).expect("ping");
        assert!(pong.contains("\"pong\":true"), "{pong}");
        let stats = client.request(r#"{"op":"stats"}"#).expect("stats");
        assert!(pim_trace::json::parse(&stats).is_ok(), "{stats}");
        let bye = client.request(r#"{"op":"shutdown"}"#).expect("shutdown");
        assert!(bye.contains("\"draining\":true"), "{bye}");
        server.wait(); // must return, not hang
    }

    #[test]
    fn unix_round_trip() {
        let path = std::env::temp_dir().join(format!("pim-serve-test-{}.sock", std::process::id()));
        let server = Server::start_unix(&config(), &path).expect("bind");
        let mut client = Client::connect_unix(&path).expect("connect");
        let pong = client.request(r#"{"op":"ping"}"#).expect("ping");
        assert!(pong.contains("\"pong\":true"), "{pong}");
        drop(client);
        server.shutdown();
        assert!(!path.exists(), "socket file cleaned up");
    }

    #[test]
    fn submit_rejects_when_queue_full() {
        // No workers draining: fill the queue by hand, then submit.
        let core = ServeCore::new(&config());
        let queue: JobQueue<Job> = JobQueue::new(2);
        let (tx, _rx) = mpsc::sync_channel(1);
        for _ in 0..2 {
            let admitted = queue.try_push(Job {
                line: String::new(),
                reply: tx.clone(),
            });
            assert!(admitted.is_ok());
        }
        let resp = submit(&core, &queue, r#"{"op":"ping"}"#.to_string());
        assert!(resp.contains("\"error\":\"overloaded\""), "{resp}");
        assert!(resp.contains("\"queue_depth\":2"), "{resp}");
        let v = pim_trace::json::parse(&resp).unwrap();
        assert_eq!(
            v.get("capacity").and_then(pim_trace::json::Value::as_u64),
            Some(2)
        );
    }
}
