//! The 2-D processor grid.
//!
//! Processors are identified by a dense [`ProcId`] so scheduling algorithms
//! can use flat `Vec`s indexed by processor instead of hash maps (the hot
//! loops in `pim-sched` iterate over every processor for every datum).

use crate::geom::Point;
use serde::{Deserialize, Serialize};

/// Dense processor identifier: `id = y * width + x` (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The raw index, usable directly into per-processor `Vec`s.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for ProcId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A `width × height` grid of PIM processors.
///
/// The paper's experiments all use a 4×4 grid; the model is general.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    width: u32,
    height: u32,
}

impl Grid {
    /// Create a grid with `width` columns and `height` rows.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the processor count overflows
    /// `u32`.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(
            width.checked_mul(height).is_some(),
            "grid processor count overflows u32"
        );
        Grid { width, height }
    }

    /// A square `n × n` grid.
    pub fn square(n: u32) -> Self {
        Grid::new(n, n)
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of processors.
    #[inline]
    pub fn num_procs(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// The processor at a coordinate.
    ///
    /// # Panics
    /// Panics if the point lies outside the grid.
    #[inline]
    pub fn proc_at(&self, p: Point) -> ProcId {
        assert!(
            self.contains(p),
            "point {p} outside {}x{} grid",
            self.width,
            self.height
        );
        ProcId(p.y * self.width + p.x)
    }

    /// The processor at `(x, y)`; convenience for tests and examples.
    #[inline]
    pub fn proc_xy(&self, x: u32, y: u32) -> ProcId {
        self.proc_at(Point::new(x, y))
    }

    /// The coordinate of a processor.
    ///
    /// # Panics
    /// Panics if the id is out of range for this grid.
    #[inline]
    pub fn point_of(&self, p: ProcId) -> Point {
        assert!(
            p.index() < self.num_procs(),
            "{p} out of range for {}x{} grid",
            self.width,
            self.height
        );
        Point::new(p.0 % self.width, p.0 / self.width)
    }

    /// Whether a coordinate lies inside the grid.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x < self.width && p.y < self.height
    }

    /// Manhattan distance between two processors — the paper's
    /// unit-volume communication cost.
    #[inline]
    pub fn dist(&self, a: ProcId, b: ProcId) -> u64 {
        self.point_of(a).l1_dist(self.point_of(b))
    }

    /// Iterate over every processor id in row-major order.
    pub fn procs(&self) -> impl Iterator<Item = ProcId> {
        (0..self.num_procs() as u32).map(ProcId)
    }

    /// Iterate over every coordinate in row-major order.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        let w = self.width;
        let h = self.height;
        (0..h).flat_map(move |y| (0..w).map(move |x| Point::new(x, y)))
    }

    /// The (up to four) grid neighbours of a processor, in
    /// east/west/south/north order.
    pub fn neighbors(&self, p: ProcId) -> impl Iterator<Item = ProcId> + '_ {
        let pt = self.point_of(p);
        let candidates = [
            (pt.x.checked_add(1), Some(pt.y)),
            (pt.x.checked_sub(1), Some(pt.y)),
            (Some(pt.x), pt.y.checked_add(1)),
            (Some(pt.x), pt.y.checked_sub(1)),
        ];
        candidates.into_iter().filter_map(move |(x, y)| {
            let (x, y) = (x?, y?);
            let q = Point::new(x, y);
            self.contains(q).then(|| self.proc_at(q))
        })
    }

    /// Maximum possible distance on this grid (between opposite corners).
    #[inline]
    pub fn diameter(&self) -> u64 {
        (self.width as u64 - 1) + (self.height as u64 - 1)
    }
}

impl core::fmt::Display for Grid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{} grid", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_point_roundtrip() {
        let g = Grid::new(4, 3);
        for p in g.procs() {
            assert_eq!(g.proc_at(g.point_of(p)), p);
        }
        for pt in g.points() {
            assert_eq!(g.point_of(g.proc_at(pt)), pt);
        }
    }

    #[test]
    fn row_major_layout() {
        let g = Grid::new(4, 4);
        assert_eq!(g.proc_xy(0, 0), ProcId(0));
        assert_eq!(g.proc_xy(3, 0), ProcId(3));
        assert_eq!(g.proc_xy(0, 1), ProcId(4));
        assert_eq!(g.proc_xy(3, 3), ProcId(15));
    }

    #[test]
    fn dist_matches_points() {
        let g = Grid::new(5, 7);
        let a = g.proc_xy(0, 6);
        let b = g.proc_xy(4, 0);
        assert_eq!(g.dist(a, b), 10);
        assert_eq!(g.dist(a, a), 0);
    }

    #[test]
    fn neighbors_corner_edge_center() {
        let g = Grid::new(4, 4);
        assert_eq!(g.neighbors(g.proc_xy(0, 0)).count(), 2);
        assert_eq!(g.neighbors(g.proc_xy(1, 0)).count(), 3);
        assert_eq!(g.neighbors(g.proc_xy(1, 1)).count(), 4);
        for n in g.neighbors(g.proc_xy(2, 2)) {
            assert_eq!(g.dist(g.proc_xy(2, 2), n), 1);
        }
    }

    #[test]
    fn counts_and_diameter() {
        let g = Grid::new(4, 4);
        assert_eq!(g.num_procs(), 16);
        assert_eq!(g.procs().count(), 16);
        assert_eq!(g.points().count(), 16);
        assert_eq!(g.diameter(), 6);
        assert_eq!(Grid::new(1, 1).diameter(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_point_panics() {
        Grid::new(2, 2).proc_at(Point::new(2, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_panics() {
        Grid::new(0, 4);
    }

    #[test]
    fn square_helper() {
        let g = Grid::square(4);
        assert_eq!((g.width(), g.height()), (4, 4));
        assert_eq!(g.to_string(), "4x4 grid");
    }
}
