//! Points on the processor grid and the L1 (Manhattan) metric.
//!
//! The paper defines the communication cost between two processors as the
//! distance along the x-axis plus the distance along the y-axis of the 2-D
//! grid, with unit distance between adjacent processors. That is exactly the
//! L1 metric implemented here.

use serde::{Deserialize, Serialize};

/// A processor coordinate on the 2-D grid. `x` is the column, `y` the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    /// Column index (x-axis position).
    pub x: u32,
    /// Row index (y-axis position).
    pub y: u32,
}

impl Point {
    /// Create a point at column `x`, row `y`.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0, 0);

    /// Manhattan (L1) distance to another point.
    ///
    /// This is the paper's inter-processor communication distance for a
    /// single unit of data under x-y routing.
    #[inline]
    pub fn l1_dist(self, other: Point) -> u64 {
        let dx = self.x.abs_diff(other.x) as u64;
        let dy = self.y.abs_diff(other.y) as u64;
        dx + dy
    }

    /// Chebyshev (L∞) distance; used only by diagnostics and tests.
    #[inline]
    pub fn linf_dist(self, other: Point) -> u64 {
        let dx = self.x.abs_diff(other.x) as u64;
        let dy = self.y.abs_diff(other.y) as u64;
        dx.max(dy)
    }

    /// True if the two points are adjacent in the grid (distance one along a
    /// single axis). Diagonal neighbours are *not* adjacent under x-y
    /// routing.
    #[inline]
    pub fn is_adjacent(self, other: Point) -> bool {
        self.l1_dist(other) == 1
    }
}

impl core::fmt::Display for Point {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// All lattice points on *some* shortest x-y path from `a` to `b` form the
/// axis-aligned bounding rectangle of the two points. Returns `true` when
/// `p` lies on at least one monotone (shortest) path between `a` and `b`.
///
/// This predicate backs the paper's Theorem 2, which quantifies over "any
/// path which gives the shortest distance" between two centers.
#[inline]
pub fn on_some_shortest_path(a: Point, b: Point, p: Point) -> bool {
    let xlo = a.x.min(b.x);
    let xhi = a.x.max(b.x);
    let ylo = a.y.min(b.y);
    let yhi = a.y.max(b.y);
    (xlo..=xhi).contains(&p.x) && (ylo..=yhi).contains(&p.y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_dist_basic() {
        assert_eq!(Point::new(0, 0).l1_dist(Point::new(0, 0)), 0);
        assert_eq!(Point::new(0, 0).l1_dist(Point::new(3, 2)), 5);
        assert_eq!(Point::new(3, 2).l1_dist(Point::new(0, 0)), 5);
        assert_eq!(Point::new(1, 1).l1_dist(Point::new(1, 4)), 3);
    }

    #[test]
    fn l1_dist_is_symmetric_and_triangle() {
        let pts = [
            Point::new(0, 0),
            Point::new(5, 1),
            Point::new(2, 7),
            Point::new(9, 9),
        ];
        for &a in &pts {
            for &b in &pts {
                assert_eq!(a.l1_dist(b), b.l1_dist(a));
                for &c in &pts {
                    assert!(a.l1_dist(c) <= a.l1_dist(b) + b.l1_dist(c));
                }
            }
        }
    }

    #[test]
    fn linf_leq_l1() {
        let a = Point::new(2, 3);
        let b = Point::new(7, 1);
        assert!(a.linf_dist(b) <= a.l1_dist(b));
        assert_eq!(a.linf_dist(b), 5);
    }

    #[test]
    fn adjacency() {
        let p = Point::new(2, 2);
        assert!(p.is_adjacent(Point::new(3, 2)));
        assert!(p.is_adjacent(Point::new(2, 1)));
        assert!(!p.is_adjacent(Point::new(3, 3))); // diagonal
        assert!(!p.is_adjacent(p));
    }

    #[test]
    fn shortest_path_membership() {
        let a = Point::new(1, 1);
        let b = Point::new(4, 3);
        assert!(on_some_shortest_path(a, b, Point::new(2, 2)));
        assert!(on_some_shortest_path(a, b, a));
        assert!(on_some_shortest_path(a, b, b));
        assert!(!on_some_shortest_path(a, b, Point::new(0, 2)));
        assert!(!on_some_shortest_path(a, b, Point::new(2, 4)));
    }

    #[test]
    fn display_format() {
        assert_eq!(Point::new(1, 3).to_string(), "(1, 3)");
    }
}
