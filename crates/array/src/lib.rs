#![warn(missing_docs)]
//! # pim-array
//!
//! Model of a Processor-In-Memory (PIM) processor array as studied in the
//! PetaFlop design-point project: a two-dimensional grid of processors, each
//! with its own local memory, communicating via dimension-ordered (x-y)
//! routing. The cost of transferring one unit of data between two processors
//! is the Manhattan distance between them, with unit distance between
//! adjacent processors.
//!
//! This crate is the hardware substrate of the reproduction: everything the
//! scheduling algorithms in `pim-sched` know about the machine lives here.
//!
//! ## Modules
//!
//! * [`geom`] — points and the L1 (Manhattan) metric.
//! * [`grid`] — the 2-D processor grid, processor ids, and iteration.
//! * [`routing`] — x-y (dimension-ordered) route enumeration and links.
//! * [`memory`] — per-processor memory capacity accounting.
//! * [`mod@line`] — the 1-D processor array used by the paper's Lemma 1.
//! * [`torus`] — a wrap-around grid (extension beyond the paper).
//! * [`topology`] — a trait abstracting distance over the above machines.
//!
//! ## Quick example
//!
//! ```
//! use pim_array::grid::Grid;
//! use pim_array::geom::Point;
//!
//! let grid = Grid::new(4, 4);
//! let a = grid.proc_at(Point::new(0, 0));
//! let b = grid.proc_at(Point::new(3, 2));
//! assert_eq!(grid.dist(a, b), 5); // |3-0| + |2-0|
//! ```

pub mod geom;
pub mod grid;
pub mod layout;
pub mod line;
pub mod memory;
pub mod routing;
pub mod topology;
pub mod torus;

pub use geom::Point;
pub use grid::{Grid, ProcId};
pub use layout::Layout;
pub use memory::{CapacityError, MemoryMap, MemorySpec};
pub use topology::Topology;
