//! Dimension-ordered (x-y) routing.
//!
//! The paper assumes x-y routing: a message first travels along the x-axis
//! to the destination column, then along the y-axis to the destination row.
//! The number of links crossed equals the Manhattan distance, which is why
//! the analytic cost model in `pim-sched` and the hop-by-hop simulator in
//! `pim-sim` must always agree — a fact the integration tests assert.

use crate::geom::Point;
use crate::grid::{Grid, ProcId};
use serde::{Deserialize, Serialize};

/// A directed link between two adjacent processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Source processor of the link.
    pub from: ProcId,
    /// Destination processor of the link.
    pub to: ProcId,
}

impl core::fmt::Display for Link {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// The full x-y route from `src` to `dst`, as the sequence of processors
/// visited (inclusive of both endpoints). A zero-length transfer yields a
/// single-element route.
pub fn xy_route(grid: &Grid, src: ProcId, dst: ProcId) -> Vec<ProcId> {
    let mut route = Vec::with_capacity(grid.dist(src, dst) as usize + 1);
    visit_xy_route(grid, src, dst, |p| route.push(p));
    route
}

/// Walk the x-y route calling `visit` for every processor on it, without
/// allocating. Endpoint-inclusive, x first then y.
pub fn visit_xy_route(grid: &Grid, src: ProcId, dst: ProcId, mut visit: impl FnMut(ProcId)) {
    let s = grid.point_of(src);
    let d = grid.point_of(dst);
    let mut cur = s;
    visit(grid.proc_at(cur));
    while cur.x != d.x {
        cur.x = if d.x > cur.x { cur.x + 1 } else { cur.x - 1 };
        visit(grid.proc_at(cur));
    }
    while cur.y != d.y {
        cur.y = if d.y > cur.y { cur.y + 1 } else { cur.y - 1 };
        visit(grid.proc_at(cur));
    }
}

/// Enumerate the directed links crossed by the x-y route from `src` to
/// `dst`, calling `visit` once per link in travel order.
pub fn visit_xy_links(grid: &Grid, src: ProcId, dst: ProcId, mut visit: impl FnMut(Link)) {
    let mut prev: Option<ProcId> = None;
    visit_xy_route(grid, src, dst, |p| {
        if let Some(q) = prev {
            visit(Link { from: q, to: p });
        }
        prev = Some(p);
    });
}

/// Number of hops (links) on the x-y route — by construction equal to the
/// Manhattan distance.
#[inline]
pub fn hop_count(grid: &Grid, src: ProcId, dst: ProcId) -> u64 {
    grid.dist(src, dst)
}

/// Identify every directed link of the grid with a dense index, so that the
/// simulator can keep per-link counters in a flat `Vec`.
///
/// Links are numbered `proc_index * 4 + direction` with direction
/// 0 = east (+x), 1 = west (−x), 2 = south (+y), 3 = north (−y). Slots for
/// links that would leave the grid exist but are never used; the waste is
/// tiny and the indexing branch-free.
#[derive(Debug, Clone, Copy)]
pub struct LinkIndex {
    grid: Grid,
}

impl LinkIndex {
    /// Build the link indexer for a grid.
    pub fn new(grid: Grid) -> Self {
        LinkIndex { grid }
    }

    /// Total number of link slots (including unused border slots).
    pub fn num_slots(&self) -> usize {
        self.grid.num_procs() * 4
    }

    /// Dense index of a directed link between adjacent processors.
    ///
    /// # Panics
    /// Panics if `link` does not connect two adjacent processors.
    pub fn index_of(&self, link: Link) -> usize {
        let a = self.grid.point_of(link.from);
        let b = self.grid.point_of(link.to);
        assert!(a.is_adjacent(b), "link {link} endpoints not adjacent");
        let dir = if b.x == a.x + 1 {
            0
        } else if a.x == b.x + 1 {
            1
        } else if b.y == a.y + 1 {
            2
        } else {
            3
        };
        link.from.index() * 4 + dir
    }

    /// Reverse mapping from a dense slot back to the link, or `None` for an
    /// unused border slot.
    pub fn link_of(&self, slot: usize) -> Option<Link> {
        let from = ProcId((slot / 4) as u32);
        if from.index() >= self.grid.num_procs() {
            return None;
        }
        let p = self.grid.point_of(from);
        let q = match slot % 4 {
            0 => Point::new(p.x.checked_add(1)?, p.y),
            1 => Point::new(p.x.checked_sub(1)?, p.y),
            2 => Point::new(p.x, p.y.checked_add(1)?),
            _ => Point::new(p.x, p.y.checked_sub(1)?),
        };
        self.grid.contains(q).then(|| Link {
            from,
            to: self.grid.proc_at(q),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn route_goes_x_then_y() {
        let g = grid();
        let route = xy_route(&g, g.proc_xy(0, 0), g.proc_xy(2, 2));
        let pts: Vec<_> = route.iter().map(|&p| g.point_of(p)).collect();
        assert_eq!(
            pts,
            vec![
                Point::new(0, 0),
                Point::new(1, 0),
                Point::new(2, 0),
                Point::new(2, 1),
                Point::new(2, 2),
            ]
        );
    }

    #[test]
    fn route_handles_negative_directions() {
        let g = grid();
        let route = xy_route(&g, g.proc_xy(3, 3), g.proc_xy(1, 2));
        let pts: Vec<_> = route.iter().map(|&p| g.point_of(p)).collect();
        assert_eq!(
            pts,
            vec![
                Point::new(3, 3),
                Point::new(2, 3),
                Point::new(1, 3),
                Point::new(1, 2),
            ]
        );
    }

    #[test]
    fn route_length_equals_distance_plus_one() {
        let g = Grid::new(6, 5);
        for a in g.procs() {
            for b in g.procs() {
                let route = xy_route(&g, a, b);
                assert_eq!(route.len() as u64, g.dist(a, b) + 1);
                assert_eq!(route.first(), Some(&a));
                assert_eq!(route.last(), Some(&b));
                // consecutive processors adjacent
                for w in route.windows(2) {
                    assert_eq!(g.dist(w[0], w[1]), 1);
                }
            }
        }
    }

    #[test]
    fn self_route_is_single_node() {
        let g = grid();
        let p = g.proc_xy(2, 1);
        assert_eq!(xy_route(&g, p, p), vec![p]);
        let mut links = 0;
        visit_xy_links(&g, p, p, |_| links += 1);
        assert_eq!(links, 0);
    }

    #[test]
    fn hop_count_equals_manhattan() {
        let g = Grid::new(7, 3);
        for a in g.procs() {
            for b in g.procs() {
                assert_eq!(hop_count(&g, a, b), g.dist(a, b));
            }
        }
    }

    #[test]
    fn link_index_roundtrip() {
        let g = grid();
        let idx = LinkIndex::new(g);
        let mut seen = std::collections::HashSet::new();
        for a in g.procs() {
            for b in g.neighbors(a) {
                let link = Link { from: a, to: b };
                let slot = idx.index_of(link);
                assert!(slot < idx.num_slots());
                assert!(seen.insert(slot), "slot collision for {link}");
                assert_eq!(idx.link_of(slot), Some(link));
            }
        }
        // 4x4 grid: 2*4*3*2 = 48 directed links
        assert_eq!(seen.len(), 48);
    }

    #[test]
    fn link_index_border_slots_are_none() {
        let g = grid();
        let idx = LinkIndex::new(g);
        // west link of processor (0,0) does not exist: slot = 0*4 + 1
        assert_eq!(idx.link_of(1), None);
        // beyond range
        assert_eq!(idx.link_of(idx.num_slots() + 5), None);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn link_index_rejects_non_adjacent() {
        let g = grid();
        LinkIndex::new(g).index_of(Link {
            from: g.proc_xy(0, 0),
            to: g.proc_xy(2, 0),
        });
    }
}
