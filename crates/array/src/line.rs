//! One-dimensional processor array.
//!
//! The paper proves its grouping properties first on a 1-D array (Lemma 1:
//! the cost of a window's reference string increases strictly monotonically
//! along the direction between the closest pair of local optimal centers)
//! and then lifts them to the 2-D grid (Theorem 2). This small model exists
//! so that `pim-sched::theory` can state and property-test Lemma 1 in its
//! native setting.

use serde::{Deserialize, Serialize};

/// A 1-D array of `len` processors with unit spacing; processor `i` sits at
/// coordinate `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Line {
    len: u32,
}

impl Line {
    /// Create an array of `len` processors.
    ///
    /// # Panics
    /// Panics when `len == 0`.
    pub fn new(len: u32) -> Self {
        assert!(len > 0, "line length must be positive");
        Line { len }
    }

    /// Number of processors.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Always false — a `Line` has at least one processor.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Distance between processors `a` and `b`.
    #[inline]
    pub fn dist(&self, a: u32, b: u32) -> u64 {
        debug_assert!(a < self.len && b < self.len);
        a.abs_diff(b) as u64
    }

    /// Total weighted cost of serving the reference multiset
    /// `refs = [(proc, count)]` from a datum stored at `center`.
    pub fn cost_at(&self, refs: &[(u32, u32)], center: u32) -> u64 {
        refs.iter()
            .map(|&(p, n)| n as u64 * self.dist(center, p))
            .sum()
    }

    /// The local optimal center(s) for a reference multiset: every position
    /// achieving the minimum total cost. For L1 on a line this is the
    /// weighted median interval.
    pub fn optimal_centers(&self, refs: &[(u32, u32)]) -> Vec<u32> {
        let mut best = u64::MAX;
        let mut centers = Vec::new();
        for c in 0..self.len {
            let cost = self.cost_at(refs, c);
            match cost.cmp(&best) {
                core::cmp::Ordering::Less => {
                    best = cost;
                    centers.clear();
                    centers.push(c);
                }
                core::cmp::Ordering::Equal => centers.push(c),
                core::cmp::Ordering::Greater => {}
            }
        }
        centers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_and_cost() {
        let l = Line::new(8);
        assert_eq!(l.dist(2, 5), 3);
        assert_eq!(l.cost_at(&[(0, 1), (4, 2)], 2), 2 + 2 * 2);
    }

    #[test]
    fn optimal_center_is_weighted_median() {
        let l = Line::new(8);
        // refs at 0 (w=1) and 7 (w=3): median pulled to 7.
        assert_eq!(l.optimal_centers(&[(0, 1), (7, 3)]), vec![7]);
        // symmetric weights: every point between is optimal.
        assert_eq!(l.optimal_centers(&[(2, 1), (5, 1)]), vec![2, 3, 4, 5]);
    }

    #[test]
    fn empty_refs_all_optimal() {
        let l = Line::new(3);
        assert_eq!(l.optimal_centers(&[]), vec![0, 1, 2]);
    }

    #[test]
    fn lemma1_monotonicity_example() {
        // Lemma 1 setting: two windows, closest pair of local optimal
        // centers; cost of window 0 strictly increases walking toward the
        // other center.
        let l = Line::new(10);
        let w0 = [(1u32, 3u32), (2, 1)];
        let w1 = [(8u32, 2u32)];
        let c0 = *l.optimal_centers(&w0).last().unwrap();
        let c1 = *l.optimal_centers(&w1).first().unwrap();
        assert!(c0 < c1);
        let mut prev = l.cost_at(&w0, c0);
        for p in (c0 + 1)..=c1 {
            let cur = l.cost_at(&w0, p);
            assert!(cur > prev, "cost must strictly increase at {p}");
            prev = cur;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_panics() {
        Line::new(0);
    }
}
