//! Wrap-around (torus) grid — an extension beyond the paper.
//!
//! PIM array proposals in the PetaFlop study vary in whether the mesh edges
//! wrap. The paper evaluates an open mesh; the torus variant is provided so
//! the ablation benches can quantify how much of the scheduling gain
//! survives when wrap-around links shrink distances.

use crate::geom::Point;
use crate::grid::ProcId;
use serde::{Deserialize, Serialize};

/// A `width × height` torus of processors: like [`crate::grid::Grid`] but
/// with wrap-around distance in both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus {
    width: u32,
    height: u32,
}

impl Torus {
    /// Create a torus with `width` columns and `height` rows.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be positive");
        Torus { width, height }
    }

    /// Number of columns.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of processors.
    pub fn num_procs(&self) -> usize {
        (self.width * self.height) as usize
    }

    /// Coordinate of a processor (same row-major layout as `Grid`).
    pub fn point_of(&self, p: ProcId) -> Point {
        assert!(p.index() < self.num_procs());
        Point::new(p.0 % self.width, p.0 / self.width)
    }

    /// Processor at a coordinate.
    pub fn proc_at(&self, p: Point) -> ProcId {
        assert!(p.x < self.width && p.y < self.height);
        ProcId(p.y * self.width + p.x)
    }

    /// Wrap-around Manhattan distance.
    pub fn dist(&self, a: ProcId, b: ProcId) -> u64 {
        let pa = self.point_of(a);
        let pb = self.point_of(b);
        let dx = pa.x.abs_diff(pb.x);
        let dy = pa.y.abs_diff(pb.y);
        let dx = dx.min(self.width - dx) as u64;
        let dy = dy.min(self.height - dy) as u64;
        dx + dy
    }

    /// Maximum distance between any two processors.
    pub fn diameter(&self) -> u64 {
        (self.width as u64 / 2) + (self.height as u64 / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraparound_shrinks_distance() {
        let t = Torus::new(4, 4);
        let a = t.proc_at(Point::new(0, 0));
        let b = t.proc_at(Point::new(3, 0));
        // open mesh distance would be 3; torus wraps to 1
        assert_eq!(t.dist(a, b), 1);
        let c = t.proc_at(Point::new(3, 3));
        assert_eq!(t.dist(a, c), 2);
    }

    #[test]
    fn interior_distances_match_mesh() {
        let t = Torus::new(8, 8);
        let a = t.proc_at(Point::new(2, 2));
        let b = t.proc_at(Point::new(4, 5));
        assert_eq!(t.dist(a, b), 5);
    }

    #[test]
    fn diameter_is_half_each_axis() {
        assert_eq!(Torus::new(4, 4).diameter(), 4);
        assert_eq!(Torus::new(5, 5).diameter(), 4);
        assert_eq!(Torus::new(1, 1).diameter(), 0);
    }

    #[test]
    fn torus_diameter_bounds_all_pairs() {
        let t = Torus::new(5, 3);
        for a in 0..t.num_procs() as u32 {
            for b in 0..t.num_procs() as u32 {
                assert!(t.dist(ProcId(a), ProcId(b)) <= t.diameter());
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_torus_panics() {
        Torus::new(4, 0);
    }
}
