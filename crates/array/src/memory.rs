//! Per-processor memory capacity accounting.
//!
//! The paper assumes each processor can hold a limited number of data; when
//! the optimal center for a datum is full, the datum falls back to the next
//! processor in a cost-sorted *processor list*. The experiments fix the
//! capacity at twice the minimum a balanced distribution requires (e.g. an
//! 8×8 data array on a 4×4 grid needs 4 slots per processor minimum, so
//! each processor holds 8).

use crate::grid::{Grid, ProcId};
use serde::{Deserialize, Serialize};

/// How much data each processor's local memory can hold, in data units
/// (one unit = one datum; the paper's model is per-element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Capacity of each processor, in data units.
    pub capacity_per_proc: u32,
}

impl MemorySpec {
    /// A uniform capacity.
    pub fn uniform(capacity_per_proc: u32) -> Self {
        MemorySpec { capacity_per_proc }
    }

    /// Effectively unlimited memory (the unconstrained model used when
    /// studying the pure scheduling question).
    pub fn unbounded() -> Self {
        MemorySpec {
            capacity_per_proc: u32::MAX,
        }
    }

    /// The paper's experimental rule: capacity is `factor ×` the minimum a
    /// balanced distribution of `total_data` items over `grid` requires.
    ///
    /// "We assume that the memory size of processor is twice more than the
    /// minimum memory size it requires" → `factor = 2`.
    pub fn scaled_minimum(grid: &Grid, total_data: usize, factor: u32) -> Self {
        let min = total_data.div_ceil(grid.num_procs());
        MemorySpec {
            capacity_per_proc: (min as u32).saturating_mul(factor).max(1),
        }
    }

    /// Whether this spec can hold `total_data` items at all on `grid`.
    pub fn feasible(&self, grid: &Grid, total_data: usize) -> bool {
        (self.capacity_per_proc as u128) * (grid.num_procs() as u128) >= total_data as u128
    }
}

/// Error returned when an allocation would exceed a processor's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// The processor that was full.
    pub proc: ProcId,
    /// Its capacity.
    pub capacity: u32,
}

impl core::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} is full (capacity {})", self.proc, self.capacity)
    }
}

impl std::error::Error for CapacityError {}

/// Occupancy tracker for one snapshot in time (one execution window).
///
/// The scheduling algorithms allocate one slot per datum stored on a
/// processor during a window; movement between windows frees the old slot
/// and claims a new one, which is modelled by using one `MemoryMap` per
/// window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMap {
    spec: MemorySpec,
    used: Vec<u32>,
}

impl MemoryMap {
    /// Fresh, empty occupancy map for a grid.
    pub fn new(grid: &Grid, spec: MemorySpec) -> Self {
        MemoryMap {
            spec,
            used: vec![0; grid.num_procs()],
        }
    }

    /// The capacity spec this map enforces.
    pub fn spec(&self) -> MemorySpec {
        self.spec
    }

    /// Units currently allocated on `p`.
    #[inline]
    pub fn used(&self, p: ProcId) -> u32 {
        self.used[p.index()]
    }

    /// Free units remaining on `p`.
    #[inline]
    pub fn free(&self, p: ProcId) -> u32 {
        self.spec.capacity_per_proc - self.used[p.index()]
    }

    /// Whether `p` can accept one more datum.
    #[inline]
    pub fn has_room(&self, p: ProcId) -> bool {
        self.used[p.index()] < self.spec.capacity_per_proc
    }

    /// Claim one slot on `p`.
    pub fn allocate(&mut self, p: ProcId) -> Result<(), CapacityError> {
        if self.has_room(p) {
            self.used[p.index()] += 1;
            Ok(())
        } else {
            Err(CapacityError {
                proc: p,
                capacity: self.spec.capacity_per_proc,
            })
        }
    }

    /// Release one slot on `p`.
    ///
    /// # Panics
    /// Panics if `p` has no allocated slots (double free).
    pub fn release(&mut self, p: ProcId) {
        assert!(self.used[p.index()] > 0, "release on empty {p}");
        self.used[p.index()] -= 1;
    }

    /// Total units allocated across the whole array.
    pub fn total_used(&self) -> u64 {
        self.used.iter().map(|&u| u as u64).sum()
    }

    /// Highest occupancy of any processor — a load-balance diagnostic.
    pub fn max_used(&self) -> u32 {
        self.used.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn scaled_minimum_matches_paper_rule() {
        // 8x8 data on 4x4 grid, factor 2 → "the memory size of each
        // processor is eight".
        let spec = MemorySpec::scaled_minimum(&grid(), 64, 2);
        assert_eq!(spec.capacity_per_proc, 8);
        let spec = MemorySpec::scaled_minimum(&grid(), 16 * 16, 2);
        assert_eq!(spec.capacity_per_proc, 32);
    }

    #[test]
    fn scaled_minimum_rounds_up() {
        // 17 items on 16 procs → min 2 → capacity 4 at factor 2.
        let spec = MemorySpec::scaled_minimum(&grid(), 17, 2);
        assert_eq!(spec.capacity_per_proc, 4);
        // Never zero even for tiny data sets.
        let spec = MemorySpec::scaled_minimum(&grid(), 0, 2);
        assert_eq!(spec.capacity_per_proc, 1);
    }

    #[test]
    fn feasibility() {
        let g = grid();
        assert!(MemorySpec::uniform(4).feasible(&g, 64));
        assert!(!MemorySpec::uniform(3).feasible(&g, 64));
        assert!(MemorySpec::unbounded().feasible(&g, 1_000_000));
    }

    #[test]
    fn allocate_release_cycle() {
        let g = grid();
        let mut m = MemoryMap::new(&g, MemorySpec::uniform(2));
        let p = g.proc_xy(1, 1);
        assert_eq!(m.free(p), 2);
        m.allocate(p).unwrap();
        m.allocate(p).unwrap();
        assert!(!m.has_room(p));
        assert_eq!(
            m.allocate(p),
            Err(CapacityError {
                proc: p,
                capacity: 2
            })
        );
        m.release(p);
        assert!(m.has_room(p));
        assert_eq!(m.total_used(), 1);
        assert_eq!(m.max_used(), 1);
    }

    #[test]
    #[should_panic(expected = "release on empty")]
    fn double_free_panics() {
        let g = grid();
        let mut m = MemoryMap::new(&g, MemorySpec::uniform(2));
        m.release(g.proc_xy(0, 0));
    }

    #[test]
    fn capacity_error_displays() {
        let e = CapacityError {
            proc: ProcId(3),
            capacity: 8,
        };
        assert_eq!(e.to_string(), "P3 is full (capacity 8)");
    }
}
