//! Static data-to-processor distributions.
//!
//! These are the "straight-forward" distributions the paper compares
//! against (row-wise and column-wise), plus the other classic HPF-style
//! layouts (2-D block, cyclic, block-cyclic) used by the ablation studies
//! and by the workload generators' iteration partitioning.
//!
//! A layout maps an element `(row, col)` of a `rows × cols` data array to a
//! processor of the grid. All layouts except [`Layout::Diagonal`] are
//! *balanced* (every processor receives `⌊N/m⌋` or `⌈N/m⌉` elements of an
//! `N`-element array); the diagonal layout is balanced exactly when the
//! column count is a multiple of the processor count.

use crate::grid::{Grid, ProcId};
use serde::{Deserialize, Serialize};

/// A static distribution of a 2-D data array over the processor grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Elements in row-major order, split into contiguous equal chunks,
    /// chunk `k` on processor `k`. The paper's straight-forward baseline.
    RowWise,
    /// Same but column-major order — the paper's other default.
    ColumnWise,
    /// 2-D block decomposition: the data array is cut into a
    /// `grid.width() × grid.height()` array of rectangular tiles.
    Block2D,
    /// Element `e` (row-major index) on processor `e mod m`.
    Cyclic,
    /// Block-cyclic with `block` consecutive row-major elements per unit.
    BlockCyclic {
        /// Elements per cyclic unit; must be positive.
        block: u32,
    },
    /// Boustrophedon: like [`Layout::RowWise`] but alternate data rows run
    /// right-to-left, so consecutive elements stay on neighbouring
    /// processors across row boundaries.
    Snake,
    /// Anti-diagonal striping: element `(r, c)` on processor
    /// `(r + c) mod m`. Spreads each data row *and* each data column over
    /// many processors — the classic wavefront-friendly distribution.
    Diagonal,
}

impl Layout {
    /// The processor holding element `(row, col)` of a `rows × cols` array.
    ///
    /// # Panics
    /// Panics if the element is out of range or (for `BlockCyclic`) the
    /// block size is zero.
    pub fn owner(&self, grid: &Grid, rows: u32, cols: u32, row: u32, col: u32) -> ProcId {
        assert!(
            row < rows && col < cols,
            "element ({row},{col}) out of {rows}x{cols}"
        );
        let m = grid.num_procs() as u64;
        match *self {
            Layout::RowWise => {
                let e = (row as u64) * cols as u64 + col as u64;
                let n = rows as u64 * cols as u64;
                ProcId((e * m / n) as u32)
            }
            Layout::ColumnWise => {
                let e = (col as u64) * rows as u64 + row as u64;
                let n = rows as u64 * cols as u64;
                ProcId((e * m / n) as u32)
            }
            Layout::Block2D => {
                let px = (col as u64 * grid.width() as u64 / cols as u64) as u32;
                let py = (row as u64 * grid.height() as u64 / rows as u64) as u32;
                grid.proc_xy(px, py)
            }
            Layout::Cyclic => {
                let e = (row as u64) * cols as u64 + col as u64;
                ProcId((e % m) as u32)
            }
            Layout::BlockCyclic { block } => {
                assert!(block > 0, "block size must be positive");
                let e = (row as u64) * cols as u64 + col as u64;
                ProcId(((e / block as u64) % m) as u32)
            }
            Layout::Snake => {
                let c = if row.is_multiple_of(2) {
                    col
                } else {
                    cols - 1 - col
                };
                let e = (row as u64) * cols as u64 + c as u64;
                let n = rows as u64 * cols as u64;
                ProcId((e * m / n) as u32)
            }
            Layout::Diagonal => ProcId(((row as u64 + col as u64) % m) as u32),
        }
    }

    /// Owner by dense row-major element id (`0..rows*cols`).
    pub fn owner_of_elem(&self, grid: &Grid, rows: u32, cols: u32, elem: u32) -> ProcId {
        self.owner(grid, rows, cols, elem / cols, elem % cols)
    }

    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Layout::RowWise => "row-wise",
            Layout::ColumnWise => "column-wise",
            Layout::Block2D => "block-2d",
            Layout::Cyclic => "cyclic",
            Layout::BlockCyclic { .. } => "block-cyclic",
            Layout::Snake => "snake",
            Layout::Diagonal => "diagonal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(layout: Layout, grid: &Grid, rows: u32, cols: u32) -> Vec<u32> {
        let mut c = vec![0u32; grid.num_procs()];
        for r in 0..rows {
            for j in 0..cols {
                c[layout.owner(grid, rows, cols, r, j).index()] += 1;
            }
        }
        c
    }

    #[test]
    fn row_wise_contiguous_chunks() {
        let g = Grid::new(4, 4);
        // 8x8 data = 64 elements over 16 procs → 4 consecutive elements each
        let l = Layout::RowWise;
        assert_eq!(l.owner(&g, 8, 8, 0, 0), ProcId(0));
        assert_eq!(l.owner(&g, 8, 8, 0, 3), ProcId(0));
        assert_eq!(l.owner(&g, 8, 8, 0, 4), ProcId(1));
        assert_eq!(l.owner(&g, 8, 8, 7, 7), ProcId(15));
    }

    #[test]
    fn column_wise_transposes_row_wise() {
        let g = Grid::new(4, 4);
        for r in 0..8 {
            for c in 0..8 {
                assert_eq!(
                    Layout::ColumnWise.owner(&g, 8, 8, r, c),
                    Layout::RowWise.owner(&g, 8, 8, c, r)
                );
            }
        }
    }

    #[test]
    fn all_layouts_balanced() {
        let g = Grid::new(4, 4);
        for layout in [
            Layout::RowWise,
            Layout::ColumnWise,
            Layout::Block2D,
            Layout::Cyclic,
            Layout::BlockCyclic { block: 3 },
        ] {
            for (rows, cols) in [(8, 8), (16, 16), (12, 20)] {
                let c = counts(layout, &g, rows, cols);
                let total: u32 = c.iter().sum();
                assert_eq!(total, rows * cols);
                let lo = *c.iter().min().unwrap();
                let hi = *c.iter().max().unwrap();
                assert!(
                    hi - lo <= (rows * cols).div_ceil(16), // generous balance bound
                    "{} unbalanced: {lo}..{hi}",
                    layout.name()
                );
            }
        }
    }

    #[test]
    fn row_and_column_wise_perfectly_balanced() {
        let g = Grid::new(4, 4);
        for layout in [Layout::RowWise, Layout::ColumnWise, Layout::Cyclic] {
            let c = counts(layout, &g, 8, 8);
            assert!(c.iter().all(|&n| n == 4), "{}: {c:?}", layout.name());
        }
    }

    #[test]
    fn block2d_tiles() {
        let g = Grid::new(4, 4);
        // 8x8 over 4x4 → 2x2 tiles
        let l = Layout::Block2D;
        assert_eq!(l.owner(&g, 8, 8, 0, 0), g.proc_xy(0, 0));
        assert_eq!(l.owner(&g, 8, 8, 1, 1), g.proc_xy(0, 0));
        assert_eq!(l.owner(&g, 8, 8, 0, 2), g.proc_xy(1, 0));
        assert_eq!(l.owner(&g, 8, 8, 7, 7), g.proc_xy(3, 3));
    }

    #[test]
    fn owner_of_elem_matches_owner() {
        let g = Grid::new(4, 4);
        for layout in [Layout::RowWise, Layout::Cyclic, Layout::Block2D] {
            for e in 0..64u32 {
                assert_eq!(
                    layout.owner_of_elem(&g, 8, 8, e),
                    layout.owner(&g, 8, 8, e / 8, e % 8)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_out_of_range_element() {
        Layout::RowWise.owner(&Grid::new(2, 2), 4, 4, 4, 0);
    }

    #[test]
    fn names() {
        assert_eq!(Layout::RowWise.name(), "row-wise");
        assert_eq!(Layout::BlockCyclic { block: 2 }.name(), "block-cyclic");
        assert_eq!(Layout::Snake.name(), "snake");
        assert_eq!(Layout::Diagonal.name(), "diagonal");
    }

    #[test]
    fn snake_alternates_direction() {
        let g = Grid::new(4, 4);
        // 8x8 over 16 procs, 4 elements per proc; even row left-to-right
        assert_eq!(Layout::Snake.owner(&g, 8, 8, 0, 0), ProcId(0));
        assert_eq!(Layout::Snake.owner(&g, 8, 8, 0, 7), ProcId(1));
        // odd rows reversed: (1, 7) is the first element of row 1's walk
        assert_eq!(Layout::Snake.owner(&g, 8, 8, 1, 7), ProcId(2));
        assert_eq!(Layout::Snake.owner(&g, 8, 8, 1, 0), ProcId(3));
        // balanced
        let c = counts(Layout::Snake, &g, 8, 8);
        assert!(c.iter().all(|&n| n == 4), "{c:?}");
    }

    #[test]
    fn diagonal_spreads_rows_and_columns() {
        let g = Grid::new(4, 4);
        let l = Layout::Diagonal;
        assert_eq!(l.owner(&g, 8, 8, 0, 0), ProcId(0));
        assert_eq!(l.owner(&g, 8, 8, 0, 5), ProcId(5));
        assert_eq!(l.owner(&g, 8, 8, 3, 2), ProcId(5));
        assert_eq!(l.owner(&g, 8, 8, 7, 7), ProcId(14));
        // every data row touches 8 distinct processors
        for r in 0..8 {
            let mut procs: Vec<u32> = (0..8).map(|c| l.owner(&g, 8, 8, r, c).0).collect();
            procs.sort_unstable();
            procs.dedup();
            assert_eq!(procs.len(), 8, "row {r}");
        }
        // balanced when cols is a multiple of the processor count
        let g2 = Grid::new(2, 4); // 8 procs, 32 cols below
        let c = counts(l, &g2, 8, 32);
        assert!(c.iter().all(|&n| n == 32), "{c:?}");
    }
}
