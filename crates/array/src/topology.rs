//! Distance abstraction over processor arrays.
//!
//! The scheduling algorithms only need three things from the machine: how
//! many processors there are, the distance between any two, and a way to
//! enumerate them. Abstracting this lets the same SCDS/LOMCDS/GOMCDS code
//! run on the paper's 2-D mesh, on a 1-D array, or on the torus extension —
//! and lets tests cross-check optimized grid-specific solvers against the
//! generic ones.

use crate::grid::{Grid, ProcId};
use crate::torus::Torus;

/// A processor array with a distance metric.
///
/// Implementations must guarantee the metric axioms: `dist(a, a) == 0`,
/// symmetry, and the triangle inequality. Property tests in this crate
/// exercise all three for every provided implementation.
pub trait Topology {
    /// Number of processors in the array.
    fn num_procs(&self) -> usize;

    /// Distance (per unit volume communication cost) between processors.
    fn dist(&self, a: ProcId, b: ProcId) -> u64;

    /// Largest distance between any two processors.
    fn diameter(&self) -> u64;

    /// Iterate over every processor id.
    fn proc_ids(&self) -> Box<dyn Iterator<Item = ProcId> + '_> {
        Box::new((0..self.num_procs() as u32).map(ProcId))
    }
}

impl Topology for Grid {
    fn num_procs(&self) -> usize {
        Grid::num_procs(self)
    }

    fn dist(&self, a: ProcId, b: ProcId) -> u64 {
        Grid::dist(self, a, b)
    }

    fn diameter(&self) -> u64 {
        Grid::diameter(self)
    }
}

impl Topology for Torus {
    fn num_procs(&self) -> usize {
        Torus::num_procs(self)
    }

    fn dist(&self, a: ProcId, b: ProcId) -> u64 {
        Torus::dist(self, a, b)
    }

    fn diameter(&self) -> u64 {
        Torus::diameter(self)
    }
}

/// Check the metric axioms exhaustively over all processor triples.
/// Intended for tests on small arrays; cost is `O(n³)`.
pub fn check_metric_axioms<T: Topology>(t: &T) -> Result<(), String> {
    let ids: Vec<ProcId> = t.proc_ids().collect();
    for &a in &ids {
        if t.dist(a, a) != 0 {
            return Err(format!("dist({a},{a}) != 0"));
        }
        for &b in &ids {
            if t.dist(a, b) != t.dist(b, a) {
                return Err(format!("dist({a},{b}) not symmetric"));
            }
            if t.dist(a, b) > t.diameter() {
                return Err(format!("dist({a},{b}) exceeds diameter"));
            }
            for &c in &ids {
                if t.dist(a, c) > t.dist(a, b) + t.dist(b, c) {
                    return Err(format!("triangle inequality fails for {a},{b},{c}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_satisfies_metric_axioms() {
        check_metric_axioms(&Grid::new(4, 4)).unwrap();
        check_metric_axioms(&Grid::new(1, 7)).unwrap();
        check_metric_axioms(&Grid::new(5, 2)).unwrap();
    }

    #[test]
    fn torus_satisfies_metric_axioms() {
        check_metric_axioms(&Torus::new(4, 4)).unwrap();
        check_metric_axioms(&Torus::new(3, 5)).unwrap();
    }

    #[test]
    fn proc_ids_enumeration() {
        let g = Grid::new(2, 3);
        let ids: Vec<_> = Topology::proc_ids(&g).collect();
        assert_eq!(ids.len(), 6);
        assert_eq!(ids[0], ProcId(0));
        assert_eq!(ids[5], ProcId(5));
    }

    #[test]
    fn dyn_dispatch_works() {
        let g = Grid::new(4, 4);
        let t: &dyn Topology = &g;
        assert_eq!(t.num_procs(), 16);
        assert_eq!(t.diameter(), 6);
    }
}
