//! Property tests for the array substrate: metric axioms, routing/distance
//! agreement, and memory accounting invariants.

use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_array::routing::{hop_count, visit_xy_links, xy_route, LinkIndex};
use pim_array::torus::Torus;
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = Grid> {
    (1u32..=12, 1u32..=12).prop_map(|(w, h)| Grid::new(w, h))
}

fn arb_grid_and_two_procs() -> impl Strategy<Value = (Grid, ProcId, ProcId)> {
    arb_grid().prop_flat_map(|g| {
        let n = g.num_procs() as u32;
        (Just(g), 0..n, 0..n).prop_map(|(g, a, b)| (g, ProcId(a), ProcId(b)))
    })
}

proptest! {
    #[test]
    fn dist_symmetric((g, a, b) in arb_grid_and_two_procs()) {
        prop_assert_eq!(g.dist(a, b), g.dist(b, a));
    }

    #[test]
    fn dist_zero_iff_equal((g, a, b) in arb_grid_and_two_procs()) {
        prop_assert_eq!(g.dist(a, b) == 0, a == b);
    }

    #[test]
    fn dist_bounded_by_diameter((g, a, b) in arb_grid_and_two_procs()) {
        prop_assert!(g.dist(a, b) <= g.diameter());
    }

    #[test]
    fn route_length_matches_distance((g, a, b) in arb_grid_and_two_procs()) {
        let route = xy_route(&g, a, b);
        prop_assert_eq!(route.len() as u64, g.dist(a, b) + 1);
        prop_assert_eq!(hop_count(&g, a, b), g.dist(a, b));
        // every step is a unit move
        for w in route.windows(2) {
            prop_assert_eq!(g.dist(w[0], w[1]), 1);
        }
    }

    #[test]
    fn links_on_route_are_indexed_uniquely((g, a, b) in arb_grid_and_two_procs()) {
        let idx = LinkIndex::new(g);
        let mut slots = Vec::new();
        visit_xy_links(&g, a, b, |l| slots.push(idx.index_of(l)));
        prop_assert_eq!(slots.len() as u64, g.dist(a, b));
        let mut dedup = slots.clone();
        dedup.sort_unstable();
        dedup.dedup();
        // x-y routes are simple paths: no link crossed twice
        prop_assert_eq!(dedup.len(), slots.len());
        for s in slots {
            let link = idx.link_of(s).expect("route slot must map to a link");
            prop_assert_eq!(idx.index_of(link), s);
        }
    }

    #[test]
    fn torus_dist_never_exceeds_mesh((w, h) in (1u32..=10, 1u32..=10), seed in 0u64..1000) {
        let g = Grid::new(w, h);
        let t = Torus::new(w, h);
        let n = g.num_procs() as u64;
        let a = ProcId((seed % n) as u32);
        let b = ProcId(((seed / n.max(1)) % n) as u32);
        prop_assert!(t.dist(a, b) <= g.dist(a, b));
    }

    #[test]
    fn memory_allocate_up_to_capacity(cap in 1u32..16, g in arb_grid()) {
        let mut m = MemoryMap::new(&g, MemorySpec::uniform(cap));
        let p = ProcId(0);
        for i in 0..cap {
            prop_assert_eq!(m.used(p), i);
            prop_assert!(m.allocate(p).is_ok());
        }
        prop_assert!(m.allocate(p).is_err());
        prop_assert_eq!(m.used(p), cap);
        m.release(p);
        prop_assert!(m.allocate(p).is_ok());
    }

    #[test]
    fn scaled_minimum_always_feasible(
        g in arb_grid(),
        total in 0usize..4096,
        factor in 1u32..4,
    ) {
        let spec = MemorySpec::scaled_minimum(&g, total, factor);
        prop_assert!(spec.feasible(&g, total));
    }
}
