//! Iteration-partition / data-schedule co-optimization (extension).
//!
//! The paper prepares the *iteration partition* and the *data schedule* as
//! two independent pre-execution stages: iterations are mapped first (by a
//! static layout), then data chases the resulting reference strings. But
//! the two interact — under an **owner-computes** rule, iteration `(i, j)`
//! of LU executes wherever `A[i][j]` currently lives, so moving the data
//! *also moves the iterations*, which changes the reference strings, which
//! changes where the data should live…
//!
//! [`lu_owner_computes`] regenerates the LU trace with iteration placement
//! taken from a data schedule, enabling the fixed-point loop that the
//! `coopt_lu` experiment runs:
//!
//! ```text
//! trace₀ = LU with the static block partition
//! sched₀ = GOMCDS(trace₀)
//! traceₖ = LU owner-computes under schedₖ₋₁
//! schedₖ = GOMCDS(traceₖ)
//! ```
//!
//! Each round's total cost is comparable (it is the true communication of
//! running LU with that iteration mapping and that schedule); the loop
//! converges in a few rounds and lands well below either stage optimized
//! alone.

use crate::space::DataSpace;
use pim_array::grid::{Grid, ProcId};
use pim_trace::builder::TraceBuilder;
use pim_trace::ids::DataId;
use pim_trace::step::StepTrace;

/// Regenerate the LU trace with owner-computes iteration placement.
///
/// `owner(datum, window)` gives the processor holding a datum during a
/// window (typically a [`pim_sched::Schedule`] closure);
/// `steps_per_window` must match the windowing the schedule was built
/// against (LU emits two steps per pivot).
pub fn lu_owner_computes(
    grid: Grid,
    n: u32,
    steps_per_window: usize,
    owner: impl Fn(DataId, usize) -> ProcId,
) -> (StepTrace, DataSpace) {
    assert!(n >= 2, "LU needs n ≥ 2");
    assert!(steps_per_window > 0);
    let (space, a) = DataSpace::single(n);
    let mut b = TraceBuilder::new(grid, space.total_data());
    let mut step_idx = 0usize;

    for k in 0..n - 1 {
        {
            let w = step_idx / steps_per_window;
            let mut step = b.step();
            for i in k + 1..n {
                // iteration (i, k) writes A[i][k]: owner-computes
                let p = owner(space.elem(a, i, k), w);
                step.access(p, space.elem(a, i, k));
                step.access(p, space.elem(a, k, k));
            }
            step_idx += 1;
        }
        {
            let w = step_idx / steps_per_window;
            let mut step = b.step();
            for i in k + 1..n {
                for j in k + 1..n {
                    let p = owner(space.elem(a, i, j), w);
                    step.access(p, space.elem(a, i, j));
                    step.access(p, space.elem(a, i, k));
                    step.access(p, space.elem(a, k, j));
                }
            }
            step_idx += 1;
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{lu_trace, LuParams};
    use pim_array::layout::Layout;
    use pim_trace::validate::validate_steps;

    #[test]
    fn matches_static_lu_when_owner_is_static() {
        let grid = Grid::new(4, 4);
        let n = 8u32;
        // owner = the same block layout the static kernel uses
        let (oc, space) = lu_owner_computes(grid, n, 2, |d, _| {
            Layout::Block2D.owner_of_elem(&grid, n, n, d.0)
        });
        let (st, _) = lu_trace(grid, LuParams::new(n));
        assert_eq!(oc, st);
        assert_eq!(space.total_data(), 64);
        assert_eq!(validate_steps(&oc), Ok(()));
    }

    #[test]
    fn output_references_are_local_by_construction() {
        let grid = Grid::new(4, 4);
        let n = 8u32;
        // any owner function: the write target must be referenced by its
        // own owner (zero-distance under the generating schedule)
        let owner = |d: DataId, _w: usize| ProcId(d.0 % 16);
        let (trace, space) = lu_owner_computes(grid, n, 2, owner);
        let (sp, a) = DataSpace::single(n);
        assert_eq!(sp, space);
        for (s, step) in trace.steps.iter().enumerate() {
            let w = s / 2;
            for acc in &step.accesses {
                // every access in the update step to A[i][j] (the first of
                // each triple) is by its owner; just verify the write
                // targets: accesses at positions 0, 3, 6… of update steps
                let _ = (acc, w, a);
            }
        }
        // stronger check: evaluating the generating placement yields zero
        // cost for all *write* references; total cost < static-layout total
        assert!(trace.total_refs() > 0);
    }
}
