//! Radix-2 FFT butterfly pattern (extra workload).
//!
//! `log₂ N` stages over a vector of `N` complex points (modelled as a
//! `1 × N` data array); stage `s` pairs element `i` with `i XOR 2^s`. The
//! partner distance doubles every stage, so the reference pattern is
//! *structurally* non-local in a way no single static distribution can
//! serve — the canonical argument for stage-wise redistribution in the
//! paper's related work on block-cyclic redistribution.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the FFT generator.
#[derive(Debug, Clone, Copy)]
pub struct FftParams {
    /// Number of points; must be a power of two ≥ 2.
    pub points: u32,
    /// Iteration partition for the butterfly index space (treated as a
    /// `1 × points` array).
    pub iter_layout: Layout,
}

impl FftParams {
    /// `points`-element FFT with the default block iteration partition.
    pub fn new(points: u32) -> Self {
        FftParams {
            points,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the FFT trace: one step per butterfly stage.
///
/// # Panics
/// Panics unless `points` is a power of two ≥ 2.
pub fn fft_trace(grid: Grid, params: FftParams) -> (StepTrace, DataSpace) {
    let n = params.points;
    assert!(
        n >= 2 && n.is_power_of_two(),
        "FFT needs a power-of-two size ≥ 2"
    );
    let mut space = DataSpace::new();
    let a = space.add_array("A", 1, n);
    let mut b = TraceBuilder::new(grid, space.total_data());

    let stages = n.trailing_zeros();
    for s in 0..stages {
        let span = 1u32 << s;
        let mut step = b.step();
        for i in 0..n {
            if i & span != 0 {
                continue; // the lower element of each pair runs the butterfly
            }
            let j = i | span;
            let p = params.iter_layout.owner(&grid, 1, n, 0, i);
            step.access(p, space.elem(a, 0, i));
            step.access(p, space.elem(a, 0, j));
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn stage_structure() {
        let grid = Grid::new(4, 4);
        let (t, space) = fft_trace(grid, FftParams::new(64));
        assert_eq!(space.total_data(), 64);
        assert_eq!(t.num_steps(), 6);
        // every stage touches every point exactly once
        for step in &t.steps {
            assert_eq!(step.total_refs(), 64);
        }
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn partner_distance_doubles() {
        let grid = Grid::new(4, 4);
        let (t, space) = fft_trace(grid, FftParams::new(16));
        let mut sp = DataSpace::new();
        let a = sp.add_array("A", 1, 16);
        assert_eq!(sp, space);
        for (s, step) in t.steps.iter().enumerate() {
            // accesses come in (i, i|span) pairs
            let span = 1u32 << s;
            for pair in step.accesses.chunks(2) {
                let lo = pair[0].data.0 - sp.elem(a, 0, 0).0;
                let hi = pair[1].data.0 - sp.elem(a, 0, 0).0;
                assert_eq!(hi - lo, span, "stage {s}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        fft_trace(Grid::new(2, 2), FftParams::new(12));
    }
}
