//! Cholesky factorization (extra workload, not in the paper).
//!
//! Right-looking Cholesky `A = L·Lᵀ` on a symmetric positive-definite
//! `n × n` matrix, touching only the lower triangle. Its reference pattern
//! is LU's asymmetric cousin: the active region shrinks like LU's but the
//! column panel is reused against a *triangular* trailing update, so the
//! hot set is lopsided — a good stress for center placement off the grid
//! diagonal.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the Cholesky generator.
#[derive(Debug, Clone, Copy)]
pub struct CholeskyParams {
    /// Matrix dimension.
    pub n: u32,
    /// Iteration partition.
    pub iter_layout: Layout,
}

impl CholeskyParams {
    /// `n × n` with the default block iteration partition.
    pub fn new(n: u32) -> Self {
        CholeskyParams {
            n,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the Cholesky trace: two steps per pivot (panel scale, trailing
/// triangular update).
pub fn cholesky_trace(grid: Grid, params: CholeskyParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 2, "cholesky needs n ≥ 2");
    let (space, a) = DataSpace::single(n);
    let mut b = TraceBuilder::new(grid, space.total_data());

    for k in 0..n - 1 {
        // panel: L[i][k] = A[i][k] / sqrt(A[k][k]) for i > k
        {
            let mut step = b.step();
            for i in k + 1..n {
                let p = params.iter_layout.owner(&grid, n, n, i, k);
                step.access(p, space.elem(a, i, k));
                step.access(p, space.elem(a, k, k));
            }
        }
        // trailing triangular update: A[i][j] -= L[i][k]·L[j][k], j ≤ i
        {
            let mut step = b.step();
            for i in k + 1..n {
                for j in k + 1..=i {
                    let p = params.iter_layout.owner(&grid, n, n, i, j);
                    step.access(p, space.elem(a, i, j));
                    step.access(p, space.elem(a, i, k));
                    step.access(p, space.elem(a, j, k));
                }
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn shape_and_volume() {
        let grid = Grid::new(4, 4);
        let (t, _) = cholesky_trace(grid, CholeskyParams::new(8));
        assert_eq!(t.num_steps(), 14);
        // triangular update touches (n-1-k)(n-k)/2 pairs × 3 refs
        let expect: u64 = (0..7u64)
            .map(|k| {
                let r = 7 - k;
                2 * r + 3 * r * (r + 1) / 2
            })
            .sum();
        assert_eq!(t.total_refs(), expect);
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn upper_triangle_untouched() {
        let grid = Grid::new(4, 4);
        let n = 8u32;
        let (t, space) = cholesky_trace(grid, CholeskyParams::new(n));
        let mut sp = DataSpace::new();
        let a = sp.add_array("A", n, n);
        assert_eq!(sp, space);
        for step in &t.steps {
            for acc in &step.accesses {
                let (_, r, c) = sp.locate(acc.data).unwrap();
                assert!(r >= c, "upper-triangle element ({r},{c}) referenced");
                let _ = a;
            }
        }
    }
}
