//! In-place matrix transpose (extra workload, not in the paper).
//!
//! Iteration `(i, j)` with `i < j` swaps `A[i][j]` and `A[j][i]`. Under a
//! row-wise data distribution the partner element usually lives far away —
//! the classic redistribution stress case the related work (block-cyclic
//! redistribution, [1, 2, 4] in the paper) targets. A single transpose
//! pass gives the schedulers one window to optimize; repeating passes
//! alternated with row-local sweeps makes movement worthwhile.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the transpose generator.
#[derive(Debug, Clone, Copy)]
pub struct TransposeParams {
    /// Matrix dimension.
    pub n: u32,
    /// Number of transpose passes; each pass is followed by a row-local
    /// sweep (reads each row element once), so references alternate between
    /// transposed and row-local patterns.
    pub passes: u32,
    /// Iteration partition.
    pub iter_layout: Layout,
}

impl TransposeParams {
    /// `n × n`, `passes` passes, block iteration partition.
    pub fn new(n: u32, passes: u32) -> Self {
        TransposeParams {
            n,
            passes,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the transpose trace: two steps per pass (swap sweep, then
/// row-local sweep).
pub fn transpose_trace(grid: Grid, params: TransposeParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 2, "transpose needs n ≥ 2");
    let (space, a) = DataSpace::single(n);
    let mut b = TraceBuilder::new(grid, space.total_data());
    for _ in 0..params.passes {
        {
            let mut step = b.step();
            for i in 0..n {
                for j in i + 1..n {
                    let p = params.iter_layout.owner(&grid, n, n, i, j);
                    step.access(p, space.elem(a, i, j));
                    step.access(p, space.elem(a, j, i));
                }
            }
        }
        {
            let mut step = b.step();
            for i in 0..n {
                for j in 0..n {
                    let p = params.iter_layout.owner(&grid, n, n, i, j);
                    step.access(p, space.elem(a, i, j));
                }
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn volume_and_validity() {
        let grid = Grid::new(4, 4);
        let (t, _) = transpose_trace(grid, TransposeParams::new(8, 2));
        assert_eq!(t.num_steps(), 4);
        // swap sweep: 2 refs × n(n-1)/2 pairs; local sweep: n²
        assert_eq!(t.total_refs(), 2 * (8 * 7 + 64));
        assert_eq!(validate_steps(&t), Ok(()));
    }
}
