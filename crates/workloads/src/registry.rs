//! Uniform handle over every benchmark.
//!
//! The experiment drivers (tables, sweeps, CLI) all speak in terms of
//! [`Benchmark`] values; the paper's evaluation set is
//! [`Benchmark::paper_set`].

use crate::cholesky::{cholesky_trace, CholeskyParams};
use crate::code::{code_trace, CodeParams};
use crate::combos;
use crate::fft::{fft_trace, FftParams};
use crate::lu::{lu_trace, LuParams};
use crate::matmul::{matmul_trace, MatMulParams};
use crate::sor::{sor_trace, SorParams};
use crate::space::DataSpace;
use crate::stencil::{stencil_trace, StencilParams};
use crate::transpose::{transpose_trace, TransposeParams};
use crate::trisolve::{trisolve_trace, TrisolveParams};
use pim_array::grid::Grid;
use pim_trace::step::StepTrace;
use pim_trace::window::WindowedTrace;
use serde::{Deserialize, Serialize};

/// Every workload the harness can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Benchmark {
    /// Paper benchmark 1: LU factorization.
    Lu,
    /// Paper benchmark 2: matrix squaring.
    MatMul,
    /// Paper benchmark 3: LU then CODE.
    LuCode,
    /// Paper benchmark 4: matrix squaring then CODE.
    MatMulCode,
    /// Paper benchmark 5: CODE then reversed CODE.
    CodeReverse,
    /// Extra: the synthetic CODE kernel alone.
    Code,
    /// Extra: Jacobi five-point stencil (negative control).
    Jacobi,
    /// Extra: repeated transpose + row sweep.
    Transpose,
    /// Extra: red-black SOR.
    Sor,
    /// Extra: right-looking Cholesky factorization.
    Cholesky,
    /// Extra: triangular solve with many right-hand sides (wavefront).
    Trisolve,
    /// Extra: radix-2 FFT butterflies (stage-doubling partner distance).
    Fft,
}

impl Benchmark {
    /// The paper's evaluation set, in table order (benchmarks 1–5).
    pub fn paper_set() -> [Benchmark; 5] {
        [
            Benchmark::Lu,
            Benchmark::MatMul,
            Benchmark::LuCode,
            Benchmark::MatMulCode,
            Benchmark::CodeReverse,
        ]
    }

    /// Table label: the paper's benchmark number, or a name for extras.
    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::Lu => "1",
            Benchmark::MatMul => "2",
            Benchmark::LuCode => "3",
            Benchmark::MatMulCode => "4",
            Benchmark::CodeReverse => "5",
            Benchmark::Code => "code",
            Benchmark::Jacobi => "jacobi",
            Benchmark::Transpose => "transpose",
            Benchmark::Sor => "sor",
            Benchmark::Cholesky => "cholesky",
            Benchmark::Trisolve => "trisolve",
            Benchmark::Fft => "fft",
        }
    }

    /// Long name.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Lu => "LU factorization",
            Benchmark::MatMul => "matrix squaring",
            Benchmark::LuCode => "LU + CODE",
            Benchmark::MatMulCode => "matmul + CODE",
            Benchmark::CodeReverse => "CODE + reverse CODE",
            Benchmark::Code => "CODE kernel",
            Benchmark::Jacobi => "Jacobi stencil",
            Benchmark::Transpose => "transpose",
            Benchmark::Sor => "red-black SOR",
            Benchmark::Cholesky => "Cholesky factorization",
            Benchmark::Trisolve => "triangular solve",
            Benchmark::Fft => "FFT butterflies",
        }
    }

    /// Parse a label or name back into a benchmark.
    pub fn parse(s: &str) -> Option<Benchmark> {
        let all = [
            Benchmark::Lu,
            Benchmark::MatMul,
            Benchmark::LuCode,
            Benchmark::MatMulCode,
            Benchmark::CodeReverse,
            Benchmark::Code,
            Benchmark::Jacobi,
            Benchmark::Transpose,
            Benchmark::Sor,
            Benchmark::Cholesky,
            Benchmark::Trisolve,
            Benchmark::Fft,
        ];
        all.into_iter().find(|b| {
            b.label().eq_ignore_ascii_case(s)
                || b.name().eq_ignore_ascii_case(s)
                || format!("b{}", b.label()).eq_ignore_ascii_case(s)
        })
    }

    /// Generate the raw step trace with an explicit iteration partition
    /// (the paper's *iteration partition* pre-stage). Kernels without an
    /// iteration space of their own (the synthetic CODE) ignore it.
    pub fn generate_with_layout(
        &self,
        grid: Grid,
        n: u32,
        seed: u64,
        iter_layout: pim_array::layout::Layout,
    ) -> (StepTrace, DataSpace) {
        use pim_array::layout::Layout;
        let _ = Layout::Block2D; // keep the import local and explicit
        match self {
            Benchmark::Lu => lu_trace(grid, LuParams { n, iter_layout }),
            Benchmark::MatMul => matmul_trace(grid, MatMulParams { n, iter_layout }),
            Benchmark::LuCode => {
                let (lu, lu_space) = lu_trace(grid, LuParams { n, iter_layout });
                let (code, code_space) = code_trace(grid, CodeParams::new(n, seed));
                (lu.concat(&code), lu_space.union(code_space))
            }
            Benchmark::MatMulCode => {
                let (mm, mm_space) = matmul_trace(grid, MatMulParams { n, iter_layout });
                let (code, code_space) = code_trace(grid, CodeParams::new(n, seed));
                (mm.concat(&code), mm_space.union(code_space))
            }
            Benchmark::CodeReverse | Benchmark::Code => self.generate(grid, n, seed),
            Benchmark::Jacobi => stencil_trace(
                grid,
                StencilParams {
                    n,
                    sweeps: (n / 2).max(2),
                    iter_layout,
                },
            ),
            Benchmark::Transpose => transpose_trace(
                grid,
                TransposeParams {
                    n,
                    passes: (n / 4).max(2),
                    iter_layout,
                },
            ),
            Benchmark::Sor => sor_trace(
                grid,
                SorParams {
                    n,
                    sweeps: (n / 2).max(2),
                    iter_layout,
                },
            ),
            Benchmark::Cholesky => cholesky_trace(grid, CholeskyParams { n, iter_layout }),
            Benchmark::Trisolve => trisolve_trace(grid, TrisolveParams { n, iter_layout }),
            Benchmark::Fft => fft_trace(
                grid,
                FftParams {
                    points: (n * n).next_power_of_two(),
                    iter_layout,
                },
            ),
        }
    }

    /// Generate the raw step trace for an `n × n` data size.
    pub fn generate(&self, grid: Grid, n: u32, seed: u64) -> (StepTrace, DataSpace) {
        match self {
            Benchmark::Lu => lu_trace(grid, LuParams::new(n)),
            Benchmark::MatMul => matmul_trace(grid, MatMulParams::new(n)),
            Benchmark::LuCode => combos::lu_then_code(grid, n, seed),
            Benchmark::MatMulCode => combos::matmul_then_code(grid, n, seed),
            Benchmark::CodeReverse => combos::code_then_reverse(grid, n, seed),
            Benchmark::Code => code_trace(grid, CodeParams::new(n, seed)),
            Benchmark::Jacobi => stencil_trace(grid, StencilParams::new(n, (n / 2).max(2))),
            Benchmark::Transpose => transpose_trace(grid, TransposeParams::new(n, (n / 4).max(2))),
            Benchmark::Sor => sor_trace(grid, SorParams::new(n, (n / 2).max(2))),
            Benchmark::Cholesky => cholesky_trace(grid, CholeskyParams::new(n)),
            Benchmark::Trisolve => trisolve_trace(grid, TrisolveParams::new(n)),
            Benchmark::Fft => {
                // map the n×n "size" convention onto a power-of-two vector
                fft_trace(grid, FftParams::new((n * n).next_power_of_two()))
            }
        }
    }
}

impl core::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Generate a benchmark and window it with `steps_per_window` steps per
/// execution window — the standard entry point for experiments.
pub fn windowed(
    bench: Benchmark,
    grid: Grid,
    n: u32,
    steps_per_window: usize,
    seed: u64,
) -> (WindowedTrace, DataSpace) {
    let (steps, space) = bench.generate(grid, n, seed);
    (steps.window_fixed(steps_per_window), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::{validate_steps, validate_windowed};

    #[test]
    fn every_benchmark_generates_valid_traces() {
        let grid = Grid::new(4, 4);
        for b in [
            Benchmark::Lu,
            Benchmark::MatMul,
            Benchmark::LuCode,
            Benchmark::MatMulCode,
            Benchmark::CodeReverse,
            Benchmark::Code,
            Benchmark::Jacobi,
            Benchmark::Transpose,
            Benchmark::Sor,
            Benchmark::Cholesky,
            Benchmark::Trisolve,
            Benchmark::Fft,
        ] {
            let (t, space) = b.generate(grid, 8, 11);
            assert_eq!(validate_steps(&t), Ok(()), "{b}");
            assert_eq!(t.num_data, space.total_data(), "{b}");
            assert!(t.total_refs() > 0, "{b}");
            let (w, _) = windowed(b, grid, 8, 2, 11);
            assert_eq!(validate_windowed(&w), Ok(()), "{b}");
        }
    }

    #[test]
    fn paper_set_order() {
        let labels: Vec<&str> = Benchmark::paper_set().iter().map(|b| b.label()).collect();
        assert_eq!(labels, vec!["1", "2", "3", "4", "5"]);
    }

    #[test]
    fn parse_labels_and_names() {
        assert_eq!(Benchmark::parse("1"), Some(Benchmark::Lu));
        assert_eq!(Benchmark::parse("b3"), Some(Benchmark::LuCode));
        assert_eq!(Benchmark::parse("jacobi"), Some(Benchmark::Jacobi));
        assert_eq!(Benchmark::parse("LU factorization"), Some(Benchmark::Lu));
        assert_eq!(Benchmark::parse("nope"), None);
    }

    #[test]
    fn windowed_respects_window_size() {
        let grid = Grid::new(4, 4);
        let (t, _) = Benchmark::Lu.generate(grid, 8, 0);
        let (w, _) = windowed(Benchmark::Lu, grid, 8, 2, 0);
        assert_eq!(w.num_windows(), t.num_steps().div_ceil(2));
    }
}
