//! Reconstruction of the paper's Figure 1 worked example.
//!
//! Section 3.3 demonstrates the three schedulers on one datum `D` over a
//! 4×4 array and four execution windows, concluding:
//!
//! * SCDS places `D` at processor `(1, 0)`;
//! * LOMCDS places `D` at `(1, 0)`, `(1, 3)`, `(1, 0)`, `(1, 1)`;
//! * GOMCDS places `D` at `(1, 0)`, `(1, 0)`, `(1, 0)`, `(1, 1)`,
//!   achieving the least total cost.
//!
//! The scan of the figure loses the per-processor reference counts, so this
//! module reconstructs a reference pattern that reproduces *exactly* those
//! center sequences (verified by the `figure1` test and bench binary), with
//! strictly ordered costs `GOMCDS < LOMCDS < SCDS`:
//!
//! | window | references `(x, y) × count` |
//! |---|---|
//! | 0 | (1,0)×3, (0,0)×1, (2,0)×1 |
//! | 1 | (1,3)×1 |
//! | 2 | (1,0)×2, (0,1)×1 |
//! | 3 | (1,1)×3, (2,1)×2 |
//!
//! With these counts: SCDS total = 14, LOMCDS = 13 (6 reference + 7
//! movement), GOMCDS = 10 (9 reference + 1 movement).

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_trace::window::{WindowRefs, WindowedTrace};

/// Expected totals and centers of the reconstructed example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure1Expectation {
    /// SCDS center (all windows).
    pub scds_center: (u32, u32),
    /// SCDS total cost.
    pub scds_cost: u64,
    /// LOMCDS centers per window.
    pub lomcds_centers: [(u32, u32); 4],
    /// LOMCDS total cost.
    pub lomcds_cost: u64,
    /// GOMCDS centers per window.
    pub gomcds_centers: [(u32, u32); 4],
    /// GOMCDS total cost.
    pub gomcds_cost: u64,
}

/// The centers the paper's prose states, with the costs our reconstruction
/// yields.
pub fn expectation() -> Figure1Expectation {
    Figure1Expectation {
        scds_center: (1, 0),
        scds_cost: 14,
        lomcds_centers: [(1, 0), (1, 3), (1, 0), (1, 1)],
        lomcds_cost: 13,
        gomcds_centers: [(1, 0), (1, 0), (1, 0), (1, 1)],
        gomcds_cost: 10,
    }
}

/// The 4×4 grid of the example.
pub fn grid() -> Grid {
    Grid::new(4, 4)
}

/// Build the single-datum, four-window trace of Figure 1.
pub fn figure1_trace() -> (WindowedTrace, DataSpace) {
    let g = grid();
    let windows = vec![
        WindowRefs::from_pairs([
            (g.proc_xy(1, 0), 3),
            (g.proc_xy(0, 0), 1),
            (g.proc_xy(2, 0), 1),
        ]),
        WindowRefs::from_pairs([(g.proc_xy(1, 3), 1)]),
        WindowRefs::from_pairs([(g.proc_xy(1, 0), 2), (g.proc_xy(0, 1), 1)]),
        WindowRefs::from_pairs([(g.proc_xy(1, 1), 3), (g.proc_xy(2, 1), 2)]),
    ];
    let (space, _) = DataSpace::single(1);
    (WindowedTrace::from_parts(g, vec![windows]), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sched::{schedule, MemoryPolicy, Method};
    use pim_trace::ids::DataId;

    #[test]
    fn reproduces_paper_centers_and_ordering() {
        let (trace, _) = figure1_trace();
        let g = grid();
        let exp = expectation();

        let scds = schedule(Method::Scds, &trace, MemoryPolicy::Unbounded);
        assert_eq!(
            scds.center(DataId(0), 0),
            g.proc_xy(exp.scds_center.0, exp.scds_center.1)
        );
        assert_eq!(scds.evaluate(&trace).total(), exp.scds_cost);

        let lomcds = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);
        for (w, &(x, y)) in exp.lomcds_centers.iter().enumerate() {
            assert_eq!(lomcds.center(DataId(0), w), g.proc_xy(x, y), "LOMCDS w{w}");
        }
        assert_eq!(lomcds.evaluate(&trace).total(), exp.lomcds_cost);

        let gomcds = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
        for (w, &(x, y)) in exp.gomcds_centers.iter().enumerate() {
            assert_eq!(gomcds.center(DataId(0), w), g.proc_xy(x, y), "GOMCDS w{w}");
        }
        assert_eq!(gomcds.evaluate(&trace).total(), exp.gomcds_cost);

        // the paper's headline: GOMCDS strictly best
        assert!(exp.gomcds_cost < exp.lomcds_cost);
        assert!(exp.lomcds_cost < exp.scds_cost);
    }
}
