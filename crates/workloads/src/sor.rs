//! Red-black successive over-relaxation (extra workload, not in the paper).
//!
//! Each sweep is two execution steps: the red half-sweep updates points
//! with `(i + j) % 2 == 0` reading their four (black) neighbours, then the
//! black half-sweep does the converse. Like Jacobi it is distribution-
//! friendly, but the alternating half-sweeps double the window count per
//! sweep, exercising the window-grouping path (Algorithm 3 should merge
//! red/black pairs).

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the SOR generator.
#[derive(Debug, Clone, Copy)]
pub struct SorParams {
    /// Data array dimension.
    pub n: u32,
    /// Number of full sweeps (red + black).
    pub sweeps: u32,
    /// Iteration partition.
    pub iter_layout: Layout,
}

impl SorParams {
    /// `n × n` SOR with block iteration partition.
    pub fn new(n: u32, sweeps: u32) -> Self {
        SorParams {
            n,
            sweeps,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the red-black SOR trace: two steps per sweep.
pub fn sor_trace(grid: Grid, params: SorParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 3, "SOR needs n ≥ 3");
    let (space, a) = DataSpace::single(n);
    let mut b = TraceBuilder::new(grid, space.total_data());
    for _ in 0..params.sweeps {
        for color in 0..2u32 {
            let mut step = b.step();
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    if (i + j) % 2 != color {
                        continue;
                    }
                    let p = params.iter_layout.owner(&grid, n, n, i, j);
                    step.access(p, space.elem(a, i, j));
                    step.access(p, space.elem(a, i - 1, j));
                    step.access(p, space.elem(a, i + 1, j));
                    step.access(p, space.elem(a, i, j - 1));
                    step.access(p, space.elem(a, i, j + 1));
                }
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn two_steps_per_sweep() {
        let grid = Grid::new(4, 4);
        let (t, _) = sor_trace(grid, SorParams::new(8, 3));
        assert_eq!(t.num_steps(), 6);
        assert_eq!(validate_steps(&t), Ok(()));
        // red + black half-sweeps together cover every interior point once
        let total: u64 = t.steps[0].total_refs() + t.steps[1].total_refs();
        assert_eq!(total, 6 * 6 * 5);
    }
}
