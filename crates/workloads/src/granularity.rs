//! Data-granularity conversion.
//!
//! The paper schedules individual array *elements*, each costing one unit
//! to move per hop ("weighted by the data volume transferred" with unit
//! volumes). Real systems often place whole **rows** as the unit of
//! distribution. This module re-expresses an element-level trace at row
//! granularity: datum = (array, row), reference counts aggregated, and a
//! per-datum *volume* (the row length) that movement must be weighted by.
//!
//! Together with `pim-sched`'s volume-aware evaluation and the
//! volume-weighted GOMCDS, this powers the `sweep_granularity` ablation:
//! does movement-aware scheduling survive when moving a datum costs a
//! whole row per hop?

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_trace::builder::TraceBuilder;
use pim_trace::ids::DataId;
use pim_trace::step::StepTrace;

/// A trace re-expressed at row granularity.
#[derive(Debug, Clone)]
pub struct RowTrace {
    /// The row-level step trace (datum = one array row).
    pub steps: StepTrace,
    /// The row-level data space (each array becomes `rows × 1`).
    pub space: DataSpace,
    /// Per-datum transfer volume: the row length of its array.
    pub volumes: Vec<u64>,
}

/// Convert an element-level trace to row granularity.
///
/// # Panics
/// Panics if any referenced datum lies outside `space`.
pub fn rows_of(steps: &StepTrace, space: &DataSpace) -> RowTrace {
    let grid: Grid = steps.grid;
    let mut row_space = DataSpace::new();
    let mut handles = Vec::with_capacity(space.arrays().len());
    let mut volumes = Vec::new();
    for a in space.arrays() {
        let h = row_space.add_array(&format!("{}_rows", a.name), a.rows, 1);
        handles.push(h);
        volumes.extend(std::iter::repeat_n(a.cols as u64, a.rows as usize));
    }

    let mut b = TraceBuilder::new(grid, row_space.total_data());
    for step in &steps.steps {
        let mut sh = b.step();
        for acc in &step.accesses {
            let (array, row, _col) = space
                .locate(acc.data)
                .expect("trace datum outside its data space");
            sh.access_n(
                acc.proc,
                row_space.elem(handles[array_index(&handles, array)], row, 0),
                acc.count,
            );
        }
    }
    RowTrace {
        steps: b.finish(),
        space: row_space,
        volumes,
    }
}

/// Index of a handle within the ordered handle list (handles are opaque;
/// arrays were registered in order, so compare by registration order).
fn array_index(handles: &[crate::space::ArrayHandle], h: crate::space::ArrayHandle) -> usize {
    handles
        .iter()
        .position(|&x| x == h)
        .expect("handle from the same space")
}

/// Convenience: row-level datum id of `(array index, row)` for tests.
pub fn row_id(space_rows: &DataSpace, array: usize, row: u32) -> DataId {
    DataId(space_rows.arrays()[array].base + row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::{lu_trace, LuParams};
    use crate::matmul::{matmul_trace, MatMulParams};
    use pim_trace::validate::validate_steps;

    #[test]
    fn volumes_are_row_lengths() {
        let grid = Grid::new(4, 4);
        let (steps, space) = matmul_trace(grid, MatMulParams::new(8));
        let rt = rows_of(&steps, &space);
        // A and C: 8 rows each, each of length 8
        assert_eq!(rt.space.total_data(), 16);
        assert_eq!(rt.volumes, vec![8u64; 16]);
        assert_eq!(validate_steps(&rt.steps), Ok(()));
    }

    #[test]
    fn reference_volume_is_preserved() {
        let grid = Grid::new(4, 4);
        let (steps, space) = lu_trace(grid, LuParams::new(8));
        let rt = rows_of(&steps, &space);
        assert_eq!(rt.steps.total_refs(), steps.total_refs());
        assert_eq!(rt.steps.num_steps(), steps.num_steps());
    }

    #[test]
    fn rows_aggregate_their_elements() {
        let grid = Grid::new(4, 4);
        let (steps, space) = lu_trace(grid, LuParams::new(8));
        let rt = rows_of(&steps, &space);
        // the pivot row (row 0) is hot in the first update step; its
        // row-level refs must equal the sum of its elements' refs
        let w_elem = steps.window_fixed(usize::MAX >> 1);
        let w_rows = rt.steps.window_fixed(usize::MAX >> 1);
        let elem_total: u64 = (0..8u32)
            .map(|c| {
                let mut sp = DataSpace::new();
                let a = sp.add_array("A", 8, 8);
                w_elem.refs(sp.elem(a, 0, c)).merged_all().total_volume()
            })
            .sum();
        let row_total = w_rows
            .refs(row_id(&rt.space, 0, 0))
            .merged_all()
            .total_volume();
        assert_eq!(row_total, elem_total);
    }
}
