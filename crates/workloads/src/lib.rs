#![warn(missing_docs)]
//! # pim-workloads
//!
//! Benchmark kernels that generate the reference traces driving the
//! scheduling experiments — the paper's five benchmarks plus extras:
//!
//! | # | Paper description | Module |
//! |---|---|---|
//! | 1 | LU factorization | [`lu`] |
//! | 2 | square of a matrix | [`matmul`] |
//! | 3 | benchmark 1 and CODE | [`combos`] |
//! | 4 | benchmark 2 and CODE | [`combos`] |
//! | 5 | CODE and reverse-order CODE | [`combos`] |
//!
//! The `CODE` kernel of the paper lives in Notre Dame TR 97-09, which is
//! not available; [`code`] provides a synthetic substitute with the
//! property the paper relies on — a *non-uniform, non-linear* reference
//! pattern with phase-shifting hot spots (see DESIGN.md §3).
//!
//! Extra kernels for examples and ablations: [`stencil`] (Jacobi),
//! [`transpose`], [`sor`] (red-black successive over-relaxation).
//!
//! [`space`] tracks multi-array data spaces (e.g. matrix multiply reads `A`
//! and writes `C`) and builds the straight-forward baseline placement;
//! [`registry`] gives a uniform handle over every benchmark;
//! [`paper_example`] reconstructs Figure 1 of the paper; [`dag`] derives
//! the natural step-chain task DAGs of the dependence-carrying kernels
//! (LU, Cholesky, triangular solve) for precedence-aware scheduling.

pub mod cholesky;
pub mod code;
pub mod combos;
pub mod coopt;
pub mod dag;
pub mod fft;
pub mod granularity;
pub mod lu;
pub mod matmul;
pub mod paper_example;
pub mod registry;
pub mod sor;
pub mod space;
pub mod stencil;
pub mod transpose;
pub mod trisolve;

pub use dag::{natural_dag, step_chain_dag};
pub use registry::{windowed, Benchmark};
pub use space::{ArrayHandle, DataSpace};
