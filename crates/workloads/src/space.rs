//! Multi-array data spaces.
//!
//! A benchmark may operate on several named 2-D arrays (matrix multiply
//! reads `A` and accumulates into `C`). All of them share the dense
//! [`DataId`] space of one trace; [`DataSpace`] owns the id arithmetic and
//! produces the straight-forward baseline placement in which *each array
//! independently* is distributed by a static layout — exactly what a
//! compiler's default row-wise distribution would do.

use pim_array::grid::{Grid, ProcId};
use pim_array::layout::Layout;
use pim_sched::schedule::Schedule;
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;
use serde::{Deserialize, Serialize};

/// Handle to one array registered in a [`DataSpace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayHandle(usize);

/// One named 2-D array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArraySpec {
    /// Human-readable array name ("A", "C", …).
    pub name: String,
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
    /// First datum id of this array.
    pub base: u32,
}

impl ArraySpec {
    /// Number of elements.
    pub fn len(&self) -> u32 {
        self.rows * self.cols
    }

    /// Whether the array has no elements (never true for registered
    /// arrays).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The set of arrays a benchmark operates on, packed into one dense datum
/// id space.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSpace {
    arrays: Vec<ArraySpec>,
}

impl DataSpace {
    /// An empty data space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a `rows × cols` array; ids are assigned contiguously after
    /// previously registered arrays.
    ///
    /// # Panics
    /// Panics on zero-sized arrays.
    pub fn add_array(&mut self, name: &str, rows: u32, cols: u32) -> ArrayHandle {
        assert!(rows > 0 && cols > 0, "arrays must be non-empty");
        let base = self.total_data();
        self.arrays.push(ArraySpec {
            name: name.to_string(),
            rows,
            cols,
            base,
        });
        ArrayHandle(self.arrays.len() - 1)
    }

    /// Total number of data items across all arrays.
    pub fn total_data(&self) -> u32 {
        self.arrays.last().map_or(0, |a| a.base + a.len())
    }

    /// The datum id of element `(row, col)` of an array.
    ///
    /// # Panics
    /// Panics if the element is out of range.
    #[inline]
    pub fn elem(&self, array: ArrayHandle, row: u32, col: u32) -> DataId {
        let a = &self.arrays[array.0];
        assert!(
            row < a.rows && col < a.cols,
            "({row},{col}) out of {}x{} array {}",
            a.rows,
            a.cols,
            a.name
        );
        DataId(a.base + row * a.cols + col)
    }

    /// The registered arrays.
    pub fn arrays(&self) -> &[ArraySpec] {
        &self.arrays
    }

    /// Spec of one array.
    pub fn spec(&self, array: ArrayHandle) -> &ArraySpec {
        &self.arrays[array.0]
    }

    /// Which array (and element coordinates) a datum id belongs to.
    pub fn locate(&self, d: DataId) -> Option<(ArrayHandle, u32, u32)> {
        let idx = self
            .arrays
            .iter()
            .rposition(|a| a.base <= d.0 && d.0 < a.base + a.len())?;
        let a = &self.arrays[idx];
        let off = d.0 - a.base;
        Some((ArrayHandle(idx), off / a.cols, off % a.cols))
    }

    /// Per-datum static placement distributing every array by `layout`.
    pub fn placement(&self, grid: &Grid, layout: Layout) -> Vec<ProcId> {
        let mut out = Vec::with_capacity(self.total_data() as usize);
        for a in &self.arrays {
            for e in 0..a.len() {
                out.push(layout.owner_of_elem(grid, a.rows, a.cols, e));
            }
        }
        out
    }

    /// The straight-forward baseline schedule for a trace over this space
    /// (the paper's S.F. column uses [`Layout::RowWise`]).
    ///
    /// # Panics
    /// Panics if the trace's datum count does not match the space.
    pub fn straightforward(&self, trace: &WindowedTrace, layout: Layout) -> Schedule {
        assert_eq!(
            trace.num_data(),
            self.total_data() as usize,
            "trace/data-space size mismatch"
        );
        Schedule::static_placement(
            trace.grid(),
            self.placement(&trace.grid(), layout),
            trace.num_windows(),
        )
    }

    /// A data space holding a single `n × n` array named "A".
    pub fn single(n: u32) -> (Self, ArrayHandle) {
        let mut s = Self::new();
        let h = s.add_array("A", n, n);
        (s, h)
    }

    /// Grow this space so it covers at least the arrays of `other`
    /// (used when concatenating benchmarks over a shared id space).
    /// Returns `self` when it is already the larger space.
    ///
    /// # Panics
    /// Panics if neither space is a prefix of the other.
    pub fn union(self, other: DataSpace) -> DataSpace {
        let (small, large) = if self.arrays.len() <= other.arrays.len() {
            (&self, &other)
        } else {
            (&other, &self)
        };
        assert!(
            small.arrays == large.arrays[..small.arrays.len()],
            "data spaces are not prefix-compatible"
        );
        large.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_assignment_contiguous() {
        let mut s = DataSpace::new();
        let a = s.add_array("A", 4, 4);
        let c = s.add_array("C", 4, 4);
        assert_eq!(s.total_data(), 32);
        assert_eq!(s.elem(a, 0, 0), DataId(0));
        assert_eq!(s.elem(a, 3, 3), DataId(15));
        assert_eq!(s.elem(c, 0, 0), DataId(16));
        assert_eq!(s.elem(c, 3, 3), DataId(31));
    }

    #[test]
    fn locate_roundtrip() {
        let mut s = DataSpace::new();
        let a = s.add_array("A", 3, 5);
        let b = s.add_array("B", 2, 2);
        for (h, rows, cols) in [(a, 3, 5), (b, 2, 2)] {
            for r in 0..rows {
                for c in 0..cols {
                    let d = s.elem(h, r, c);
                    assert_eq!(s.locate(d), Some((h, r, c)));
                }
            }
        }
        assert_eq!(s.locate(DataId(100)), None);
    }

    #[test]
    fn placement_per_array() {
        let grid = Grid::new(4, 4);
        let mut s = DataSpace::new();
        s.add_array("A", 8, 8);
        s.add_array("C", 8, 8);
        let p = s.placement(&grid, Layout::RowWise);
        assert_eq!(p.len(), 128);
        // both arrays distributed identically (each row-wise over the grid)
        assert_eq!(&p[..64], &p[64..]);
        assert_eq!(p[0], ProcId(0));
        assert_eq!(p[63], ProcId(15));
    }

    #[test]
    fn union_prefix() {
        let (a, _) = DataSpace::single(4);
        let mut b = DataSpace::new();
        b.add_array("A", 4, 4);
        b.add_array("C", 4, 4);
        let u = a.clone().union(b.clone());
        assert_eq!(u, b);
        let u2 = b.clone().union(a);
        assert_eq!(u2, b);
    }

    #[test]
    #[should_panic(expected = "prefix-compatible")]
    fn union_incompatible_panics() {
        let (a, _) = DataSpace::single(4);
        let (b, _) = DataSpace::single(5);
        let _ = a.union(b);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn elem_bounds_checked() {
        let (s, h) = DataSpace::single(4);
        s.elem(h, 4, 0);
    }
}
