//! Natural task DAGs for the dependence-carrying kernels.
//!
//! The dense-factorization benchmarks are genuinely sequential at step
//! granularity: LU's elimination step `k` reads the pivot row produced by
//! step `k − 1`, right-looking Cholesky's trailing update feeds the next
//! column step, and the triangular-solve wavefront consumes the previous
//! row's solutions. [`step_chain_dag`] encodes exactly that loop-carried
//! chain as a `pim_trace::dag::TaskDag`: one task per execution step,
//! chained in program order, bucketed into the same fixed windows as
//! [`StepTrace::window_fixed`] so the DAG validates against the windowed
//! trace every experiment actually schedules
//! ([`TaskDag::validate_cover`]).
//!
//! Ownership follows first touch: within a window, the first step that
//! references a datum owns its reference string there (later steps of the
//! same window observe it through the chain edge, not through ownership —
//! the cover must be a partition).
//!
//! [`natural_dag`] is the registry-level entry point: `Some` for the
//! kernels whose step order is a real dependence chain (LU, Cholesky,
//! triangular solve), `None` for the rest (stencils, transposes and FFT
//! steps are data-parallel sweeps; a chain would be an invented
//! constraint, not a natural one).

use crate::registry::Benchmark;
use pim_array::grid::Grid;
use pim_trace::dag::{Task, TaskDag};
use pim_trace::step::StepTrace;
use std::collections::HashSet;

/// Build the step-chain DAG of `steps` under the same window bucketing as
/// [`StepTrace::window_fixed`]: one task per non-empty step, an edge from
/// each non-empty step to the next, first-touch ownership per window, and
/// `wcet` equal to the step's total reference volume.
///
/// # Panics
/// Panics if `steps_per_window == 0` (same contract as `window_fixed`).
pub fn step_chain_dag(steps: &StepTrace, steps_per_window: usize) -> TaskDag {
    assert!(steps_per_window > 0, "window size must be positive");
    let num_windows = steps.num_steps().div_ceil(steps_per_window).max(1);
    let mut tasks: Vec<Task> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut owned: HashSet<(usize, u32)> = HashSet::new(); // (window, datum)
    let mut prev_window = usize::MAX;
    for (s, step) in steps.steps.iter().enumerate() {
        if step.accesses.is_empty() {
            continue;
        }
        let w = (s / steps_per_window).min(num_windows - 1);
        if w != prev_window {
            owned.clear();
            prev_window = w;
        }
        let mut data = Vec::new();
        for a in &step.accesses {
            if owned.insert((w, a.data.0)) {
                data.push(a.data);
            }
        }
        data.sort_unstable_by_key(|d| d.0);
        data.dedup();
        let id = tasks.len() as u32;
        if id > 0 {
            edges.push((id - 1, id));
        }
        tasks.push(Task {
            window: w as u32,
            data,
            wcet: step.total_refs(),
        });
    }
    TaskDag::new(num_windows, tasks, edges).expect("step-chain dag is valid by construction")
}

/// The natural task DAG of `bench` under the experiment-standard
/// generation and windowing (mirrors [`crate::registry::windowed`]):
/// `Some` step-chain DAG for the dependence-carrying kernels (LU,
/// Cholesky, triangular solve), `None` for kernels whose steps are
/// data-parallel sweeps.
pub fn natural_dag(
    bench: Benchmark,
    grid: Grid,
    n: u32,
    steps_per_window: usize,
    seed: u64,
) -> Option<TaskDag> {
    match bench {
        Benchmark::Lu | Benchmark::Cholesky | Benchmark::Trisolve => {
            let (steps, _) = bench.generate(grid, n, seed);
            Some(step_chain_dag(&steps, steps_per_window))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::windowed;

    #[test]
    fn natural_dags_cover_their_windowed_traces() {
        let grid = Grid::new(4, 4);
        for bench in [Benchmark::Lu, Benchmark::Cholesky, Benchmark::Trisolve] {
            for spw in [1usize, 3] {
                let dag = natural_dag(bench, grid, 8, spw, 11).expect("chain kernels have a dag");
                let (trace, _) = windowed(bench, grid, 8, spw, 11);
                assert_eq!(dag.num_windows(), trace.num_windows(), "{bench} spw={spw}");
                dag.validate_cover(&trace)
                    .unwrap_or_else(|e| panic!("{bench} spw={spw}: {e}"));
                assert!(dag.num_tasks() > 1, "{bench}");
                // A chain: every consecutive task pair is an edge.
                assert_eq!(dag.edges().len(), dag.num_tasks() - 1, "{bench}");
            }
        }
    }

    #[test]
    fn sweep_kernels_have_no_natural_dag() {
        let grid = Grid::new(4, 4);
        for bench in [Benchmark::MatMul, Benchmark::Jacobi, Benchmark::Fft] {
            assert!(natural_dag(bench, grid, 8, 2, 11).is_none(), "{bench}");
        }
    }

    #[test]
    fn first_touch_ownership_is_a_partition() {
        let grid = Grid::new(4, 4);
        let (steps, _) = Benchmark::Lu.generate(grid, 8, 0);
        let dag = step_chain_dag(&steps, 4);
        // Within any window, no datum appears in two tasks.
        for w in 0..dag.num_windows() {
            let mut seen = std::collections::HashSet::new();
            for &t in dag.tasks_in_window(w as u32) {
                for d in &dag.task(t).data {
                    assert!(seen.insert(d.0), "datum {} owned twice in window {w}", d.0);
                }
            }
        }
    }
}
