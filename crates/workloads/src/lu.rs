//! LU factorization (paper benchmark 1).
//!
//! Right-looking LU without pivoting on an `n × n` matrix `A`. For each
//! pivot step `k` the kernel emits two execution steps:
//!
//! 1. **column scaling** — iterations `i ∈ k+1..n` compute
//!    `A[i][k] /= A[k][k]`, referencing `A[i][k]` and the pivot `A[k][k]`;
//! 2. **trailing update** — iterations `(i, j) ∈ (k+1..n)²` compute
//!    `A[i][j] -= A[i][k]·A[k][j]`, referencing `A[i][j]`, `A[i][k]`,
//!    `A[k][j]`.
//!
//! Iterations are mapped to processors by a static *iteration partition*
//! (the paper prepares iteration partitioning and data scheduling as two
//! separate pre-execution stages); the default is the 2-D block partition
//! of the iteration space. The reference pattern is classically
//! non-uniform: the active region shrinks toward the bottom-right corner as
//! `k` advances, which is precisely why a static data distribution decays.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the LU trace generator.
#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// Matrix dimension.
    pub n: u32,
    /// Iteration-space partition mapping iteration `(i, j)` (or `(i, k)`
    /// for the scaling step) to its executing processor.
    pub iter_layout: Layout,
}

impl LuParams {
    /// LU on an `n × n` matrix with the default block iteration partition.
    pub fn new(n: u32) -> Self {
        LuParams {
            n,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the LU trace. Returns the raw step trace (two steps per pivot)
/// and its data space (single array `A`).
///
/// # Panics
/// Panics when `n < 2` (no trailing submatrix to update).
pub fn lu_trace(grid: Grid, params: LuParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 2, "LU needs n ≥ 2");
    let (space, a) = DataSpace::single(n);
    let mut b = TraceBuilder::new(grid, space.total_data());

    for k in 0..n - 1 {
        // column scaling step
        {
            let mut step = b.step();
            for i in k + 1..n {
                let p = params.iter_layout.owner(&grid, n, n, i, k);
                step.access(p, space.elem(a, i, k));
                step.access(p, space.elem(a, k, k));
            }
        }
        // trailing submatrix update step
        {
            let mut step = b.step();
            for i in k + 1..n {
                for j in k + 1..n {
                    let p = params.iter_layout.owner(&grid, n, n, i, j);
                    step.access(p, space.elem(a, i, j));
                    step.access(p, space.elem(a, i, k));
                    step.access(p, space.elem(a, k, j));
                }
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn step_count_and_volume() {
        let grid = Grid::new(4, 4);
        let (t, space) = lu_trace(grid, LuParams::new(8));
        assert_eq!(space.total_data(), 64);
        // 7 pivots × 2 steps
        assert_eq!(t.num_steps(), 14);
        // volume: Σ_k [2(n-1-k) + 3(n-1-k)²]
        let expect: u64 = (0..7u64).map(|k| 2 * (7 - k) + 3 * (7 - k) * (7 - k)).sum();
        assert_eq!(t.total_refs(), expect);
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn activity_shrinks_with_k() {
        let grid = Grid::new(4, 4);
        let (t, _) = lu_trace(grid, LuParams::new(8));
        // update steps are the odd indices; volume strictly decreases
        let updates: Vec<u64> = t
            .steps
            .iter()
            .skip(1)
            .step_by(2)
            .map(|s| s.total_refs())
            .collect();
        for w in updates.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn pivot_is_hot_in_scaling_step() {
        let grid = Grid::new(4, 4);
        let (t, space) = lu_trace(grid, LuParams::new(8));
        let (s, a) = (&t.steps[0], {
            let (sp, h) = DataSpace::single(8);
            let _ = sp;
            h
        });
        let pivot = space.elem(a, 0, 0);
        let pivot_refs = s.accesses.iter().filter(|acc| acc.data == pivot).count();
        assert_eq!(pivot_refs, 7, "pivot referenced by every scaling iteration");
    }

    #[test]
    #[should_panic(expected = "n ≥ 2")]
    fn tiny_matrix_rejected() {
        lu_trace(Grid::new(2, 2), LuParams::new(1));
    }
}
