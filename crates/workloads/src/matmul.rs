//! Matrix squaring `C = A·A` (paper benchmark 2).
//!
//! The kernel runs the classic triple loop with `k` outermost, emitting one
//! execution step per `k`: every iteration `(i, j)` (mapped to its
//! processor by the iteration partition) references `A[i][k]`, `A[k][j]`
//! and its accumulator `C[i][j]`.
//!
//! With `k` outermost the hot set sweeps through `A` one column and one row
//! at a time — a regular but *moving* pattern, the kind a single static
//! placement serves poorly and per-window re-centering serves well.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the matrix-squaring generator.
#[derive(Debug, Clone, Copy)]
pub struct MatMulParams {
    /// Matrix dimension.
    pub n: u32,
    /// Iteration partition for the `(i, j)` iteration space.
    pub iter_layout: Layout,
}

impl MatMulParams {
    /// `n × n` squaring with the default block iteration partition.
    pub fn new(n: u32) -> Self {
        MatMulParams {
            n,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the `C = A·A` trace: one step per `k`, arrays `A` then `C`.
pub fn matmul_trace(grid: Grid, params: MatMulParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 1, "matmul needs n ≥ 1");
    let mut space = DataSpace::new();
    let a = space.add_array("A", n, n);
    let c = space.add_array("C", n, n);
    let mut b = TraceBuilder::new(grid, space.total_data());

    for k in 0..n {
        let mut step = b.step();
        for i in 0..n {
            for j in 0..n {
                let p = params.iter_layout.owner(&grid, n, n, i, j);
                step.access(p, space.elem(a, i, k));
                step.access(p, space.elem(a, k, j));
                step.access(p, space.elem(c, i, j));
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn shape_and_volume() {
        let grid = Grid::new(4, 4);
        let (t, space) = matmul_trace(grid, MatMulParams::new(8));
        assert_eq!(space.total_data(), 128); // A and C
        assert_eq!(t.num_steps(), 8);
        assert_eq!(t.total_refs(), 8 * 8 * 8 * 3);
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn column_k_of_a_is_hot_in_step_k() {
        let grid = Grid::new(4, 4);
        let n = 8u32;
        let (t, space) = matmul_trace(grid, MatMulParams::new(n));
        let mut sp = DataSpace::new();
        let a = sp.add_array("A", n, n);
        let _ = sp.add_array("C", n, n);
        assert_eq!(sp, space);
        // In step k=3, A[i][3] is referenced by the whole row i of
        // iterations: n references each.
        let k = 3u32;
        let target = sp.elem(a, 2, k);
        let count: u32 = t.steps[k as usize]
            .accesses
            .iter()
            .filter(|acc| acc.data == target)
            .map(|acc| acc.count)
            .sum();
        assert_eq!(count, n);
    }

    #[test]
    fn c_referenced_every_step() {
        let grid = Grid::new(4, 4);
        let n = 4u32;
        let (t, space) = matmul_trace(grid, MatMulParams::new(n));
        let mut sp = DataSpace::new();
        let _ = sp.add_array("A", n, n);
        let c = sp.add_array("C", n, n);
        assert_eq!(sp, space);
        let target = sp.elem(c, 1, 2);
        for (i, step) in t.steps.iter().enumerate() {
            let count: u32 = step
                .accesses
                .iter()
                .filter(|acc| acc.data == target)
                .map(|acc| acc.count)
                .sum();
            assert_eq!(count, 1, "step {i}");
        }
    }
}
