//! Five-point Jacobi stencil (extra workload, not in the paper).
//!
//! Each sweep references, for every interior point, the point itself and
//! its four neighbours. With an iteration partition matching the data
//! layout this is the best case for static distribution — a useful
//! *negative control*: the schedulers should win little here, confirming
//! that their gains on the paper's benchmarks come from reference-pattern
//! drift rather than from an unfairly weak baseline.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the Jacobi stencil generator.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Data array dimension.
    pub n: u32,
    /// Number of sweeps (one execution step each).
    pub sweeps: u32,
    /// Iteration partition.
    pub iter_layout: Layout,
}

impl StencilParams {
    /// `n × n` Jacobi with `sweeps` sweeps, block iteration partition.
    pub fn new(n: u32, sweeps: u32) -> Self {
        StencilParams {
            n,
            sweeps,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the Jacobi trace: one step per sweep.
pub fn stencil_trace(grid: Grid, params: StencilParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 3, "stencil needs n ≥ 3");
    let (space, a) = DataSpace::single(n);
    let mut b = TraceBuilder::new(grid, space.total_data());
    for _ in 0..params.sweeps {
        let mut step = b.step();
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let p = params.iter_layout.owner(&grid, n, n, i, j);
                step.access(p, space.elem(a, i, j));
                step.access(p, space.elem(a, i - 1, j));
                step.access(p, space.elem(a, i + 1, j));
                step.access(p, space.elem(a, i, j - 1));
                step.access(p, space.elem(a, i, j + 1));
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn volume_and_validity() {
        let grid = Grid::new(4, 4);
        let (t, _) = stencil_trace(grid, StencilParams::new(8, 3));
        assert_eq!(t.num_steps(), 3);
        assert_eq!(t.total_refs(), 3 * 6 * 6 * 5);
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn steps_are_identical() {
        let grid = Grid::new(4, 4);
        let (t, _) = stencil_trace(grid, StencilParams::new(8, 4));
        assert!(t.steps.windows(2).all(|w| w[0] == w[1]));
    }
}
