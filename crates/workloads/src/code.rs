//! The `CODE` kernel — synthetic substitute (see DESIGN.md §3).
//!
//! The paper's benchmarks 3–5 combine LU / matrix-squaring with a kernel
//! called CODE from Notre Dame TR 97-09, which is not publicly available.
//! What the paper tells us about it is *why* it is there: the proposed
//! schedulers "assume neither the linearity nor the uniformity of the data
//! reference pattern", and movement-aware scheduling pays off "especially
//! for the benchmarks with complicated data reference patterns".
//!
//! This substitute therefore produces a deterministic (seeded), non-uniform,
//! non-linear reference string over a single `n × n` array:
//!
//! * execution proceeds in *phases*; each phase has a **hot rectangle** of
//!   the data array and a **processor cluster** whose center performs a
//!   non-linear pseudo-random walk over the grid between phases;
//! * within a phase, every step references each hot datum 1–3 times from
//!   processors drawn around the cluster center, plus a sprinkle of cold
//!   background references from uniformly random processors to uniformly
//!   random data.
//!
//! No loop-index linearity relates iteration to processor, and reference
//! density varies by orders of magnitude across data — the two properties
//! the paper's motivation requires.

use crate::space::DataSpace;
use pim_array::geom::Point;
use pim_array::grid::Grid;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic CODE kernel.
#[derive(Debug, Clone, Copy)]
pub struct CodeParams {
    /// Data array dimension (`n × n`).
    pub n: u32,
    /// Number of phases (hot-spot epochs).
    pub phases: u32,
    /// Execution steps per phase.
    pub steps_per_phase: u32,
    /// Background (cold) references per step.
    pub background_refs: u32,
    /// RNG seed; equal seeds give identical traces.
    pub seed: u64,
}

impl CodeParams {
    /// Defaults scaled to the data size: `max(4, n/4)` phases of 2 steps.
    pub fn new(n: u32, seed: u64) -> Self {
        CodeParams {
            n,
            phases: (n / 4).max(4),
            steps_per_phase: 2,
            background_refs: n,
            seed,
        }
    }
}

/// Generate the synthetic CODE trace over a single `n × n` array.
pub fn code_trace(grid: Grid, params: CodeParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 2, "CODE needs n ≥ 2");
    let (space, a) = DataSpace::single(n);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut b = TraceBuilder::new(grid, space.total_data());

    // Cluster walk state, in continuous grid coordinates.
    let mut cx = rng.gen_range(0.0..grid.width() as f64);
    let mut cy = rng.gen_range(0.0..grid.height() as f64);

    for phase in 0..params.phases {
        // Non-linear walk: a quadratic-chirp drift plus random jitter, so
        // displacement is neither constant nor a linear function of phase.
        let t = phase as f64;
        cx += (0.07 * t * t).sin() * (grid.width() as f64 / 2.0) + rng.gen_range(-1.5..1.5);
        cy += (0.05 * t * t + 1.0).cos() * (grid.height() as f64 / 2.0) + rng.gen_range(-1.5..1.5);
        cx = cx.rem_euclid(grid.width() as f64);
        cy = cy.rem_euclid(grid.height() as f64);

        // Hot rectangle of the data array for this phase.
        let hw = rng.gen_range(1..=(n / 2).max(1));
        let hh = rng.gen_range(1..=(n / 2).max(1));
        let hr = rng.gen_range(0..n - hh + 1);
        let hc = rng.gen_range(0..n - hw + 1);

        for _ in 0..params.steps_per_phase {
            let mut step = b.step();
            // Hot references from the cluster.
            for r in hr..hr + hh {
                for c in hc..hc + hw {
                    let count = rng.gen_range(1..=3u32);
                    let p = cluster_proc(&grid, cx, cy, &mut rng);
                    step.access_n(p, space.elem(a, r, c), count);
                }
            }
            // Cold background.
            for _ in 0..params.background_refs {
                let p = grid.proc_xy(
                    rng.gen_range(0..grid.width()),
                    rng.gen_range(0..grid.height()),
                );
                let r = rng.gen_range(0..n);
                let c = rng.gen_range(0..n);
                step.access(p, space.elem(a, r, c));
            }
        }
    }
    (b.finish(), space)
}

/// A processor near the continuous cluster center `(cx, cy)`, clamped to
/// the grid.
fn cluster_proc(grid: &Grid, cx: f64, cy: f64, rng: &mut StdRng) -> pim_array::grid::ProcId {
    let jitter = 1.5;
    let x = (cx + rng.gen_range(-jitter..jitter))
        .round()
        .clamp(0.0, grid.width() as f64 - 1.0) as u32;
    let y = (cy + rng.gen_range(-jitter..jitter))
        .round()
        .clamp(0.0, grid.height() as f64 - 1.0) as u32;
    grid.proc_at(Point::new(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::stats::trace_stats;
    use pim_trace::validate::validate_steps;

    #[test]
    fn deterministic_per_seed() {
        let grid = Grid::new(4, 4);
        let (a, _) = code_trace(grid, CodeParams::new(8, 7));
        let (b, _) = code_trace(grid, CodeParams::new(8, 7));
        let (c, _) = code_trace(grid, CodeParams::new(8, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn structure_valid() {
        let grid = Grid::new(4, 4);
        let p = CodeParams::new(16, 42);
        let (t, space) = code_trace(grid, p);
        assert_eq!(space.total_data(), 256);
        assert_eq!(t.num_steps() as u32, p.phases * p.steps_per_phase);
        assert_eq!(validate_steps(&t), Ok(()));
        assert!(t.total_refs() > 0);
    }

    #[test]
    fn pattern_is_nonuniform_and_drifting() {
        let grid = Grid::new(4, 4);
        let (t, _) = code_trace(grid, CodeParams::new(16, 3));
        let windowed = t.window_fixed(2); // one window per phase
        let stats = trace_stats(&windowed);
        // hot data get far more references than cold ones
        let vols = pim_trace::stats::volume_per_data(&windowed);
        let max = *vols.iter().max().unwrap();
        let mean = vols.iter().sum::<u64>() as f64 / vols.len() as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "expected skewed reference volumes (max {max}, mean {mean:.1})"
        );
        // hot set drifts between windows
        assert!(
            stats.mean_drift > 0.5,
            "expected inter-window drift, got {}",
            stats.mean_drift
        );
    }
}
