//! Triangular solve with many right-hand sides (extra workload).
//!
//! Forward substitution `L·X = B` for a lower-triangular `n × n` matrix
//! `L` against an `n × n` block of right-hand sides. Row `i` of `X`
//! depends on all earlier rows, so the computation is a wavefront: step
//! `i` references row `i` of `L` (growing prefix) and every earlier row of
//! `X` — a *monotonically expanding* hot set, complementary to LU's
//! shrinking one.

use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_trace::builder::TraceBuilder;
use pim_trace::step::StepTrace;

/// Parameters for the triangular-solve generator.
#[derive(Debug, Clone, Copy)]
pub struct TrisolveParams {
    /// Matrix dimension (and number of right-hand sides).
    pub n: u32,
    /// Iteration partition for the `(row, rhs)` iteration space.
    pub iter_layout: Layout,
}

impl TrisolveParams {
    /// `n × n` with the default block iteration partition.
    pub fn new(n: u32) -> Self {
        TrisolveParams {
            n,
            iter_layout: Layout::Block2D,
        }
    }
}

/// Generate the forward-substitution trace: one step per solved row.
/// Arrays: `L` (ids first) then `X` (solution overwrites the right-hand
/// sides in place).
pub fn trisolve_trace(grid: Grid, params: TrisolveParams) -> (StepTrace, DataSpace) {
    let n = params.n;
    assert!(n >= 2, "trisolve needs n ≥ 2");
    let mut space = DataSpace::new();
    let l = space.add_array("L", n, n);
    let x = space.add_array("X", n, n);
    let mut b = TraceBuilder::new(grid, space.total_data());

    for i in 0..n {
        let mut step = b.step();
        for r in 0..n {
            // rhs column r
            let p = params.iter_layout.owner(&grid, n, n, i, r);
            // x[i][r] = (b[i][r] − Σ_{j<i} L[i][j]·x[j][r]) / L[i][i]
            step.access(p, space.elem(x, i, r));
            step.access(p, space.elem(l, i, i));
            for j in 0..i {
                step.access(p, space.elem(l, i, j));
                step.access(p, space.elem(x, j, r));
            }
        }
    }
    (b.finish(), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn wavefront_grows() {
        let grid = Grid::new(4, 4);
        let (t, _) = trisolve_trace(grid, TrisolveParams::new(8));
        assert_eq!(t.num_steps(), 8);
        let volumes: Vec<u64> = t.steps.iter().map(|s| s.total_refs()).collect();
        for w in volumes.windows(2) {
            assert!(w[1] > w[0], "step volume must grow: {volumes:?}");
        }
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn total_volume_formula() {
        let grid = Grid::new(4, 4);
        let n = 8u64;
        let (t, _) = trisolve_trace(grid, TrisolveParams::new(n as u32));
        // per row i: n·(2 + 2i) references
        let expect: u64 = (0..n).map(|i| n * (2 + 2 * i)).sum();
        assert_eq!(t.total_refs(), expect);
    }
}
