//! Combined benchmarks 3–5.
//!
//! The paper's remaining benchmarks concatenate kernels over a shared data
//! space:
//!
//! * **benchmark 3** — LU factorization followed by CODE;
//! * **benchmark 4** — matrix squaring followed by CODE;
//! * **benchmark 5** — CODE followed by CODE in reverse execution order.
//!
//! Concatenation shares datum ids: the CODE phase operates on array `A`
//! of the preceding kernel (the first `n²` ids), modelling a program that
//! post-processes the factored/squared matrix irregularly.

use crate::code::{code_trace, CodeParams};
use crate::lu::{lu_trace, LuParams};
use crate::matmul::{matmul_trace, MatMulParams};
use crate::space::DataSpace;
use pim_array::grid::Grid;
use pim_trace::step::StepTrace;

/// Benchmark 3: LU then CODE on the same array.
pub fn lu_then_code(grid: Grid, n: u32, seed: u64) -> (StepTrace, DataSpace) {
    let (lu, lu_space) = lu_trace(grid, LuParams::new(n));
    let (code, code_space) = code_trace(grid, CodeParams::new(n, seed));
    (lu.concat(&code), lu_space.union(code_space))
}

/// Benchmark 4: matrix squaring then CODE on array `A`.
pub fn matmul_then_code(grid: Grid, n: u32, seed: u64) -> (StepTrace, DataSpace) {
    let (mm, mm_space) = matmul_trace(grid, MatMulParams::new(n));
    let (code, code_space) = code_trace(grid, CodeParams::new(n, seed));
    (mm.concat(&code), mm_space.union(code_space))
}

/// Benchmark 5: CODE followed by its own reverse execution order.
pub fn code_then_reverse(grid: Grid, n: u32, seed: u64) -> (StepTrace, DataSpace) {
    let (code, space) = code_trace(grid, CodeParams::new(n, seed));
    let rev = code.reversed();
    (code.concat(&rev), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::validate::validate_steps;

    #[test]
    fn b3_shares_array_a() {
        let grid = Grid::new(4, 4);
        let (t, space) = lu_then_code(grid, 8, 1);
        assert_eq!(space.total_data(), 64);
        assert_eq!(t.num_data, 64);
        assert_eq!(validate_steps(&t), Ok(()));
        // steps = LU steps + CODE steps
        let (lu, _) = lu_trace(grid, LuParams::new(8));
        let (code, _) = code_trace(grid, CodeParams::new(8, 1));
        assert_eq!(t.num_steps(), lu.num_steps() + code.num_steps());
    }

    #[test]
    fn b4_keeps_both_arrays() {
        let grid = Grid::new(4, 4);
        let (t, space) = matmul_then_code(grid, 8, 1);
        // A and C from matmul; CODE touches only A
        assert_eq!(space.total_data(), 128);
        assert_eq!(t.num_data, 128);
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn b5_is_palindromic() {
        let grid = Grid::new(4, 4);
        let (t, _) = code_then_reverse(grid, 8, 9);
        let k = t.num_steps();
        assert_eq!(k % 2, 0);
        for i in 0..k / 2 {
            assert_eq!(t.steps[i], t.steps[k - 1 - i], "mirror at {i}");
        }
    }
}
