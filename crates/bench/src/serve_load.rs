//! Closed-loop load generator for the `pim-serve` daemon: the
//! measurement rows behind `BENCH_serve.json`.
//!
//! Each row stands up an in-process TCP daemon, loads one synthetic
//! flat instance (the [`crate::scale`] generator), then drives it from
//! `concurrency` client threads, each with its own connection, issuing
//! requests back to back (closed loop: a client waits for its response
//! before sending the next). Three request mixes:
//!
//! * **warm** — repeated `schedule` against the resident engine: the
//!   steady-state cache-hit regime, the latency the acceptance bound
//!   (p99 ≤ 100 ms on a warm 16×16 × 100k trace) is about;
//! * **churn** — each request is an `edit` carrying a ~1%-of-data delta
//!   followed by the engine's incremental re-solve;
//! * **cold** — each rep evicts the engine (`evict` scope `engine`,
//!   untimed) and then times a from-scratch `schedule` build.
//!
//! Latencies are measured client-side (request write → response read),
//! so they include queueing — that is the number a daemon user sees.
//! The separate [`burst_row`] deliberately under-provisions the daemon
//! (1 worker, tiny queue) and hammers it to show admission control
//! rejecting with typed `overloaded` responses instead of queueing
//! without bound.

use std::sync::Arc;
use std::time::Instant;

use pim_array::grid::Grid;
use pim_serve::{Client, ServeConfig, Server};
use pim_trace::ids::DataId;
use pim_trace::json::{self, Value};
use pim_trace::TraceDelta;

use crate::scale::{synthetic_flat, Rng64, SCALE_SEED, SCALE_WINDOWS};

/// One `BENCH_serve.json` row.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Square grid side length.
    pub side: u32,
    /// Number of data in the instance.
    pub num_data: usize,
    /// Request mix (`warm`, `churn`, `cold`).
    pub mode: &'static str,
    /// Concurrent closed-loop clients.
    pub concurrency: usize,
    /// Requests attempted across all clients (timed ops only).
    pub requests: usize,
    /// Successful responses.
    pub ok: u64,
    /// Typed `overloaded` rejections.
    pub overloaded: u64,
    /// Any other error responses.
    pub errors: u64,
    /// Wall time of the whole row, nanoseconds.
    pub elapsed_ns: u128,
    /// Client-side latencies of successful timed ops, nanoseconds.
    pub latency_ns: Vec<u64>,
}

impl ServeRow {
    /// Successful requests per second over the row's wall time.
    pub fn throughput_rps(&self) -> f64 {
        self.ok as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Nearest-rank percentile over the successful latencies, µs.
    pub fn percentile_us(&self, p: f64) -> f64 {
        if self.latency_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latency_ns.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * p).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1] as f64 / 1e3
    }

    /// Worst successful latency, µs.
    pub fn max_us(&self) -> f64 {
        self.latency_ns.iter().copied().max().unwrap_or(0) as f64 / 1e3
    }
}

fn response_ok(line: &str) -> bool {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("ok").and_then(Value::as_bool))
        .unwrap_or(false)
}

fn response_error(line: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get("error")
        .and_then(Value::as_str)
        .map(str::to_string)
}

/// Build the `load` request line for a synthetic instance.
fn load_line(side: u32, num_data: usize) -> String {
    let grid = Grid::new(side, side);
    let flat = synthetic_flat(grid, SCALE_WINDOWS, num_data, SCALE_SEED);
    let mut line = String::from("{\"op\":\"load\",\"text\":\"");
    json::escape_into(&mut line, &flat.to_text());
    line.push_str("\"}");
    line
}

/// One churn delta (~1% of data, same shapes as the instance generator),
/// rendered as an `edit` request line.
fn edit_line(key: &str, side: u32, num_data: usize, rng: &mut Rng64) -> String {
    let grid = Grid::new(side, side);
    let (w, h) = (grid.width() as u64, grid.height() as u64);
    let dirty = (num_data / 100).max(1);
    let mut delta = TraceDelta::new();
    for _ in 0..dirty {
        let d = rng.below(num_data as u64) as u32;
        let window = rng.below(SCALE_WINDOWS as u64) as u32;
        let x = rng.below(w) as u32;
        let y = rng.below(h) as u32;
        delta.set_run(
            DataId(d),
            window,
            vec![(grid.proc_xy(x, y), 1 + rng.below(4) as u32)],
        );
    }
    format!(
        "{{\"op\":\"edit\",\"trace\":\"{key}\",\"delta\":{}}}",
        delta.to_json()
    )
}

struct Harness {
    server: Server,
    key: String,
}

/// Start a daemon, load the instance, and `schedule` once so the engine
/// is resident before any client starts.
fn stand_up(config: &ServeConfig, side: u32, num_data: usize, method: &str) -> Harness {
    let server = Server::start_tcp(config, "127.0.0.1:0").expect("bind loopback");
    let addr = server.tcp_addr().expect("tcp endpoint");
    let mut client = Client::connect_tcp(addr).expect("connect");
    let loaded = client
        .request(&load_line(side, num_data))
        .expect("load request");
    let key = json::parse(&loaded)
        .ok()
        .and_then(|v| v.get("trace").and_then(Value::as_str).map(str::to_string))
        .unwrap_or_else(|| panic!("load failed: {loaded}"));
    let warm = client
        .request(&format!(
            "{{\"op\":\"schedule\",\"trace\":\"{key}\",\"method\":\"{method}\"}}"
        ))
        .expect("priming schedule");
    assert!(response_ok(&warm), "priming schedule failed: {warm}");
    Harness { server, key }
}

fn drive(
    harness: &Harness,
    side: u32,
    num_data: usize,
    mode: &'static str,
    method: &'static str,
    concurrency: usize,
    reps_per_client: usize,
) -> ServeRow {
    let addr = harness.server.tcp_addr().expect("tcp endpoint");
    let key = Arc::new(harness.key.clone());
    let started = Instant::now();
    let handles: Vec<_> = (0..concurrency)
        .map(|c| {
            let key = Arc::clone(&key);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).expect("client connect");
                // Untimed warmup ping: absorbs connection setup (accept-poll
                // latency) so the measured reps see steady-state service time.
                let _ = client.request("{\"op\":\"ping\"}").expect("warmup ping");
                let mut rng = Rng64::new(SCALE_SEED ^ (0xD00D + c as u64));
                let schedule =
                    format!("{{\"op\":\"schedule\",\"trace\":\"{key}\",\"method\":\"{method}\"}}");
                let evict =
                    format!("{{\"op\":\"evict\",\"trace\":\"{key}\",\"scope\":\"engine\"}}");
                let mut latencies = Vec::with_capacity(reps_per_client);
                let (mut ok, mut overloaded, mut errors) = (0u64, 0u64, 0u64);
                for _ in 0..reps_per_client {
                    let line = match mode {
                        "warm" => schedule.clone(),
                        "cold" => {
                            // Untimed engine eviction forces the next
                            // schedule to rebuild from the base trace.
                            let _ = client.request(&evict).expect("evict request");
                            schedule.clone()
                        }
                        "churn" => edit_line(&key, side, num_data, &mut rng),
                        other => panic!("unknown serve mode {other}"),
                    };
                    let start = Instant::now();
                    let response = client.request(&line).expect("request round trip");
                    let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    if response_ok(&response) {
                        ok += 1;
                        latencies.push(elapsed);
                    } else if response_error(&response).as_deref() == Some("overloaded") {
                        overloaded += 1;
                    } else {
                        errors += 1;
                    }
                }
                (ok, overloaded, errors, latencies)
            })
        })
        .collect();
    let mut row = ServeRow {
        side,
        num_data,
        mode,
        concurrency,
        requests: concurrency * reps_per_client,
        ok: 0,
        overloaded: 0,
        errors: 0,
        elapsed_ns: 0,
        latency_ns: Vec::new(),
    };
    for h in handles {
        let (ok, overloaded, errors, latencies) = h.join().expect("client thread");
        row.ok += ok;
        row.overloaded += overloaded;
        row.errors += errors;
        row.latency_ns.extend(latencies);
    }
    row.elapsed_ns = started.elapsed().as_nanos();
    row
}

/// Measure one load row against a fresh, adequately provisioned daemon.
pub fn serve_row(
    side: u32,
    num_data: usize,
    mode: &'static str,
    method: &'static str,
    concurrency: usize,
    reps_per_client: usize,
) -> ServeRow {
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 256,
        cache_bytes: 1 << 30,
        pool_threads: 0,
    };
    let harness = stand_up(&config, side, num_data, method);
    let row = drive(
        &harness,
        side,
        num_data,
        mode,
        method,
        concurrency,
        reps_per_client,
    );
    harness.server.shutdown();
    assert_eq!(
        row.errors, 0,
        "{mode} row hit non-overload errors against a fresh daemon"
    );
    row
}

/// Hammer a deliberately under-provisioned daemon (1 worker, queue of 2)
/// with `concurrency` warm-schedule clients; admission control must shed
/// load as typed `overloaded` rejections, and every client must get an
/// answer for every request (no hangs).
pub fn burst_row(side: u32, num_data: usize, concurrency: usize, reps: usize) -> ServeRow {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 2,
        cache_bytes: 1 << 30,
        pool_threads: 0,
    };
    let harness = stand_up(&config, side, num_data, "scds");
    let mut row = drive(&harness, side, num_data, "warm", "scds", concurrency, reps);
    row.mode = "burst";
    harness.server.shutdown();
    assert_eq!(
        row.ok + row.overloaded + row.errors,
        row.requests as u64,
        "every burst request must be answered"
    );
    row
}

/// Render rows (and the burst row) as the `BENCH_serve.json` document
/// (hand-rolled JSON; the vendored serde shim has no serializer).
pub fn render_json(rows: &[ServeRow], burst: &ServeRow) -> String {
    use std::fmt::Write as _;
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"config\": {{\"windows\": {SCALE_WINDOWS}, \"seed\": {SCALE_SEED}, \
         \"loop\": \"closed\"}},\n  \"rows\": [\n"
    );
    let render_row = |json: &mut String, row: &ServeRow| {
        let _ = write!(
            json,
            "    {{\"grid\": \"{0}x{0}\", \"num_data\": {1}, \"mode\": \"{2}\", \
             \"concurrency\": {3}, \"requests\": {4}, \"ok\": {5}, \
             \"overloaded\": {6}, \"errors\": {7}, \"elapsed_ns\": {8}, \
             \"throughput_rps\": {9:.1}, \"p50_us\": {10:.1}, \"p90_us\": {11:.1}, \
             \"p99_us\": {12:.1}, \"max_us\": {13:.1}}}",
            row.side,
            row.num_data,
            row.mode,
            row.concurrency,
            row.requests,
            row.ok,
            row.overloaded,
            row.errors,
            row.elapsed_ns,
            row.throughput_rps(),
            row.percentile_us(0.50),
            row.percentile_us(0.90),
            row.percentile_us(0.99),
            row.max_us(),
        );
    };
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        render_row(&mut json, row);
    }
    json.push_str("\n  ],\n  \"burst\":\n");
    render_row(&mut json, burst);
    json.push_str("\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_and_cold_rows_measure() {
        let warm = serve_row(8, 1000, "warm", "scds", 2, 20);
        assert_eq!(warm.ok, 40);
        assert_eq!(warm.overloaded, 0);
        assert!(warm.percentile_us(0.5) > 0.0);
        assert!(warm.percentile_us(0.5) <= warm.percentile_us(0.99));
        let cold = serve_row(8, 1000, "cold", "scds", 1, 3);
        assert_eq!(cold.ok, 3);
        // A cold build parses + solves from scratch; warm is a cache hit.
        assert!(cold.percentile_us(0.5) >= warm.percentile_us(0.5));
    }

    #[test]
    fn churn_row_measures() {
        let row = serve_row(8, 1000, "churn", "lomcds", 2, 5);
        assert_eq!(row.ok, 10);
        assert_eq!(row.errors, 0);
    }

    #[test]
    fn burst_sheds_load_without_hanging() {
        let row = burst_row(8, 500, 12, 30);
        assert!(
            row.overloaded > 0,
            "under-provisioned daemon must reject some of {} requests",
            row.requests
        );
        assert!(row.ok > 0, "some requests must still succeed");
        let json = render_json(&[], &row);
        assert!(pim_trace::json::parse(&json).is_ok(), "{json}");
        assert!(json.contains("\"burst\""));
    }

    #[test]
    fn json_document_parses() {
        let row = serve_row(8, 400, "warm", "scds", 1, 4);
        let doc = render_json(std::slice::from_ref(&row), &row);
        let v = pim_trace::json::parse(&doc).unwrap_or_else(|e| panic!("{e}\n{doc}"));
        let rows = v.get("rows").and_then(Value::as_arr).expect("rows array");
        assert_eq!(rows.len(), 1);
        assert!(rows[0].get("throughput_rps").is_some());
        assert!(v.get("burst").and_then(|b| b.get("overloaded")).is_some());
    }
}
