#![warn(missing_docs)]
//! # pim-bench
//!
//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation plus the ablation sweeps listed in `DESIGN.md` §4.
//!
//! Binaries (run with `cargo run --release -p pim-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — total communication cost before grouping |
//! | `table2` | Table 2 — after Algorithm 3 grouping |
//! | `figure1` | Figure 1 — the worked single-datum example |
//! | `sweep_window` | ablation B — window size vs cost |
//! | `sweep_memory` | ablation C — memory pressure vs cost |
//! | `sweep_array` | ablation D — array size vs cost |
//! | `ablation_solver` | ablation A — naive vs distance-transform GOMCDS |
//! | `ablation_grouping` | ablation E — greedy vs DP-optimal grouping |
//!
//! Criterion micro-benches live under `benches/`. All binaries accept
//! `--csv` to emit machine-readable output alongside the pretty table.
//!
//! `report_scale` (module [`scale`]) is the big-instance harness: synthetic
//! flat traces up to 64×64 grids × 1M data, timing the SoA fast paths
//! against the classic schedulers and writing `BENCH_scale.json`.
//!
//! `report_churn` (module [`churn`]) is the steady-state churn harness:
//! per-tick trace edits driven through the incremental engine vs a
//! from-scratch re-schedule, writing `BENCH_churn.json`. Shared timing
//! conventions (min-of-reps, slower-than-reference warnings) live in
//! [`timing`].
//!
//! `report_serve` (module [`serve_load`]) is the daemon load harness:
//! closed-loop clients against an in-process `pim-serve` TCP daemon
//! (warm / churn / cold request mixes plus an overload burst), writing
//! `BENCH_serve.json` with throughput and latency percentiles.
//!
//! `report_stream` (module [`stream`]) is the out-of-core harness: a big
//! instance packed to the `.pimb` binary format, scheduled end-to-end by
//! the streaming pipeline and by the resident in-memory pipeline in
//! separate child processes (peak RSS is process-wide), writing
//! `BENCH_stream.json` with cost parity, RSS ratios and binary-vs-text
//! load speed.

pub mod churn;
pub mod cycle_workload;
pub mod experiments;
pub mod scale;
pub mod serve_load;
pub mod stream;
pub mod table;
pub mod timing;

pub use experiments::{paper_config, run_comparison, ComparisonRow, PaperConfig};
