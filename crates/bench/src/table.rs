//! Table rendering in the paper's layout.

use crate::experiments::{mean_improvement, ComparisonRow};

/// Render rows in the paper's layout:
///
/// ```text
/// B.  Size   S.F.      SCDS  Comm %   LOMCDS Comm %   GOMCDS Comm %
/// ```
pub fn render(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let methods: Vec<String> = rows
        .first()
        .map(|r| r.entries.iter().map(|e| e.0.to_string()).collect())
        .unwrap_or_default();

    out.push_str(&format!("{:<3} {:>7} {:>10}", "B.", "Size", "S.F."));
    for m in &methods {
        out.push_str(&format!(" | {:>12} {:>6}", m, "%"));
    }
    out.push('\n');
    let width = 22 + methods.len() * 23;
    out.push_str(&"-".repeat(width));
    out.push('\n');

    for r in rows {
        out.push_str(&format!(
            "{:<3} {:>4}x{:<3} {:>9}",
            r.bench, r.size, r.size, r.sf
        ));
        for &(_, cost, pct) in &r.entries {
            out.push_str(&format!(" | {cost:>12} {pct:>5.1}%"));
        }
        out.push('\n');
    }

    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{:<3} {:>7} {:>10}", "avg", "", ""));
    for i in 0..methods.len() {
        out.push_str(&format!(
            " | {:>12} {:>5.1}%",
            "",
            mean_improvement(rows, i)
        ));
    }
    out.push('\n');
    out
}

/// Render rows as CSV (one line per row-method pair).
pub fn render_csv(rows: &[ComparisonRow]) -> String {
    let mut out = String::from("bench,size,sf,method,comm,improvement_pct\n");
    for r in rows {
        for &(m, cost, pct) in &r.entries {
            out.push_str(&format!(
                "{},{},{},{},{},{:.2}\n",
                r.bench, r.size, r.sf, m, cost, pct
            ));
        }
    }
    out
}

/// Whether `--csv` was requested on the command line.
pub fn want_csv() -> bool {
    std::env::args().any(|a| a == "--csv")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ComparisonRow> {
        vec![ComparisonRow {
            bench: "1",
            size: 8,
            sf: 1000,
            entries: vec![("SCDS", 800, 20.0), ("GOMCDS", 600, 40.0)],
        }]
    }

    #[test]
    fn render_contains_everything() {
        let s = render("Table 1", &rows());
        assert!(s.contains("Table 1"));
        assert!(s.contains("S.F."));
        assert!(s.contains("SCDS"));
        assert!(s.contains("GOMCDS"));
        assert!(s.contains("8x8"));
        assert!(s.contains("1000"));
        assert!(s.contains("20.0%"));
        assert!(s.contains("avg"));
    }

    #[test]
    fn csv_shape() {
        let s = render_csv(&rows());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "bench,size,sf,method,comm,improvement_pct");
        assert!(lines[1].starts_with("1,8,1000,SCDS,800,20.00"));
    }

    #[test]
    fn render_empty() {
        let s = render("empty", &[]);
        assert!(s.contains("empty"));
    }
}
