//! Out-of-core streaming report: the measurement phases behind
//! `BENCH_stream.json`.
//!
//! The report compares the streaming pipeline ([`pim_sched::stream`])
//! against the resident in-memory pipeline (whole-file decode +
//! [`pim_sched::flat`]) on the same packed `.pimb` instance: wall time,
//! total cost (asserted bit-identical) and peak RSS. `VmHWM` is a
//! process-wide high-water mark — it only rises — so the two pipelines
//! cannot share a process without the first phase's peak masking the
//! second's. `report_stream` therefore re-executes itself once per phase
//! (`--phase pack|stream|inmem|load`); each child prints one
//! machine-readable `phase-result` line that the parent parses back with
//! [`parse_phase_line`] and folds into the JSON document.

use crate::scale::{synthetic_flat, SCALE_SEED, SCALE_WINDOWS};
use pim_array::grid::Grid;
use pim_sched::{
    flat_lomcds, flat_scds, flat_total_cost, stream_schedule, MemoryPolicy, Method, StreamConfig,
};
use pim_trace::binfmt;
use pim_trace::flat::FlatTrace;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::path::Path;
use std::time::Instant;

/// Marker prefix of the one stdout line a child phase emits.
pub const PHASE_MARKER: &str = "phase-result";

/// Render a child phase's result line: `phase-result k=v k=v ...`.
/// Keys and values must not contain whitespace (all are identifiers or
/// decimal numbers).
pub fn render_phase_line(pairs: &[(&str, String)]) -> String {
    let mut line = String::from(PHASE_MARKER);
    for (k, v) in pairs {
        debug_assert!(!v.contains(char::is_whitespace), "kv value {v:?}");
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    line
}

/// Parse a [`render_phase_line`] line out of a child's stdout. Returns
/// `None` when `out` holds no marker line; malformed pairs on a marker
/// line are an error the caller should surface (a half-written line means
/// the child died mid-print).
pub fn parse_phase_line(out: &str) -> Option<BTreeMap<String, String>> {
    let line = out
        .lines()
        .find(|l| l.starts_with(PHASE_MARKER))?
        .strip_prefix(PHASE_MARKER)
        .expect("just matched the prefix");
    let mut map = BTreeMap::new();
    for pair in line.split_whitespace() {
        let (k, v) = pair
            .split_once('=')
            .unwrap_or_else(|| panic!("malformed phase pair {pair:?}"));
        map.insert(k.to_string(), v.to_string());
    }
    Some(map)
}

/// What the pack phase produced.
#[derive(Debug, Clone, Copy)]
pub struct PackStats {
    /// Bytes written to the `.pimb` file.
    pub bytes: u64,
    /// Aggregated reference runs in the instance.
    pub num_refs: usize,
}

/// Child phase: generate the canonical synthetic instance (the
/// [`crate::scale`] generator: [`SCALE_WINDOWS`] windows, seed
/// [`SCALE_SEED`]) and pack it to `path`.
pub fn pack_phase(path: &Path, side: u32, num_data: usize) -> PackStats {
    let grid = Grid::new(side, side);
    let flat = synthetic_flat(grid, SCALE_WINDOWS, num_data, SCALE_SEED);
    let bytes =
        binfmt::pack_file(&flat, path).unwrap_or_else(|e| panic!("pack {}: {e}", path.display()));
    PackStats {
        bytes,
        num_refs: flat.num_refs(),
    }
}

/// One pipeline's measurement within a method row.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Total schedule cost (reference + movement).
    pub cost: u64,
    /// End-to-end wall time — file open through final cost — nanoseconds.
    pub ns: u128,
    /// Process peak RSS after the phase, kilobytes (0 when unavailable).
    pub peak_rss_kb: u64,
    /// Chunks the streaming walk used (0 for the in-memory pipeline).
    pub num_chunks: usize,
}

fn method_of(label: &str) -> Method {
    match label {
        "scds" => Method::Scds,
        "lomcds" => Method::Lomcds,
        other => panic!("no stream harness for method {other}"),
    }
}

/// Child phase: schedule the `.pimb` at `path` out-of-core and fold the
/// cost, never materializing the trace or the schedule. `chunk_data` `0`
/// takes the [`StreamConfig`] default (the smoke gate passes a small
/// explicit chunk so even its 50k instance walks multiple chunks).
pub fn stream_phase(path: &Path, method_label: &str, chunk_data: usize) -> PhaseStats {
    let method = method_of(method_label);
    let start = Instant::now();
    let out = stream_schedule(
        path,
        method,
        MemoryPolicy::Unbounded,
        pim_par::Pool::auto(),
        StreamConfig { chunk_data },
    )
    .unwrap_or_else(|e| panic!("stream {method_label} on {}: {e}", path.display()));
    PhaseStats {
        cost: out.cost.total(),
        ns: start.elapsed().as_nanos(),
        peak_rss_kb: crate::timing::peak_rss_kb().unwrap_or(0),
        num_chunks: out.num_chunks,
    }
}

/// Child phase: the resident baseline — decode the whole `.pimb` into an
/// owned [`FlatTrace`], run the in-memory flat scheduler, evaluate the
/// materialized schedule.
pub fn inmem_phase(path: &Path, method_label: &str) -> PhaseStats {
    let method = method_of(method_label);
    let pool = pim_par::Pool::auto();
    let start = Instant::now();
    let flat = binfmt::load_flat(path).unwrap_or_else(|e| panic!("load {}: {e}", path.display()));
    let sched = match method {
        Method::Scds => flat_scds(&flat, MemoryPolicy::Unbounded, pool),
        _ => flat_lomcds(&flat, MemoryPolicy::Unbounded, pool),
    }
    .expect("unbounded cannot exhaust");
    let cost = flat_total_cost(&flat, &sched).total();
    PhaseStats {
        cost,
        ns: start.elapsed().as_nanos(),
        peak_rss_kb: crate::timing::peak_rss_kb().unwrap_or(0),
        num_chunks: 0,
    }
}

/// What the load-comparison phase measured.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Data in the comparison instance.
    pub num_data: usize,
    /// Memory-mapped binary open ([`pim_trace::BinTrace::open`]) wall
    /// time — map + checksum + full CSR validation — nanoseconds.
    pub binary_ns: u128,
    /// Text parse ([`FlatTrace::from_reader`]) wall time, ns.
    pub text_ns: u128,
}

impl LoadStats {
    /// `text_ns / binary_ns`.
    pub fn speedup(&self) -> f64 {
        self.text_ns as f64 / self.binary_ns.max(1) as f64
    }
}

/// Child phase: write the same instance in both formats under `dir`, then
/// time a full load of each (best of `reps`, see [`crate::timing`]). The
/// binary side is [`pim_trace::BinTrace::open`] — the memory-mapped
/// zero-copy path `pim-cli run --bin` and the serve `path` load take —
/// which validates the checksum and every CSR invariant and ends in a
/// trace the flat schedulers consume directly through `FlatView`. The
/// text side is the full parse into an owned [`FlatTrace`].
pub fn load_phase(dir: &Path, side: u32, num_data: usize, reps: u32) -> LoadStats {
    let grid = Grid::new(side, side);
    let flat = synthetic_flat(grid, SCALE_WINDOWS, num_data, SCALE_SEED);
    let bin_path = dir.join("load_cmp.pimb");
    let text_path = dir.join("load_cmp.txt");
    binfmt::pack_file(&flat, &bin_path).expect("pack comparison instance");
    std::fs::write(&text_path, flat.to_text()).expect("write text instance");
    drop(flat);

    let (binary_ns, bin_trace) = crate::timing::bench_ns(reps, || {
        pim_trace::BinTrace::open(&bin_path).expect("binary load")
    });
    let (text_ns, text_flat) = crate::timing::bench_ns(reps, || {
        let file = std::fs::File::open(&text_path).expect("open text instance");
        FlatTrace::from_reader(BufReader::new(file)).expect("text load")
    });
    assert_eq!(
        bin_trace.to_flat().to_text(),
        text_flat.to_text(),
        "binary and text loads decoded different traces"
    );
    LoadStats {
        num_data,
        binary_ns,
        text_ns,
    }
}

/// One method's stream-vs-resident comparison.
#[derive(Debug, Clone, Copy)]
pub struct StreamRow {
    /// Registry name of the method (`scds`, `lomcds`).
    pub method: &'static str,
    /// The out-of-core pipeline.
    pub stream: PhaseStats,
    /// The resident in-memory pipeline.
    pub inmem: PhaseStats,
}

impl StreamRow {
    /// `stream.peak_rss_kb / inmem.peak_rss_kb` — the bounded-memory claim.
    pub fn rss_ratio(&self) -> f64 {
        self.stream.peak_rss_kb as f64 / self.inmem.peak_rss_kb.max(1) as f64
    }

    /// Whether the folded streaming cost matched the in-memory cost bit
    /// for bit (the parent asserts this before rendering).
    pub fn parity(&self) -> bool {
        self.stream.cost == self.inmem.cost
    }
}

/// Render the `BENCH_stream.json` document (hand-rolled JSON; the
/// vendored serde shim has no serializer and the schema is flat).
pub fn render_json(
    side: u32,
    num_data: usize,
    chunk_data: usize,
    pack: PackStats,
    load: LoadStats,
    rows: &[StreamRow],
) -> String {
    use std::fmt::Write as _;
    let resolved_chunk = if chunk_data == 0 {
        StreamConfig::AUTO_CHUNK_DATA
    } else {
        chunk_data
    };
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"windows\": {SCALE_WINDOWS}, \"seed\": {SCALE_SEED}, \
         \"memory\": \"unbounded\", \"chunk_data\": {resolved_chunk}}},",
    );
    let _ = writeln!(
        json,
        "  \"instance\": {{\"grid\": \"{side}x{side}\", \"num_data\": {num_data}, \
         \"num_refs\": {}, \"file_bytes\": {}}},",
        pack.num_refs, pack.bytes,
    );
    let _ = write!(
        json,
        "  \"load\": {{\"num_data\": {}, \"binary_ns\": {}, \"text_ns\": {}, \
         \"speedup\": {:.3}}},\n  \"rows\": [\n",
        load.num_data,
        load.binary_ns,
        load.text_ns,
        load.speedup(),
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"method\": \"{}\", \"stream_ns\": {}, \"stream_cost\": {}, \
             \"stream_peak_rss_kb\": {}, \"num_chunks\": {}, \"inmem_ns\": {}, \
             \"inmem_cost\": {}, \"inmem_peak_rss_kb\": {}, \"rss_ratio\": {:.4}, \
             \"parity\": {}}}",
            row.method,
            row.stream.ns,
            row.stream.cost,
            row.stream.peak_rss_kb,
            row.stream.num_chunks,
            row.inmem.ns,
            row.inmem.cost,
            row.inmem.peak_rss_kb,
            row.rss_ratio(),
            row.parity(),
        );
    }
    json.push_str("\n  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_line_round_trips() {
        let line = render_phase_line(&[("cost", 42.to_string()), ("ns", 7.to_string())]);
        let map = parse_phase_line(&format!("noise\n{line}\nmore noise\n")).unwrap();
        assert_eq!(map["cost"], "42");
        assert_eq!(map["ns"], "7");
        assert!(parse_phase_line("no marker here\n").is_none());
    }

    #[test]
    fn phases_agree_end_to_end_in_process() {
        let dir = std::env::temp_dir().join(format!("pim_stream_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pimb");
        let pack = pack_phase(&path, 6, 300);
        assert!(pack.bytes > binfmt::HEADER_LEN as u64);
        let mut rows = Vec::new();
        for method in ["scds", "lomcds"] {
            let stream = stream_phase(&path, method, 64);
            let inmem = inmem_phase(&path, method);
            assert_eq!(stream.cost, inmem.cost, "{method} cost parity");
            rows.push(StreamRow {
                method: if method == "scds" { "scds" } else { "lomcds" },
                stream,
                inmem,
            });
        }
        let load = load_phase(&dir, 6, 300, 1);
        assert!(load.binary_ns > 0 && load.text_ns > 0);
        assert!(
            rows.iter().all(|r| r.stream.num_chunks > 1),
            "chunk 64 over 300 data must walk multiple chunks"
        );
        let json = render_json(6, 300, 64, pack, load, &rows);
        for key in [
            "\"instance\"",
            "\"file_bytes\"",
            "\"load\"",
            "\"speedup\"",
            "\"stream_peak_rss_kb\"",
            "\"rss_ratio\"",
            "\"parity\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The document must parse with the repo's own JSON parser.
        pim_trace::json::parse(&json).expect("render_json emits valid JSON");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
