//! Steady-state churn harness: the measurement rows behind
//! `BENCH_churn.json`.
//!
//! Each row builds a synthetic flat instance (the [`crate::scale`]
//! generator), stands up an [`IncrementalRun`], then drives `ticks`
//! steady-state edit ticks. Every tick perturbs ~1% of the data (each
//! picked datum gets one reference run rewritten in a random window),
//! times the engine's delta re-solve, then times a from-scratch
//! re-schedule of the same edited trace (materialize + flat scheduler)
//! and asserts the two schedules are **bit-identical** — the speedup
//! column never trades exactness.

use crate::scale::{synthetic_flat, Rng64, SCALE_SEED, SCALE_WINDOWS};
use pim_array::grid::Grid;
use pim_sched::incremental::IncrementalRun;
use pim_sched::{flat_gomcds, flat_lomcds, flat_scds, MemoryPolicy, Method, Schedule};
use pim_trace::edit::TraceDelta;
use pim_trace::flat::FlatTrace;
use pim_trace::ids::DataId;
use std::time::Instant;

/// Fraction of the data perturbed per tick, in percent.
pub const CHURN_PCT: usize = 1;

/// One `BENCH_churn.json` row: a (grid, data count, method, policy)
/// instance driven through steady-state churn ticks.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Square grid side length.
    pub side: u32,
    /// Number of data in the instance.
    pub num_data: usize,
    /// Registry name of the method (lowercase).
    pub method: &'static str,
    /// Memory-policy label (`unbounded`, `scaled_min_x2`, `cap1`).
    pub policy: &'static str,
    /// Data perturbed per tick (`max(1, num_data / 100)`).
    pub dirty_per_tick: usize,
    /// Per-tick incremental re-solve wall times, nanoseconds.
    pub tick_ns: Vec<u128>,
    /// Per-tick from-scratch wall times (materialize + flat scheduler).
    pub scratch_ns: Vec<u128>,
    /// Full capacity replays the engine fell back to across all ticks.
    pub fallbacks: u64,
    /// Whether every tick's incremental schedule matched the scratch one
    /// bit for bit (always true — divergence panics — recorded so the CI
    /// validator can check the field exists and holds).
    pub parity: bool,
    /// Process-wide peak-RSS high-water mark (`VmHWM`) sampled after this
    /// row, kilobytes — monotone across rows within one report run; 0 when
    /// unavailable.
    pub peak_rss_kb: u64,
}

impl ChurnRow {
    /// Mean per-tick incremental latency, nanoseconds.
    pub fn mean_tick_ns(&self) -> u128 {
        mean(&self.tick_ns)
    }

    /// Mean per-tick from-scratch latency, nanoseconds.
    pub fn mean_scratch_ns(&self) -> u128 {
        mean(&self.scratch_ns)
    }

    /// `mean_scratch_ns / mean_tick_ns`.
    pub fn speedup(&self) -> f64 {
        self.mean_scratch_ns() as f64 / self.mean_tick_ns().max(1) as f64
    }
}

fn mean(xs: &[u128]) -> u128 {
    if xs.is_empty() {
        0
    } else {
        xs.iter().sum::<u128>() / xs.len() as u128
    }
}

/// Parse a lowercase method label into the [`Method`] the engine drives.
fn method_of(label: &str) -> Method {
    match label {
        "scds" => Method::Scds,
        "lomcds" => Method::Lomcds,
        "gomcds" => Method::Gomcds,
        other => panic!("no churn harness for method {other}"),
    }
}

/// From-scratch schedule of `flat` under the row's method — the reference
/// the incremental engine must match bit for bit.
fn scratch_schedule(
    flat: &FlatTrace,
    method: Method,
    policy: MemoryPolicy,
    pool: pim_par::Pool,
) -> Schedule {
    match method {
        Method::Scds => flat_scds(flat, policy, pool),
        Method::Lomcds => flat_lomcds(flat, policy, pool),
        _ => flat_gomcds(flat, policy, pool),
    }
    .unwrap_or_else(|e| panic!("scratch {method} failed: {e}"))
}

/// One tick's delta: `dirty` distinct data each get the reference run of
/// one random window rewritten to 1–3 references near a fresh random home
/// (counts 1–4) — the same shapes the instance generator emits.
fn churn_delta(
    grid: Grid,
    num_data: usize,
    num_windows: usize,
    dirty: usize,
    rng: &mut Rng64,
    picked: &mut [bool],
) -> TraceDelta {
    let (w, h) = (grid.width() as i64, grid.height() as i64);
    let mut delta = TraceDelta::new();
    let mut chosen = Vec::with_capacity(dirty);
    while chosen.len() < dirty {
        let d = rng.below(num_data as u64) as usize;
        if !picked[d] {
            picked[d] = true;
            chosen.push(d);
        }
    }
    for &d in &chosen {
        picked[d] = false;
        let window = rng.below(num_windows as u64) as u32;
        let hx = rng.below(w as u64) as i64;
        let hy = rng.below(h as u64) as i64;
        let nrefs = 1 + rng.below(3);
        let refs: Vec<_> = (0..nrefs)
            .map(|_| {
                let x = (hx + rng.below(3) as i64 - 1).clamp(0, w - 1) as u32;
                let y = (hy + rng.below(3) as i64 - 1).clamp(0, h - 1) as u32;
                (grid.proc_xy(x, y), 1 + rng.below(4) as u32)
            })
            .collect();
        delta.set_run(DataId(d as u32), window, refs);
    }
    delta
}

/// Build and measure one churn row: `ticks` steady-state ticks on a
/// `side`×`side` grid with `num_data` data. Panics if any tick's
/// incremental schedule diverges from the from-scratch one.
pub fn churn_row(
    side: u32,
    num_data: usize,
    method_label: &'static str,
    policy: MemoryPolicy,
    policy_label: &'static str,
    ticks: usize,
) -> ChurnRow {
    let grid = Grid::new(side, side);
    let method = method_of(method_label);
    let pool = pim_par::Pool::auto();
    let flat = synthetic_flat(grid, SCALE_WINDOWS, num_data, SCALE_SEED);
    let mut engine = IncrementalRun::new(flat, method, policy, pool)
        .unwrap_or_else(|e| panic!("engine {method_label} {policy_label}: {e}"));

    let dirty_per_tick = (num_data * CHURN_PCT / 100).max(1);
    let mut rng = Rng64::new(SCALE_SEED ^ 0xC4A4);
    let mut picked = vec![false; num_data];
    let mut tick_ns = Vec::with_capacity(ticks);
    let mut scratch_ns = Vec::with_capacity(ticks);

    // One untimed warmup tick: the first delta and the first materialize
    // + schedule in a process pay one-off page-fault and allocator costs
    // that would skew both columns (ticks are measured single-shot, so
    // decolding here is the only rep discipline available). The warmup
    // still asserts parity.
    {
        let delta = churn_delta(
            grid,
            num_data,
            SCALE_WINDOWS,
            dirty_per_tick,
            &mut rng,
            &mut picked,
        );
        engine
            .incremental(&delta)
            .unwrap_or_else(|e| panic!("warmup tick: {e}"));
        let scratch = scratch_schedule(&engine.trace().materialize(), method, policy, pool);
        assert_eq!(
            engine.schedule(),
            &scratch,
            "{method_label}/{policy_label} diverged from scratch at warmup"
        );
    }
    let warmup_fallbacks = engine.fallbacks();

    for tick in 0..ticks {
        let delta = churn_delta(
            grid,
            num_data,
            SCALE_WINDOWS,
            dirty_per_tick,
            &mut rng,
            &mut picked,
        );

        let start = Instant::now();
        engine
            .incremental(&delta)
            .unwrap_or_else(|e| panic!("tick {tick}: {e}"));
        tick_ns.push(start.elapsed().as_nanos());

        let start = Instant::now();
        let edited = engine.trace().materialize();
        let scratch = scratch_schedule(&edited, method, policy, pool);
        scratch_ns.push(start.elapsed().as_nanos());

        assert_eq!(
            engine.schedule(),
            &scratch,
            "{method_label}/{policy_label} diverged from scratch at tick {tick}"
        );
    }

    ChurnRow {
        side,
        num_data,
        method: method_label,
        policy: policy_label,
        dirty_per_tick,
        tick_ns,
        scratch_ns,
        fallbacks: engine.fallbacks() - warmup_fallbacks,
        parity: true,
        peak_rss_kb: crate::timing::peak_rss_kb().unwrap_or(0),
    }
}

/// Render rows as the `BENCH_churn.json` document (hand-rolled JSON; the
/// vendored serde shim has no serializer and the schema is flat).
pub fn render_json(rows: &[ChurnRow]) -> String {
    use std::fmt::Write as _;
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"config\": {{\"windows\": {SCALE_WINDOWS}, \"seed\": {SCALE_SEED}, \
         \"churn_pct\": {CHURN_PCT}}},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"grid\": \"{0}x{0}\", \"num_data\": {1}, \"method\": \"{2}\", \
             \"policy\": \"{3}\", \"ticks\": {4}, \"dirty_per_tick\": {5}, \
             \"mean_tick_ns\": {6}, \"mean_scratch_ns\": {7}, \"speedup\": {8:.3}, \
             \"fallbacks\": {9}, \"parity\": {10}, \"peak_rss_kb\": {11}, \"tick_ns\": [",
            row.side,
            row.num_data,
            row.method,
            row.policy,
            row.tick_ns.len(),
            row.dirty_per_tick,
            row.mean_tick_ns(),
            row.mean_scratch_ns(),
            row.speedup(),
            row.fallbacks,
            row.parity,
            row.peak_rss_kb,
        );
        for (j, ns) in row.tick_ns.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            let _ = write!(json, "{ns}");
        }
        json.push_str("]}");
    }
    json.push_str("\n  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_row_holds_parity_and_counts() {
        let row = churn_row(8, 400, "lomcds", MemoryPolicy::Unbounded, "unbounded", 3);
        assert_eq!(row.tick_ns.len(), 3);
        assert_eq!(row.scratch_ns.len(), 3);
        assert_eq!(row.dirty_per_tick, 4);
        assert!(row.parity);
        let json = render_json(&[row]);
        assert!(json.contains("\"grid\": \"8x8\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"fallbacks\""));
        assert!(json.contains("\"peak_rss_kb\""));
    }

    #[test]
    fn tight_capacity_row_exercises_fallbacks() {
        // 8×8 grid with 64 data at capacity 1: every processor is full,
        // so churn that moves a median must displace and fall back.
        let row = churn_row(8, 64, "scds", MemoryPolicy::Capacity(1), "cap1", 5);
        assert!(row.parity);
        assert!(
            row.fallbacks > 0,
            "expected displacement fallbacks at capacity 1"
        );
    }
}
