//! Shared experiment configuration and runners.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::{MemoryPolicy, Run, Scheduler};
use pim_trace::window::WindowedTrace;
use pim_workloads::{windowed, Benchmark, DataSpace};

/// The paper's experimental setup.
#[derive(Debug, Clone, Copy)]
pub struct PaperConfig {
    /// Processor array (the paper uses 4×4 everywhere).
    pub grid: Grid,
    /// Data matrix sizes tested per benchmark.
    pub sizes: [u32; 3],
    /// Steps bucketed per execution window.
    pub steps_per_window: usize,
    /// Memory rule ("twice more than the minimum memory size").
    pub memory: MemoryPolicy,
    /// Workload seed (CODE kernel).
    pub seed: u64,
}

/// The configuration matching the paper's tables: 4×4 array, sizes
/// 8/16/32, two steps per window, memory = 2× minimum.
pub fn paper_config() -> PaperConfig {
    PaperConfig {
        grid: Grid::new(4, 4),
        sizes: [8, 16, 32],
        steps_per_window: 2,
        memory: MemoryPolicy::ScaledMinimum { factor: 2 },
        seed: 1998,
    }
}

/// One row of a paper-style table.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark label ("1".."5").
    pub bench: &'static str,
    /// Data size (`n × n`).
    pub size: u32,
    /// Straight-forward baseline cost.
    pub sf: u64,
    /// `(scheduler name, cost, % improvement)` per reported column.
    pub entries: Vec<(&'static str, u64, f64)>,
}

/// Generate the trace for one (benchmark, size) cell of the tables.
pub fn paper_trace(cfg: &PaperConfig, bench: Benchmark, size: u32) -> (WindowedTrace, DataSpace) {
    windowed(bench, cfg.grid, size, cfg.steps_per_window, cfg.seed)
}

/// Run one table row: the baseline plus each registered scheduler. One
/// [`Run`] (and therefore one cost cache) serves the whole row.
pub fn run_comparison(
    cfg: &PaperConfig,
    bench: Benchmark,
    size: u32,
    schedulers: &[&dyn Scheduler],
) -> ComparisonRow {
    let (trace, space) = paper_trace(cfg, bench, size);
    let sf = space
        .straightforward(&trace, Layout::RowWise)
        .evaluate(&trace)
        .total();
    let mut run = Run::new(&trace).policy(cfg.memory);
    let entries = schedulers
        .iter()
        .map(|&s| {
            let sched = run
                .run(s)
                .unwrap_or_else(|e| panic!("table configuration infeasible: {e}"));
            let cost = sched.evaluate(&trace).total();
            (
                s.name(),
                cost,
                pim_sched::schedule::improvement_pct(sf, cost),
            )
        })
        .collect();
    ComparisonRow {
        bench: bench.label(),
        size,
        sf,
        entries,
    }
}

/// Run a full table (every paper benchmark × every size).
pub fn run_table(cfg: &PaperConfig, schedulers: &[&dyn Scheduler]) -> Vec<ComparisonRow> {
    let mut rows = Vec::new();
    for bench in Benchmark::paper_set() {
        for &size in &cfg.sizes {
            rows.push(run_comparison(cfg, bench, size, schedulers));
        }
    }
    rows
}

/// Mean percentage improvement of column `idx` across rows.
pub fn mean_improvement(rows: &[ComparisonRow], idx: usize) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.entries[idx].2).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_row_has_sane_shape() {
        let cfg = PaperConfig {
            sizes: [8, 8, 8],
            ..paper_config()
        };
        let row = run_comparison(
            &cfg,
            Benchmark::Lu,
            8,
            &pim_sched::registry::schedulers(&["scds", "gomcds"]),
        );
        assert_eq!(row.bench, "1");
        assert!(row.sf > 0);
        assert_eq!(row.entries.len(), 2);
        // GOMCDS beats SCDS and the baseline on LU
        assert!(row.entries[1].1 <= row.entries[0].1);
        assert!(row.entries[1].1 <= row.sf);
    }

    #[test]
    fn mean_improvement_math() {
        let rows = vec![
            ComparisonRow {
                bench: "1",
                size: 8,
                sf: 100,
                entries: vec![("SCDS", 80, 20.0)],
            },
            ComparisonRow {
                bench: "2",
                size: 8,
                sf: 100,
                entries: vec![("SCDS", 60, 40.0)],
            },
        ];
        assert_eq!(mean_improvement(&rows, 0), 30.0);
        assert_eq!(mean_improvement(&[], 0), 0.0);
    }
}
