//! Synthetic high-contention windows for the cycle-simulator benches.
//!
//! The `cycle_scaling` Criterion group and `report_all`'s
//! `BENCH_cycle.json` emission must time the event-driven simulator and
//! its brute-force oracle on the *same* message set, so the generator
//! lives here rather than in either binary.

use pim_array::grid::{Grid, ProcId};
use pim_sim::message::{Message, MessageKind};
use pim_trace::ids::DataId;

/// An all-to-all-mirror window: processor `i` sends `volume` flits to
/// processor `n − 1 − i` (the odd grid's center talks to itself and is
/// skipped). Every message crosses the middle of the mesh, so the x-y
/// routes pile onto the central links — the worst-case contention shape
/// for a fixed per-message volume, and the one where the oracle's
/// cycle-by-cycle scan is most expensive.
pub fn reversal_window(grid: &Grid, volume: u32) -> Vec<Message> {
    let n = grid.num_procs() as u32;
    (0..n)
        .filter(|&p| p != n - 1 - p)
        .map(|p| Message {
            src: ProcId(p),
            dst: ProcId(n - 1 - p),
            volume,
            data: DataId(p),
            window: 0,
            kind: MessageKind::Fetch,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_covers_every_proc_once() {
        let g = Grid::new(4, 4);
        let msgs = reversal_window(&g, 8);
        assert_eq!(msgs.len(), 16);
        assert!(msgs.iter().all(|m| !m.is_local() && m.volume == 8));
    }

    #[test]
    fn odd_grid_skips_the_center() {
        let g = Grid::new(3, 3);
        let msgs = reversal_window(&g, 2);
        assert_eq!(msgs.len(), 8, "the center proc pairs with itself");
    }
}
