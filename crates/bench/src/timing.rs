//! Shared wall-clock measurement conventions for the report binaries.
//!
//! Every `report_*` binary used to carry its own copy of the same two
//! idioms; they live here once so the conventions cannot drift:
//!
//! * [`bench_ns`] — warmup + **minimum**-of-reps timing. The minimum is
//!   the noise-robust statistic on a shared box: scheduler preemption and
//!   cache pollution only ever add time, so the best observation is the
//!   closest to the true cost — means let one preempted run flip an
//!   optimized-vs-reference comparison.
//! * [`warn_if_slower`] — losing rows are loud on stderr, not buried in
//!   the JSON.

use std::hint::black_box;
use std::time::Instant;

/// Best (minimum) wall time of `f` in nanoseconds over `reps` timed runs
/// (after one warmup run), together with the last result.
pub fn bench_ns<R>(reps: u32, mut f: impl FnMut() -> R) -> (u128, R) {
    let mut out = black_box(f());
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        out = black_box(f());
        best = best.min(start.elapsed().as_nanos());
    }
    (best, out)
}

/// Warn on stderr when a measured speedup dips below 1 — the optimized
/// path lost to its reference. `what` names the row, e.g.
/// `"SCDS on benchmark 3 size 16: cached path"`.
pub fn warn_if_slower(what: &str, speedup: f64) {
    if speedup < 1.0 {
        eprintln!("warning: {what} slower than the reference (speedup {speedup:.3})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ns_returns_result_and_min() {
        let mut calls = 0u32;
        let (ns, out) = bench_ns(3, || {
            calls += 1;
            calls
        });
        // 1 warmup + 3 timed.
        assert_eq!(calls, 4);
        assert_eq!(out, 4);
        assert!(ns < u128::MAX);
    }

    #[test]
    fn bench_ns_zero_reps_still_warms_up() {
        let (ns, out) = bench_ns(0, || 7);
        assert_eq!(out, 7);
        assert_eq!(ns, u128::MAX);
    }
}
