//! Shared wall-clock measurement conventions for the report binaries.
//!
//! Every `report_*` binary used to carry its own copy of the same two
//! idioms; they live here once so the conventions cannot drift:
//!
//! * [`bench_ns`] — warmup + **minimum**-of-reps timing. The minimum is
//!   the noise-robust statistic on a shared box: scheduler preemption and
//!   cache pollution only ever add time, so the best observation is the
//!   closest to the true cost — means let one preempted run flip an
//!   optimized-vs-reference comparison.
//! * [`warn_if_slower`] — losing rows are loud on stderr, not buried in
//!   the JSON.

use std::hint::black_box;
use std::time::Instant;

/// Best (minimum) wall time of `f` in nanoseconds over `reps` timed runs
/// (after one warmup run), together with the last result.
///
/// `reps == 0` falls back to the timed warmup run: returning a `u128::MAX`
/// sentinel (as this once did) silently poisons every downstream
/// `reference_ns / optimized_ns` division into a ~0 "speedup" instead of
/// failing loudly, and a caller passing a computed rep count of zero
/// almost certainly still wants *a* measurement.
pub fn bench_ns<R>(reps: u32, mut f: impl FnMut() -> R) -> (u128, R) {
    let warmup_start = Instant::now();
    let mut out = black_box(f());
    if reps == 0 {
        return (warmup_start.elapsed().as_nanos(), out);
    }
    let mut best = u128::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        out = black_box(f());
        best = best.min(start.elapsed().as_nanos());
    }
    (best, out)
}

/// Peak resident set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
///
/// `VmHWM` is a process-wide high-water mark: it only ever rises, so a
/// reading reflects the hungriest phase *so far*, not the current working
/// set. Report binaries that compare phases must isolate each phase in its
/// own process (see `report_stream`).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Warn on stderr when a measured speedup dips below 1 — the optimized
/// path lost to its reference. `what` names the row, e.g.
/// `"SCDS on benchmark 3 size 16: cached path"`.
pub fn warn_if_slower(what: &str, speedup: f64) {
    if speedup < 1.0 {
        eprintln!("warning: {what} slower than the reference (speedup {speedup:.3})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ns_returns_result_and_min() {
        let mut calls = 0u32;
        let (ns, out) = bench_ns(3, || {
            calls += 1;
            calls
        });
        // 1 warmup + 3 timed.
        assert_eq!(calls, 4);
        assert_eq!(out, 4);
        assert!(ns < u128::MAX);
    }

    #[test]
    fn bench_ns_zero_reps_times_the_warmup() {
        // Regression: this used to return the u128::MAX sentinel, which
        // poisoned downstream speedup divisions into ~0 instead of
        // failing loudly.
        let mut calls = 0u32;
        let (ns, out) = bench_ns(0, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 1); // warmup only, and it is the measurement
        assert_eq!(out, 1);
        assert!(ns < u128::MAX);
    }
}
