//! Big-instance scaling harness: synthetic flat traces (millions of data)
//! plus the measurement rows behind `BENCH_scale.json`.
//!
//! The generator emits records datum-major with spatial locality (each
//! datum's references cluster around a home processor), so instances look
//! like the paper's workloads rather than uniform noise, and the
//! `FlatTrace::from_records` sort sees nearly-sorted input.

use pim_array::grid::Grid;
use pim_sched::{flat_lomcds, flat_scds, flat_total_cost, MemoryPolicy, Run};
use pim_trace::flat::{FlatRecord, FlatTrace};
use pim_trace::ids::DataId;
use std::time::Instant;

/// Deterministic xorshift64* stream — the same generator everywhere keeps
/// `BENCH_scale.json` reproducible across runs and machines.
#[derive(Debug, Clone)]
pub struct Rng64(u64);

impl Rng64 {
    /// Seeded stream; `seed` 0 is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Rng64 {
        Rng64(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound` 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Synthetic big-trace instance: `num_data` data over `num_windows`
/// windows on `grid`, ~8 references per datum clustered around a per-datum
/// home processor (offsets decay within a radius-2 box; counts 1–4).
pub fn synthetic_flat(grid: Grid, num_windows: usize, num_data: usize, seed: u64) -> FlatTrace {
    let records = synthetic_records(grid, num_windows, num_data, seed);
    FlatTrace::from_records(grid, num_windows, num_data, records)
        .expect("generator emits only in-range records")
}

/// The raw record stream behind [`synthetic_flat`]; exposed so callers can
/// time [`FlatTrace::from_records`] separately from generation.
pub fn synthetic_records(
    grid: Grid,
    num_windows: usize,
    num_data: usize,
    seed: u64,
) -> Vec<FlatRecord> {
    let mut rng = Rng64::new(seed);
    let (w, h) = (grid.width() as i64, grid.height() as i64);
    let mut records = Vec::with_capacity(num_data * 8);
    for d in 0..num_data {
        let datum = DataId(d as u32);
        let hx = rng.below(w as u64) as i64;
        let hy = rng.below(h as u64) as i64;
        // 4..12 refs per datum, mean 8.
        let nrefs = 4 + rng.below(9);
        for _ in 0..nrefs {
            // Offsets in [-2, 2] with mass concentrated near 0.
            let dx =
                (rng.below(5) as i64 - 2) * (rng.below(3) == 0) as i64 + (rng.below(3) as i64 - 1);
            let dy =
                (rng.below(5) as i64 - 2) * (rng.below(3) == 0) as i64 + (rng.below(3) as i64 - 1);
            let x = (hx + dx).clamp(0, w - 1) as u32;
            let y = (hy + dy).clamp(0, h - 1) as u32;
            records.push(FlatRecord {
                datum,
                window: rng.below(num_windows as u64) as u32,
                proc: grid.proc_xy(x, y),
                count: 1 + rng.below(4) as u32,
            });
        }
    }
    records
}

/// One method's timings within a [`ScaleRow`].
#[derive(Debug, Clone)]
pub struct MethodScale {
    /// Registry name of the method (`scds`, `lomcds`).
    pub method: &'static str,
    /// Best (min-of-reps) wall time of the flat fast path, nanoseconds.
    pub flat_ns: u128,
    /// Total cost of the flat schedule (reference + movement).
    pub total_cost: u64,
    /// Wall time of the classic nested-trace path, when measured.
    pub exact_ns: Option<u128>,
    /// Total cost of the classic schedule, when measured (must equal
    /// `total_cost` — asserted by [`scale_row`]).
    pub exact_cost: Option<u64>,
}

impl MethodScale {
    /// `exact_ns / flat_ns` when the exact path was measured.
    pub fn speedup(&self) -> Option<f64> {
        self.exact_ns.map(|e| e as f64 / self.flat_ns.max(1) as f64)
    }
}

/// One `BENCH_scale.json` row: a (grid, data count) instance.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Square grid side length.
    pub side: u32,
    /// Number of data in the instance.
    pub num_data: usize,
    /// Number of execution windows.
    pub num_windows: usize,
    /// Aggregated reference runs in the flat trace.
    pub num_refs: usize,
    /// Wall time of `FlatTrace::from_records` (CSR build), nanoseconds.
    pub build_ns: u128,
    /// Per-method timings.
    pub methods: Vec<MethodScale>,
    /// Process-wide peak-RSS high-water mark (`VmHWM`) sampled after this
    /// row, kilobytes — monotone across rows within one report run; 0 when
    /// unavailable.
    pub peak_rss_kb: u64,
}

/// Number of execution windows used by every scale instance.
pub const SCALE_WINDOWS: usize = 32;

/// Generator seed used by every scale instance.
pub const SCALE_SEED: u64 = 1998;

/// Build and measure one scale instance. `parity` additionally runs the
/// classic schedulers on the equivalent nested trace and asserts the total
/// costs are identical; `reps` is the timed-repetition count for the flat
/// path, reported min-of-reps (the exact path always runs once — it is the
/// slow side).
pub fn scale_row(side: u32, num_data: usize, parity: bool, reps: u32) -> ScaleRow {
    let grid = Grid::new(side, side);
    let pool = pim_par::Pool::auto();
    let records = synthetic_records(grid, SCALE_WINDOWS, num_data, SCALE_SEED);

    let start = Instant::now();
    let flat = FlatTrace::from_records(grid, SCALE_WINDOWS, num_data, records)
        .expect("generator emits only in-range records");
    let build_ns = start.elapsed().as_nanos();

    let windowed = parity.then(|| flat.to_windowed());
    let policy = MemoryPolicy::Unbounded;
    let mut methods = Vec::new();
    for method in ["scds", "lomcds"] {
        let run_flat = || match method {
            "scds" => flat_scds(&flat, policy, pool).expect("unbounded cannot exhaust"),
            _ => flat_lomcds(&flat, policy, pool).expect("unbounded cannot exhaust"),
        };
        // Min-of-reps (not mean): see `crate::timing` for the rationale.
        let (flat_ns, sched) = crate::timing::bench_ns(reps.max(1), run_flat);
        let total_cost = flat_total_cost(&flat, &sched).total();

        let (exact_ns, exact_cost) = match &windowed {
            Some(trace) => {
                let start = Instant::now();
                let exact = Run::new(trace)
                    .policy(policy)
                    .run_named(method)
                    .expect("unbounded cannot exhaust");
                let exact_ns = start.elapsed().as_nanos();
                let exact_cost = exact.evaluate(trace).total();
                assert_eq!(
                    exact_cost, total_cost,
                    "flat/{method} diverged from the exact path at {side}x{side} n={num_data}"
                );
                (Some(exact_ns), Some(exact_cost))
            }
            None => (None, None),
        };
        methods.push(MethodScale {
            method: if method == "scds" { "scds" } else { "lomcds" },
            flat_ns,
            total_cost,
            exact_ns,
            exact_cost,
        });
    }

    ScaleRow {
        side,
        num_data,
        num_windows: SCALE_WINDOWS,
        num_refs: flat.num_refs(),
        build_ns,
        methods,
        peak_rss_kb: crate::timing::peak_rss_kb().unwrap_or(0),
    }
}

/// Render rows as the `BENCH_scale.json` document (hand-rolled JSON; the
/// vendored serde shim has no serializer and the schema is flat).
pub fn render_json(rows: &[ScaleRow]) -> String {
    use std::fmt::Write as _;
    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"config\": {{\"windows\": {SCALE_WINDOWS}, \"seed\": {SCALE_SEED}, \
         \"memory\": \"unbounded\", \"refs_per_datum_mean\": 8}},\n  \"rows\": [\n"
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    {{\"grid\": \"{0}x{0}\", \"num_data\": {1}, \"num_windows\": {2}, \
             \"num_refs\": {3}, \"build_ns\": {4}, \"peak_rss_kb\": {5}, \"methods\": [",
            row.side, row.num_data, row.num_windows, row.num_refs, row.build_ns, row.peak_rss_kb
        );
        for (j, m) in row.methods.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            let _ = write!(
                json,
                "{{\"method\": \"{}\", \"flat_ns\": {}, \"total_cost\": {}",
                m.method, m.flat_ns, m.total_cost
            );
            if let (Some(e), Some(c), Some(s)) = (m.exact_ns, m.exact_cost, m.speedup()) {
                let _ = write!(
                    json,
                    ", \"exact_ns\": {e}, \"exact_cost\": {c}, \"speedup\": {s:.3}"
                );
            }
            json.push('}');
        }
        json.push_str("]}");
    }
    json.push_str("\n  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_local() {
        let grid = Grid::new(8, 8);
        let a = synthetic_flat(grid, 4, 100, 7);
        let b = synthetic_flat(grid, 4, 100, 7);
        assert_eq!(a.num_refs(), b.num_refs());
        assert_eq!(a.total_volume(), b.total_volume());
        assert!(a.num_refs() >= 100 * 3, "every datum references something");
        // Locality: each datum's refs stay within an L1 radius of ~6 of
        // each other (home box ±3 per axis).
        for d in 0..100 {
            let span = a.span(DataId(d));
            let (x0, y0) = (span[0].x as i64, span[0].y as i64);
            for r in span {
                assert!((r.x as i64 - x0).abs() + (r.y as i64 - y0).abs() <= 12);
            }
        }
    }

    #[test]
    fn scale_row_parity_holds_on_small_instance() {
        let row = scale_row(8, 500, true, 1);
        assert_eq!(row.methods.len(), 2);
        for m in &row.methods {
            assert_eq!(m.exact_cost, Some(m.total_cost));
            assert!(m.speedup().is_some());
        }
        let json = render_json(&[row]);
        assert!(json.contains("\"grid\": \"8x8\""));
        assert!(json.contains("\"speedup\""));
    }
}
