//! Ablation C: memory pressure vs total communication cost.
//!
//! The tables fix per-processor memory at twice the balanced minimum; this
//! sweep varies the factor from 1× (no slack — every processor exactly
//! full, the processor list constantly overrides optimal centers) to 4×
//! and unbounded, showing how much headroom the schedulers need.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,memory,sf,scds,lomcds,gomcds,grouped");
    } else {
        println!("Memory-pressure sweep (4x4 array, {n}x{n} data, 2 steps/window)\n");
        println!(
            "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "bench", "memory", "S.F.", "SCDS", "LOMCDS", "GOMCDS", "Grouped"
        );
    }

    for bench in Benchmark::paper_set() {
        let (trace, space) = windowed(bench, grid, n, 2, 1998);
        let sf = space
            .straightforward(&trace, Layout::RowWise)
            .evaluate(&trace)
            .total();
        let policies: [(String, MemoryPolicy); 5] = [
            ("1x".into(), MemoryPolicy::ScaledMinimum { factor: 1 }),
            ("2x".into(), MemoryPolicy::ScaledMinimum { factor: 2 }),
            ("3x".into(), MemoryPolicy::ScaledMinimum { factor: 3 }),
            ("4x".into(), MemoryPolicy::ScaledMinimum { factor: 4 }),
            ("unbounded".into(), MemoryPolicy::Unbounded),
        ];
        for (label, policy) in policies {
            let cost = |m| schedule(m, &trace, policy).evaluate(&trace).total();
            let row = (
                cost(Method::Scds),
                cost(Method::Lomcds),
                cost(Method::Gomcds),
                cost(Method::GroupedLocal),
            );
            if csv {
                println!(
                    "{},{},{},{},{},{},{}",
                    bench.label(),
                    label,
                    sf,
                    row.0,
                    row.1,
                    row.2,
                    row.3
                );
            } else {
                println!(
                    "{:<6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    bench.label(),
                    label,
                    sf,
                    row.0,
                    row.1,
                    row.2,
                    row.3
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
