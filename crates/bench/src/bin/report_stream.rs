//! Out-of-core streaming report: packs a big synthetic instance to the
//! `.pimb` binary format, schedules it end-to-end through the streaming
//! pipeline and through the resident in-memory pipeline, and writes the
//! comparison (wall time, cost parity, peak RSS, binary-vs-text load
//! speed) to `BENCH_stream.json`.
//!
//! Peak RSS (`VmHWM`) is a process-wide high-water mark, so each measured
//! phase runs in its own child process: the binary re-executes itself
//! with `--phase ...` and the parent folds the children's `phase-result`
//! lines into the document (see `pim_bench::stream`).
//!
//! Flags:
//!
//! * `--smoke` — 16×16 × 50k instance (the CI gate) instead of the full
//!   64×64 × 10M run;
//! * `--out PATH` — write the JSON somewhere other than
//!   `./BENCH_stream.json`;
//! * `--phase NAME ...` — internal: run one measured phase and print its
//!   result line.

use pim_bench::stream::{
    inmem_phase, load_phase, pack_phase, parse_phase_line, render_json, render_phase_line,
    stream_phase, LoadStats, PackStats, PhaseStats, StreamRow,
};
use pim_bench::timing::warn_if_slower;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--phase") {
        run_phase(&args[1..]);
        return;
    }

    let mut out = String::from("BENCH_stream.json");
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke, --out PATH");
                std::process::exit(2);
            }
        }
    }

    // Full run: the acceptance instance at the default chunk size.
    // Smoke: small enough for CI but chunked so even its 50k instance
    // walks the same multi-chunk machinery (8k data per chunk).
    let (side, num_data, load_data, load_reps, chunk) = if smoke {
        (16u32, 50_000usize, 50_000usize, 1u32, 8_192usize)
    } else {
        (64, 10_000_000, 1_000_000, 3, 0)
    };

    let dir = std::env::temp_dir().join(format!("pim_stream_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("mkdir {}: {e}", dir.display()));
    let pimb = dir.join("instance.pimb");

    let pack = parse_pack(&child(&[
        "--phase",
        "pack",
        "--path",
        pimb.to_str().expect("temp path is utf-8"),
        "--side",
        &side.to_string(),
        "--data",
        &num_data.to_string(),
    ]));
    println!(
        "packed {side}x{side} n={num_data}: {} refs, {:.1} MB",
        pack.num_refs,
        pack.bytes as f64 / 1e6
    );

    let mut rows = Vec::new();
    for method in ["scds", "lomcds"] {
        let stream = parse_phase(&child(&[
            "--phase",
            "stream",
            "--path",
            pimb.to_str().expect("temp path is utf-8"),
            "--method",
            method,
            "--chunk",
            &chunk.to_string(),
        ]));
        let inmem = parse_phase(&child(&[
            "--phase",
            "inmem",
            "--path",
            pimb.to_str().expect("temp path is utf-8"),
            "--method",
            method,
        ]));
        assert_eq!(
            stream.cost, inmem.cost,
            "{method}: streamed cost diverged from the in-memory pipeline"
        );
        let row = StreamRow {
            method: if method == "scds" { "scds" } else { "lomcds" },
            stream,
            inmem,
        };
        report_row(&row);
        rows.push(row);
    }

    let load = parse_load(&child(&[
        "--phase",
        "load",
        "--dir",
        dir.to_str().expect("temp path is utf-8"),
        "--side",
        &side.to_string(),
        "--data",
        &load_data.to_string(),
        "--reps",
        &load_reps.to_string(),
    ]));
    println!(
        "load n={}: binary {:.1} ms vs text {:.1} ms ({:.1}x)",
        load.num_data,
        load.binary_ns as f64 / 1e6,
        load.text_ns as f64 / 1e6,
        load.speedup()
    );
    if load.speedup() < 10.0 {
        eprintln!(
            "warning: binary load only {:.1}x faster than the text parse (target is 10x)",
            load.speedup()
        );
    }
    warn_if_slower("binary load vs text parse", load.speedup());

    let json = render_json(side, num_data, chunk, pack, load, &rows);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn report_row(row: &StreamRow) {
    let ms = |ns: u128| ns as f64 / 1e6;
    println!(
        "{}: stream {:.1} ms over {} chunks (peak RSS {} MB) vs in-memory {:.1} ms \
         (peak RSS {} MB), rss ratio {:.3}, cost parity ok",
        row.method,
        ms(row.stream.ns),
        row.stream.num_chunks,
        row.stream.peak_rss_kb / 1024,
        ms(row.inmem.ns),
        row.inmem.peak_rss_kb / 1024,
        row.rss_ratio(),
    );
    if row.rss_ratio() > 0.25 {
        eprintln!(
            "warning: {}: streaming peak RSS is {:.1}% of the in-memory pipeline's \
             (bounded-memory target is 25%)",
            row.method,
            row.rss_ratio() * 100.0
        );
    }
}

/// Run one measured phase in this process and print its result line.
fn run_phase(args: &[String]) {
    let mut path: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut method: Option<String> = None;
    let mut side = 0u32;
    let mut data = 0usize;
    let mut reps = 1u32;
    let mut chunk = 0usize;
    let mut it = args.iter();
    let phase = it.next().expect("--phase needs a name").clone();
    while let Some(a) = it.next() {
        let val = it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--path" => path = Some(PathBuf::from(val)),
            "--dir" => dir = Some(PathBuf::from(val)),
            "--method" => method = Some(val.clone()),
            "--side" => side = val.parse().expect("--side"),
            "--data" => data = val.parse().expect("--data"),
            "--reps" => reps = val.parse().expect("--reps"),
            "--chunk" => chunk = val.parse().expect("--chunk"),
            other => panic!("unknown phase flag {other}"),
        }
    }
    let need = |p: Option<PathBuf>, flag: &str| p.unwrap_or_else(|| panic!("phase needs {flag}"));
    let line = match phase.as_str() {
        "pack" => {
            let s = pack_phase(&need(path, "--path"), side, data);
            render_phase_line(&[
                ("bytes", s.bytes.to_string()),
                ("num_refs", s.num_refs.to_string()),
            ])
        }
        "stream" | "inmem" => {
            let m = method.expect("phase needs --method");
            let p = need(path, "--path");
            let s = if phase == "stream" {
                stream_phase(&p, &m, chunk)
            } else {
                inmem_phase(&p, &m)
            };
            render_phase_line(&[
                ("cost", s.cost.to_string()),
                ("ns", s.ns.to_string()),
                ("rss_kb", s.peak_rss_kb.to_string()),
                ("chunks", s.num_chunks.to_string()),
            ])
        }
        "load" => {
            let s = load_phase(&need(dir, "--dir"), side, data, reps);
            render_phase_line(&[
                ("num_data", s.num_data.to_string()),
                ("binary_ns", s.binary_ns.to_string()),
                ("text_ns", s.text_ns.to_string()),
            ])
        }
        other => panic!("unknown phase {other}"),
    };
    println!("{line}");
}

/// Re-execute this binary with `args`, inherit stderr, capture stdout,
/// and return the parsed `phase-result` map.
fn child(args: &[&str]) -> BTreeMap<String, String> {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(&exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {}: {e}", exe.display()));
    eprint!("{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        panic!("phase {args:?} failed ({}): {stdout}", out.status);
    }
    parse_phase_line(&stdout)
        .unwrap_or_else(|| panic!("phase {args:?} printed no result line: {stdout}"))
}

fn req(map: &BTreeMap<String, String>, key: &str) -> u128 {
    map.get(key)
        .unwrap_or_else(|| panic!("phase result missing {key}: {map:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("phase result {key} not a number: {map:?}"))
}

fn parse_pack(map: &BTreeMap<String, String>) -> PackStats {
    PackStats {
        bytes: req(map, "bytes") as u64,
        num_refs: req(map, "num_refs") as usize,
    }
}

fn parse_phase(map: &BTreeMap<String, String>) -> PhaseStats {
    PhaseStats {
        cost: req(map, "cost") as u64,
        ns: req(map, "ns"),
        peak_rss_kb: req(map, "rss_kb") as u64,
        num_chunks: req(map, "chunks") as usize,
    }
}

fn parse_load(map: &BTreeMap<String, String>) -> LoadStats {
    LoadStats {
        num_data: req(map, "num_data") as usize,
        binary_ns: req(map, "binary_ns"),
        text_ns: req(map, "text_ns"),
    }
}
