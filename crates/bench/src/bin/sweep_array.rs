//! Ablation D: processor-array size vs total communication cost and
//! improvement. Larger arrays mean longer distances and more placement
//! freedom; this sweep shows how the schedulers' advantage scales from a
//! 2×2 array to 16×16 (the PetaFlop design point contemplated far larger
//! PIM meshes than the paper's 4×4 testbed).

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::schedule::improvement_pct;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let n = 16;
    let csv = std::env::args().any(|a| a == "--csv");
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };

    if csv {
        println!("bench,grid,sf,gomcds,improvement_pct");
    } else {
        println!("Array-size sweep ({n}x{n} data, 2 steps/window, memory 2x)\n");
        println!(
            "{:<6} {:>7} {:>12} {:>12} {:>8}",
            "bench", "grid", "S.F.", "GOMCDS", "%"
        );
    }

    for bench in [Benchmark::Lu, Benchmark::MatMul] {
        for dim in [2u32, 4, 8, 16] {
            let grid = Grid::new(dim, dim);
            let (trace, space) = windowed(bench, grid, n, 2, 1998);
            let sf = space
                .straightforward(&trace, Layout::RowWise)
                .evaluate(&trace)
                .total();
            let go = schedule(Method::Gomcds, &trace, memory)
                .evaluate(&trace)
                .total();
            let pct = improvement_pct(sf, go);
            if csv {
                println!("{},{dim}x{dim},{sf},{go},{pct:.2}", bench.label());
            } else {
                println!(
                    "{:<6} {:>4}x{:<2} {:>12} {:>12} {:>7.1}%",
                    bench.label(),
                    dim,
                    dim,
                    sf,
                    go,
                    pct
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
