//! Ablation H: the read-replication extension (two copies per datum) vs
//! single-copy GOMCDS, per benchmark and memory budget.
//!
//! The paper restricts the system to one copy per datum; this experiment
//! quantifies what the second copy buys and how the gain depends on memory
//! slack (secondaries only materialize into free slots).

use pim_array::grid::Grid;
use pim_sched::kcopy::kcopy_schedule;
use pim_sched::replicate::replicated_schedule;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    println!("Replication ablation ({n}x{n} data, 4x4 array)\n");
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>8} {:>12}",
        "bench", "memory", "1-copy", "2-copy", "3-copy", "gain", "secondaries"
    );

    for bench in Benchmark::paper_set() {
        for (label, policy) in [
            ("2x", MemoryPolicy::ScaledMinimum { factor: 2 }),
            ("4x", MemoryPolicy::ScaledMinimum { factor: 4 }),
            ("unbounded", MemoryPolicy::Unbounded),
        ] {
            let (trace, _) = windowed(bench, grid, n, 2, 1998);
            let spec = policy.resolve(&trace);
            let single = schedule(Method::Gomcds, &trace, policy)
                .evaluate(&trace)
                .total();
            let repl = replicated_schedule(&trace, spec);
            let dual = repl.evaluate(&trace).total();
            let triple = kcopy_schedule(&trace, spec, 3).evaluate(&trace).total();
            println!(
                "{:<6} {:>10} {:>12} {:>12} {:>12} {:>7.1}% {:>12}",
                bench.label(),
                label,
                single,
                dual,
                triple,
                (single as f64 - dual as f64) / single as f64 * 100.0,
                repl.secondary_slots()
            );
        }
        println!();
    }
}
