//! Regenerates **Table 2** of the paper: total communication cost *after*
//! the execution-window optimization (Algorithm 3, grouping decided with
//! LOMCDS-computed centers), same setup as Table 1.
//!
//! Columns: SCDS is unchanged by grouping (a single center is insensitive
//! to window boundaries) and is reported for reference; LOMCDS and GOMCDS
//! run on the grouped windows.

use pim_bench::experiments::{paper_config, run_table};
use pim_bench::table;
use pim_sched::registry::schedulers;

fn main() {
    let cfg = paper_config();
    let rows = run_table(
        &cfg,
        &schedulers(&["scds", "grouped-lomcds", "grouped-gomcds"]),
    );
    if table::want_csv() {
        print!("{}", table::render_csv(&rows));
    } else {
        print!(
            "{}",
            table::render(
                "Table 2: total communication cost after grouping (Algorithm 3 with LOMCDS centers)",
                &rows
            )
        );
    }
}
