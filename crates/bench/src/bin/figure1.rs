//! Regenerates **Figure 1 / Section 3.3** of the paper: the worked example
//! of the three schedulers on one datum `D` over a 4×4 array and four
//! execution windows. Prints the per-window reference counts, each
//! scheduler's center sequence and total cost, and checks them against the
//! centers stated in the paper's prose.

use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::ids::DataId;
use pim_workloads::paper_example::{expectation, figure1_trace, grid};

fn main() {
    let (trace, _) = figure1_trace();
    let g = grid();
    let exp = expectation();

    println!("Figure 1: processor references for data D (4x4 array, 4 windows)\n");
    for w in 0..trace.num_windows() {
        println!("execution window {w}:");
        for y in 0..g.height() {
            let mut line = String::from("  ");
            for x in 0..g.width() {
                let v = trace.refs(DataId(0)).window(w).volume_at(g.proc_xy(x, y));
                line.push_str(&format!("{v:>3}"));
            }
            println!("{line}");
        }
    }
    println!();

    for (method, name) in [
        (Method::Scds, "SCDS"),
        (Method::Lomcds, "LOMCDS"),
        (Method::Gomcds, "GOMCDS"),
    ] {
        let s = schedule(method, &trace, MemoryPolicy::Unbounded);
        let centers: Vec<String> = (0..trace.num_windows())
            .map(|w| {
                let p = g.point_of(s.center(DataId(0), w));
                format!("({},{})", p.x, p.y)
            })
            .collect();
        println!(
            "{name:<7} centers: {}  total cost: {}",
            centers.join(" "),
            s.evaluate(&trace).total()
        );
    }

    println!(
        "\npaper prose: SCDS center (1,0); LOMCDS (1,0) (1,3) (1,0) (1,1); \
         GOMCDS (1,0) (1,0) (1,0) (1,1)"
    );
    println!(
        "reconstructed costs: SCDS {}, LOMCDS {}, GOMCDS {} (GOMCDS < LOMCDS < SCDS: {})",
        exp.scds_cost,
        exp.lomcds_cost,
        exp.gomcds_cost,
        exp.gomcds_cost < exp.lomcds_cost && exp.lomcds_cost < exp.scds_cost
    );
}
