//! Ablation B: execution-window size vs total communication cost.
//!
//! Section 4 of the paper motivates window grouping with the observation
//! that windows that are too small make inter-center movement dominate.
//! This sweep quantifies it: for each benchmark, vary the number of raw
//! steps bucketed per window and report each scheduler's total cost.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let seed = 1998;
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,steps_per_window,windows,sf,scds,lomcds,gomcds,grouped");
    } else {
        println!("Window-size sweep: benchmark x steps/window (4x4 array, {n}x{n} data)\n");
        println!(
            "{:<6} {:>9} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "bench", "steps/win", "windows", "S.F.", "SCDS", "LOMCDS", "GOMCDS", "Grouped"
        );
    }

    for bench in Benchmark::paper_set() {
        for steps in [1usize, 2, 4, 8, 16, 32] {
            let (trace, space) = windowed(bench, grid, n, steps, seed);
            let sf = space
                .straightforward(&trace, Layout::RowWise)
                .evaluate(&trace)
                .total();
            let cost = |m| schedule(m, &trace, memory).evaluate(&trace).total();
            let (scds, lomcds, gomcds, grouped) = (
                cost(Method::Scds),
                cost(Method::Lomcds),
                cost(Method::Gomcds),
                cost(Method::GroupedLocal),
            );
            if csv {
                println!(
                    "{},{},{},{},{},{},{},{}",
                    bench.label(),
                    steps,
                    trace.num_windows(),
                    sf,
                    scds,
                    lomcds,
                    gomcds,
                    grouped
                );
            } else {
                println!(
                    "{:<6} {:>9} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    bench.label(),
                    steps,
                    trace.num_windows(),
                    sf,
                    scds,
                    lomcds,
                    gomcds,
                    grouped
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
