//! Ablation I: online scheduling vs the clairvoyant offline optimum.
//!
//! The paper's run-time data movement is planned offline from the full
//! reference string. A real runtime discovers windows as they execute;
//! this sweep runs the online keep-or-move policy across hysteresis
//! thresholds and reports the competitive gap to offline GOMCDS — showing
//! how much of the paper's gain survives without clairvoyance.

use pim_array::grid::Grid;
use pim_array::memory::MemorySpec;
use pim_sched::online::{online_schedule, OnlinePolicy};
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,threshold,online,offline_gomcds,gap_pct");
    } else {
        println!("Online-vs-offline sweep ({n}x{n} data, 4x4 array, unbounded memory)\n");
        println!(
            "{:<6} {:>10} {:>10} {:>14} {:>8}",
            "bench", "threshold", "online", "offline GOMCDS", "gap"
        );
    }

    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, n, 2, 1998);
        let offline = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded)
            .evaluate(&trace)
            .total();
        for threshold in [0.0f64, 0.5, 1.0, 2.0, 4.0, 1e9] {
            let s = online_schedule(
                &trace,
                OnlinePolicy {
                    threshold,
                    spec: MemorySpec::unbounded(),
                },
            )
            .expect("unbounded policy is always feasible");
            let online = s.evaluate(&trace).total();
            let gap = (online as f64 - offline as f64) / offline as f64 * 100.0;
            let tl = if threshold >= 1e9 {
                "inf".to_string()
            } else {
                format!("{threshold}")
            };
            if csv {
                println!("{},{tl},{online},{offline},{gap:.2}", bench.label());
            } else {
                println!(
                    "{:<6} {:>10} {:>10} {:>14} {:>7.1}%",
                    bench.label(),
                    tl,
                    online,
                    offline,
                    gap
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
