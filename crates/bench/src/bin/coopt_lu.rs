//! Ablation N: co-optimizing the iteration partition with the data
//! schedule (owner-computes fixed point) on LU.
//!
//! The paper optimizes data placement for a *fixed* iteration partition.
//! With an owner-computes rule the two stages feed back into each other;
//! this experiment alternates them to a fixed point and reports the cost
//! per round, quantifying how much the two-stage separation leaves on the
//! table.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::ids::DataId;
use pim_workloads::coopt::lu_owner_computes;
use pim_workloads::lu::{lu_trace, LuParams};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16u32;
    let spw = 2usize;
    let memory = MemoryPolicy::Unbounded;

    println!("LU iteration/data co-optimization ({n}x{n}, 4x4 array, GOMCDS)\n");
    println!("{:<28} {:>10} {:>10}", "round", "total", "vs round 0");

    // Round 0: static block iteration partition (the paper's setup).
    let (steps, space) = lu_trace(grid, LuParams::new(n));
    let mut trace = steps.window_fixed(spw);
    let mut sched = schedule(Method::Gomcds, &trace, memory);
    let round0 = sched.evaluate(&trace).total();
    println!(
        "{:<28} {:>10} {:>9.1}%",
        "0 (static partition)", round0, 0.0
    );
    let sf = space
        .straightforward(&trace, Layout::RowWise)
        .evaluate(&trace)
        .total();

    let mut prev = round0;
    for round in 1..=6 {
        // Regenerate the trace with iterations following the previous
        // round's data placement (owner computes), then reschedule.
        let (steps, _) = lu_owner_computes(grid, n, spw, |d: DataId, w| {
            sched.center(d, w.min(sched.num_windows() - 1))
        });
        trace = steps.window_fixed(spw);
        sched = schedule(Method::Gomcds, &trace, memory);
        let cost = sched.evaluate(&trace).total();
        println!(
            "{:<28} {:>10} {:>9.1}%",
            format!("{round} (owner-computes)"),
            cost,
            (round0 as f64 - cost as f64) / round0 as f64 * 100.0
        );
        if cost == prev {
            println!("{:<28}", format!("fixed point after round {round}"));
            break;
        }
        prev = cost;
    }

    println!(
        "\nbaselines: row-wise S.F. {sf}; two-stage GOMCDS {round0}.\n\
         Letting iterations follow the data removes every write fetch and\n\
         re-centers the reads — cost the two-stage pipeline cannot reach."
    );
}
