//! Big-instance scaling report: times the flat SoA scheduling pipeline
//! (`FlatTrace` build + SCDS + LOMCDS fast paths) from 16×16 grids with
//! 10k data up to 64×64 grids with 1M data, and writes the results to
//! `BENCH_scale.json`.
//!
//! Small instances also run the classic nested-trace schedulers for a
//! cost-parity assertion and a speedup column; at the large sizes the
//! exact path is the thing being escaped, so only the flat path runs.
//!
//! Flags:
//!
//! * `--smoke` — single 16×16 × 50k row with parity (the CI gate);
//! * `--out PATH` — write the JSON somewhere other than
//!   `./BENCH_scale.json`.

use pim_bench::scale::{render_json, scale_row, ScaleRow};
use pim_bench::timing::warn_if_slower;

fn main() {
    let mut out = String::from("BENCH_scale.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke, --out PATH");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<ScaleRow> = Vec::new();
    if smoke {
        rows.push(report(16, 50_000, true, 1));
    } else {
        for side in [16u32, 32, 64] {
            for num_data in [10_000usize, 100_000, 1_000_000] {
                // Parity (classic path) only where the nested representation
                // is affordable: every 10k instance, plus 100k on 16×16 —
                // the acceptance point for the ≥5× speedup.
                let parity = num_data == 10_000 || (num_data == 100_000 && side == 16);
                let reps = if num_data <= 100_000 { 3 } else { 1 };
                rows.push(report(side, num_data, parity, reps));
            }
        }
    }

    let json = render_json(&rows);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}

fn report(side: u32, num_data: usize, parity: bool, reps: u32) -> ScaleRow {
    let row = scale_row(side, num_data, parity, reps);
    let ms = |ns: u128| ns as f64 / 1e6;
    print!(
        "{0}x{0} n={1}: build {2:.1} ms",
        row.side,
        row.num_data,
        ms(row.build_ns)
    );
    for m in &row.methods {
        print!(", {} {:.1} ms", m.method, ms(m.flat_ns));
        if let Some(s) = m.speedup() {
            print!(" ({s:.1}x vs exact, cost parity ok)");
        }
        // Mirror report_all's convention: losing rows are loud on stderr,
        // not buried in the JSON.
        if m.exact_cost.is_some_and(|c| c != m.total_cost) {
            eprintln!(
                "warning: {} at {side}x{side} n={num_data}: flat cost {} differs \
                 from the exact cost {}",
                m.method,
                m.total_cost,
                m.exact_cost.unwrap_or(0),
            );
        }
        if let Some(s) = m.speedup() {
            warn_if_slower(
                &format!("{} at {side}x{side} n={num_data}: flat path", m.method),
                s,
            );
        }
    }
    println!(", peak RSS {} MB", row.peak_rss_kb / 1024);
    row
}
