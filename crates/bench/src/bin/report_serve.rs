//! Daemon load report: closed-loop clients against an in-process
//! `pim-serve` TCP daemon, writing `BENCH_serve.json`.
//!
//! Rows cover the warm (resident-engine cache hit), churn (edit + delta
//! re-solve per request) and cold (engine evicted per rep) mixes at
//! several concurrency levels on the 16×16 × 100k acceptance instance,
//! plus a burst row against a deliberately under-provisioned daemon
//! (1 worker, queue of 2) showing admission control shedding load as
//! typed `overloaded` rejections rather than queueing without bound.
//!
//! The warm row at the acceptance point is checked against the p99 ≤
//! 100 ms bound and the process exits non-zero if it misses, so the
//! committed report can only ever show a passing number.
//!
//! Flags:
//!
//! * `--smoke` — tiny instance, short rows (the CI gate);
//! * `--out PATH` — write the JSON somewhere other than
//!   `./BENCH_serve.json`.

use pim_bench::serve_load::{burst_row, render_json, serve_row, ServeRow};

fn main() {
    let mut out = String::from("BENCH_serve.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke, --out PATH");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<ServeRow> = Vec::new();
    let mut p99_violation = false;
    if smoke {
        for conc in [1, 4] {
            rows.push(report(8, 2_000, "warm", "scds", conc, 25));
        }
        rows.push(report(8, 2_000, "churn", "scds", 2, 5));
        rows.push(report(8, 2_000, "cold", "scds", 1, 3));
    } else {
        for conc in [1, 4, 16] {
            let row = report(16, 100_000, "warm", "scds", conc, 200);
            // Acceptance bound: warm-cache scheduling of a resident
            // 16×16 × 100k trace answers in p99 ≤ 100 ms.
            if row.percentile_us(0.99) > 100_000.0 {
                eprintln!(
                    "FAIL: warm p99 {:.1} us exceeds the 100 ms bound at concurrency {}",
                    row.percentile_us(0.99),
                    row.concurrency
                );
                p99_violation = true;
            }
            rows.push(row);
        }
        for conc in [1, 4] {
            rows.push(report(16, 100_000, "churn", "scds", conc, 10));
        }
        rows.push(report(16, 100_000, "cold", "scds", 1, 5));
    }

    let (burst_data, burst_reps) = if smoke { (500, 30) } else { (20_000, 50) };
    let burst = burst_row(8, burst_data, 12, burst_reps);
    println!(
        "burst 12 clients vs 1 worker/queue 2: {} ok, {} overloaded of {} requests",
        burst.ok, burst.overloaded, burst.requests
    );
    if burst.overloaded == 0 {
        eprintln!("FAIL: burst produced no overload rejections — backpressure untested");
        std::process::exit(1);
    }

    let json = render_json(&rows, &burst);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
    if p99_violation {
        std::process::exit(1);
    }
}

fn report(
    side: u32,
    num_data: usize,
    mode: &'static str,
    method: &'static str,
    concurrency: usize,
    reps: usize,
) -> ServeRow {
    let row = serve_row(side, num_data, mode, method, concurrency, reps);
    println!(
        "{0}x{0} n={1} {2} c={3}: {4:.0} req/s, p50 {5:.1} us, p99 {6:.1} us, \
         {7} ok / {8} overloaded",
        row.side,
        row.num_data,
        row.mode,
        row.concurrency,
        row.throughput_rps(),
        row.percentile_us(0.50),
        row.percentile_us(0.99),
        row.ok,
        row.overloaded,
    );
    row
}
