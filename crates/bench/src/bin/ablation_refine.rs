//! Ablation G: local-search refinement vs the exact schedulers.
//!
//! Hill-climbing (single-center moves to a fixed point) is the obvious
//! cheap alternative to GOMCDS's DP. This experiment refines the
//! straightforward baseline, SCDS and LOMCDS and reports how much of the
//! gap to GOMCDS each start point closes — and confirms that refinement
//! cannot improve GOMCDS itself (it is already a local optimum under this
//! move set when memory is unbounded).

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::refine::refine;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let policy = MemoryPolicy::Unbounded;
    let spec = pim_array::memory::MemorySpec::unbounded();

    println!("Refinement ablation ({n}x{n} data, 4x4 array, unbounded memory)\n");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "bench", "start", "before", "after", "sweeps", "vs GOMCDS"
    );

    for bench in Benchmark::paper_set() {
        let (trace, space) = windowed(bench, grid, n, 2, 1998);
        let gomcds = schedule(Method::Gomcds, &trace, policy)
            .evaluate(&trace)
            .total();

        let starts: Vec<(&str, pim_sched::Schedule)> = vec![
            ("row-wise", space.straightforward(&trace, Layout::RowWise)),
            ("SCDS", schedule(Method::Scds, &trace, policy)),
            ("LOMCDS", schedule(Method::Lomcds, &trace, policy)),
            ("GOMCDS", schedule(Method::Gomcds, &trace, policy)),
        ];
        for (name, mut s) in starts {
            let before = s.evaluate(&trace).total();
            let stats = refine(&trace, &mut s, spec, 100);
            let after = s.evaluate(&trace).total();
            if name == "GOMCDS" {
                assert_eq!(stats.moves_applied, 0, "GOMCDS must be locally optimal");
            }
            assert!(
                after >= gomcds,
                "local search cannot beat the global optimum"
            );
            println!(
                "{:<6} {:>12} {:>12} {:>12} {:>8} {:>9.1}%",
                bench.label(),
                name,
                before,
                after,
                stats.sweeps,
                (after as f64 - gomcds as f64) / gomcds as f64 * 100.0
            );
        }
        println!();
    }
}
