//! Steady-state churn report: drives the incremental engine through edit
//! ticks that each perturb ~1% of the data, times every delta re-solve
//! against a from-scratch re-schedule of the same edited trace, and writes
//! `BENCH_churn.json`. Every tick asserts the incremental schedule is
//! bit-identical to the scratch one, so the speedup column never trades
//! exactness.
//!
//! Rows cover the method × policy matrix at 16×16 × 100k (the ≥10×
//! acceptance point), the 64×64 × 1M scale point, and a deliberately
//! tight-capacity instance (capacity 1 with exactly one datum per
//! processor) where every tick displaces a clean datum and forces the
//! engine's full-replay fallback — keeping the fallback path honest in
//! the same report that shows the fast path winning.
//!
//! Flags:
//!
//! * `--smoke` — small rows only (16×16 × 50k, 5 ticks) plus the tight
//!   fallback row (the CI gate);
//! * `--out PATH` — write the JSON somewhere other than
//!   `./BENCH_churn.json`.

use pim_bench::churn::{churn_row, ChurnRow};
use pim_bench::timing::warn_if_slower;
use pim_sched::MemoryPolicy;

fn main() {
    let mut out = String::from("BENCH_churn.json");
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown flag {other}; flags: --smoke, --out PATH");
                std::process::exit(2);
            }
        }
    }

    let unbounded = MemoryPolicy::Unbounded;
    let scaled = MemoryPolicy::ScaledMinimum { factor: 2 };
    let mut rows: Vec<ChurnRow> = Vec::new();
    if smoke {
        for method in ["scds", "lomcds"] {
            rows.push(report(16, 50_000, method, unbounded, "unbounded", 5));
        }
    } else {
        for method in ["scds", "lomcds", "gomcds"] {
            rows.push(report(16, 100_000, method, unbounded, "unbounded", 10));
            rows.push(report(16, 100_000, method, scaled, "scaled_min_x2", 10));
        }
        for method in ["scds", "lomcds"] {
            rows.push(report(64, 1_000_000, method, unbounded, "unbounded", 3));
        }
    }
    // Tight-capacity fallback row: 16×16 with one datum per processor at
    // capacity 1 — churn that moves any placement must displace a clean
    // datum, so every tick exercises the full-replay fallback.
    rows.push(report(
        16,
        256,
        "scds",
        MemoryPolicy::Capacity(1),
        "cap1",
        5,
    ));

    let json = pim_bench::churn::render_json(&rows);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}

fn report(
    side: u32,
    num_data: usize,
    method: &'static str,
    policy: MemoryPolicy,
    policy_label: &'static str,
    ticks: usize,
) -> ChurnRow {
    let row = churn_row(side, num_data, method, policy, policy_label, ticks);
    let ms = |ns: u128| ns as f64 / 1e6;
    println!(
        "{0}x{0} n={1} {2}/{3}: tick {4:.2} ms, scratch {5:.2} ms, {6:.1}x, \
         {7} fallback(s), parity ok",
        row.side,
        row.num_data,
        row.method,
        row.policy,
        ms(row.mean_tick_ns()),
        ms(row.mean_scratch_ns()),
        row.speedup(),
        row.fallbacks,
    );
    // The fallback row replays from scratch every tick, so only warn where
    // the incremental path is actually expected to win.
    if row.fallbacks == 0 {
        warn_if_slower(
            &format!(
                "churn {0}x{0} n={1} {2}/{3}: incremental path",
                row.side, row.num_data, row.method, row.policy
            ),
            row.speedup(),
        );
    }
    row
}
