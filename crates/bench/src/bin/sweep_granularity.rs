//! Ablation M: element vs row granularity.
//!
//! The paper schedules individual elements with unit movement volume. If
//! the distribution unit is a whole matrix row, moving a datum costs
//! `row_length` per hop. This sweep re-expresses each benchmark at row
//! granularity (per-datum volumes) and runs the volume-aware GOMCDS,
//! asking whether movement-aware scheduling still pays when the moved
//! units are heavy.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::gomcds::gomcds_schedule_volumes;
use pim_sched::schedule::improvement_pct;
use pim_sched::{schedule, MemoryPolicy, Method, Schedule};
use pim_workloads::granularity::rows_of;
use pim_workloads::Benchmark;

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,granularity,sf,scds,gomcds,gomcds_gain_pct,moves");
    } else {
        println!("Element vs row granularity ({n}x{n} data, 4x4 array, unbounded memory)\n");
        println!(
            "{:<6} {:<9} {:>10} {:>10} {:>10} {:>8} {:>8}",
            "bench", "unit", "S.F.", "SCDS", "GOMCDS", "gain", "moves"
        );
    }

    for bench in Benchmark::paper_set() {
        let (steps, space) = bench.generate(grid, n, 1998);

        // element granularity (the paper's model)
        {
            let trace = steps.window_fixed(2);
            let sf = space
                .straightforward(&trace, Layout::RowWise)
                .evaluate(&trace)
                .total();
            let sc = schedule(Method::Scds, &trace, MemoryPolicy::Unbounded)
                .evaluate(&trace)
                .total();
            let go_s = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
            let go = go_s.evaluate(&trace).total();
            emit(
                csv,
                bench.label(),
                "element",
                sf,
                sc,
                go,
                improvement_pct(sf, go),
                go_s.num_moves(),
            );
        }

        // row granularity: per-datum volumes = row length
        {
            let rt = rows_of(&steps, &space);
            let trace = rt.steps.window_fixed(2);
            let sf_sched = rt.space.straightforward(&trace, Layout::RowWise);
            let sf = sf_sched.evaluate_volumes(&trace, &rt.volumes).total();
            let sc_sched = schedule(Method::Scds, &trace, MemoryPolicy::Unbounded);
            let sc = sc_sched.evaluate_volumes(&trace, &rt.volumes).total();
            let go_sched: Schedule = gomcds_schedule_volumes(&trace, &rt.volumes);
            let go = go_sched.evaluate_volumes(&trace, &rt.volumes).total();
            emit(
                csv,
                bench.label(),
                "row",
                sf,
                sc,
                go,
                improvement_pct(sf, go),
                go_sched.num_moves(),
            );
        }
        if !csv {
            println!();
        }
    }

    if !csv {
        println!(
            "Row-level movement is 16x heavier per hop, so GOMCDS moves far\n\
             less — yet still beats both the static baseline and SCDS: good\n\
             placement carries the day; movement is the (cheap) icing."
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn emit(csv: bool, bench: &str, unit: &str, sf: u64, sc: u64, go: u64, gain: f64, moves: u64) {
    if csv {
        println!("{bench},{unit},{sf},{sc},{go},{gain:.2},{moves}");
    } else {
        println!(
            "{:<6} {:<9} {:>10} {:>10} {:>10} {:>7.1}% {:>8}",
            bench, unit, sf, sc, go, gain, moves
        );
    }
}
