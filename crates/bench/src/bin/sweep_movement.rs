//! Ablation F: movement-cost crossover.
//!
//! The paper charges one time unit per hop for moving a datum — implicitly
//! assuming data items are as cheap to move as to reference. Real PIM
//! arrays move whole rows/pages; this sweep scales the per-hop movement
//! charge (`move_weight` = datum transfer volume) and watches the optimal
//! policy collapse: GOMCDS (re-solved with the weighted cost graph) moves
//! less and less until it degenerates into SCDS, while LOMCDS — which
//! ignores movement when picking centers — falls behind SCDS. The
//! crossover point is the figure's payload.

use pim_array::grid::{Grid, ProcId};
use pim_sched::gomcds::{gomcds_path_weighted, Solver};
use pim_sched::{schedule, MemoryPolicy, Method, Schedule};
use pim_trace::ids::DataId;
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let csv = std::env::args().any(|a| a == "--csv");
    let bench = Benchmark::CodeReverse;
    let (trace, _) = windowed(bench, grid, n, 2, 1998);

    // Weight-independent schedules, evaluated under each weight.
    let scds = schedule(Method::Scds, &trace, MemoryPolicy::Unbounded);
    let lomcds = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);

    if csv {
        println!("move_weight,scds,lomcds,gomcds,gomcds_moves");
    } else {
        println!(
            "Movement-cost crossover on benchmark {} ({n}x{n}, 4x4 array, unbounded memory)\n",
            bench.label()
        );
        println!(
            "{:>11} {:>10} {:>10} {:>10} {:>13}",
            "move_weight", "SCDS", "LOMCDS", "GOMCDS", "GOMCDS moves"
        );
    }

    for weight in [1u64, 2, 4, 8, 16, 32, 64, 128] {
        // Re-solve GOMCDS against the weighted cost graph.
        let centers: Vec<Vec<ProcId>> = (0..trace.num_data())
            .map(|d| {
                gomcds_path_weighted(
                    &grid,
                    trace.refs(DataId(d as u32)),
                    Solver::DistanceTransform,
                    weight,
                )
                .0
            })
            .collect();
        let gomcds = Schedule::new(grid, centers);

        let sc = scds.evaluate_weighted(&trace, weight).total();
        let lo = lomcds.evaluate_weighted(&trace, weight).total();
        let go = gomcds.evaluate_weighted(&trace, weight).total();
        assert!(go <= sc && go <= lo, "weighted GOMCDS must stay optimal");

        if csv {
            println!("{weight},{sc},{lo},{go},{}", gomcds.num_moves());
        } else {
            println!(
                "{:>11} {:>10} {:>10} {:>10} {:>13}",
                weight,
                sc,
                lo,
                go,
                gomcds.num_moves()
            );
        }
    }
    if !csv {
        println!(
            "\nSCDS is weight-invariant (it never moves). As movement gets\n\
             expensive GOMCDS sheds its moves and converges to SCDS from\n\
             below; LOMCDS, blind to movement cost, crosses above SCDS."
        );
    }
}
