//! Regenerates **Table 1** of the paper: total communication cost of the
//! straight-forward distribution vs SCDS, LOMCDS and GOMCDS (before window
//! grouping), on a 4×4 PIM array with memory twice the balanced minimum.

use pim_bench::experiments::{paper_config, run_table};
use pim_bench::table;
use pim_sched::registry::schedulers;

fn main() {
    let cfg = paper_config();
    let rows = run_table(&cfg, &schedulers(&["scds", "lomcds", "gomcds"]));
    if table::want_csv() {
        print!("{}", table::render_csv(&rows));
    } else {
        print!(
            "{}",
            table::render(
                "Table 1: total communication cost before grouping (4x4 array, memory = 2x minimum)",
                &rows
            )
        );
    }
}
