//! Ablation A: naive `O(m²)` cost-graph relaxation vs the `O(m)` distance-
//! transform solver inside GOMCDS. Verifies the two produce identical
//! schedules on every paper benchmark, then times both on growing arrays
//! (wall-clock; see `benches/gomcds_solvers.rs` for the Criterion version).

use pim_array::grid::Grid;
use pim_sched::gomcds::{gomcds_schedule_with, Solver};
use pim_sched::MemoryPolicy;
use pim_workloads::{windowed, Benchmark};
use std::time::Instant;

fn main() {
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };

    println!("GOMCDS solver ablation: naive O(m^2) vs distance-transform O(m)\n");

    // 1. bit-identical results on the paper set
    let grid = Grid::new(4, 4);
    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, 16, 2, 1998);
        let spec = memory.resolve(&trace);
        let a = gomcds_schedule_with(&trace, spec, Solver::Naive);
        let b = gomcds_schedule_with(&trace, spec, Solver::DistanceTransform);
        assert_eq!(a, b, "solver divergence on benchmark {}", bench.label());
        println!(
            "benchmark {}: schedules identical (cost {})",
            bench.label(),
            a.evaluate(&trace).total()
        );
    }

    // 2. scaling with array size
    println!(
        "\n{:>7} {:>12} {:>12} {:>8}",
        "grid", "naive", "dt", "speedup"
    );
    for dim in [4u32, 8, 16, 24] {
        let grid = Grid::new(dim, dim);
        let (trace, _) = windowed(Benchmark::MatMul, grid, 16, 2, 1998);
        let spec = MemoryPolicy::Unbounded.resolve(&trace);

        let t0 = Instant::now();
        let a = gomcds_schedule_with(&trace, spec, Solver::Naive);
        let naive = t0.elapsed();

        let t0 = Instant::now();
        let b = gomcds_schedule_with(&trace, spec, Solver::DistanceTransform);
        let dt = t0.elapsed();

        assert_eq!(a, b);
        println!(
            "{:>4}x{:<2} {:>10.2?} {:>10.2?} {:>7.1}x",
            dim,
            dim,
            naive,
            dt,
            naive.as_secs_f64() / dt.as_secs_f64().max(1e-9)
        );
    }
}
