//! Ablation K: fixed vs adaptive windowing.
//!
//! Fixed bucketing can split a program phase across a window boundary;
//! adaptive windowing (cut on reference-centroid drift) aligns windows
//! with phases. For each benchmark this sweep tunes the fixed window size
//! and the adaptive drift threshold to produce *comparable window counts*
//! and reports which windowing lets GOMCDS do better.

use pim_array::grid::Grid;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::adaptive::{window_adaptive, AdaptiveParams};
use pim_workloads::Benchmark;

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let memory = MemoryPolicy::Unbounded;
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,windowing,windows,gomcds");
    } else {
        println!("Fixed vs adaptive windowing ({n}x{n} data, 4x4 array, GOMCDS, unbounded)\n");
        println!(
            "{:<6} {:<22} {:>8} {:>10}",
            "bench", "windowing", "windows", "GOMCDS"
        );
    }

    for bench in Benchmark::paper_set() {
        let (steps, _) = bench.generate(grid, n, 1998);
        let mut rows: Vec<(String, usize, u64)> = Vec::new();
        for spw in [1usize, 2, 4] {
            let trace = steps.window_fixed(spw);
            let cost = schedule(Method::Gomcds, &trace, memory)
                .evaluate(&trace)
                .total();
            rows.push((format!("fixed({spw})"), trace.num_windows(), cost));
        }
        for threshold in [0.5f64, 1.0, 2.0] {
            let (trace, _) = window_adaptive(
                &steps,
                AdaptiveParams {
                    drift_threshold: threshold,
                    max_steps: 8,
                },
            );
            let cost = schedule(Method::Gomcds, &trace, memory)
                .evaluate(&trace)
                .total();
            rows.push((
                format!("adaptive(d={threshold})"),
                trace.num_windows(),
                cost,
            ));
        }
        for (name, windows, cost) in rows {
            if csv {
                println!("{},{name},{windows},{cost}", bench.label());
            } else {
                println!(
                    "{:<6} {:<22} {:>8} {:>10}",
                    bench.label(),
                    name,
                    windows,
                    cost
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
