//! Ablation J: iteration-partition sensitivity.
//!
//! The paper prepares two stages before execution: the *iteration
//! partition* (mapping loop iterations to processors) and the *data
//! scheduling* studied in the paper. This sweep varies the iteration
//! partition and re-runs the schedulers, checking that the data-scheduling
//! gains are robust to how iterations were mapped — i.e. that the paper's
//! contribution is not an artifact of one particular iteration layout.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_sched::schedule::improvement_pct;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::Benchmark;

fn main() {
    let grid = Grid::new(4, 4);
    let n = 16;
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,iter_layout,sf,scds,gomcds,gomcds_gain_pct");
    } else {
        println!("Iteration-partition sweep ({n}x{n} data, 4x4 array, memory 2x)\n");
        println!(
            "{:<6} {:<12} {:>10} {:>10} {:>10} {:>8}",
            "bench", "iter layout", "S.F.", "SCDS", "GOMCDS", "gain"
        );
    }

    for bench in [Benchmark::Lu, Benchmark::MatMul, Benchmark::LuCode] {
        for layout in [
            Layout::Block2D,
            Layout::RowWise,
            Layout::ColumnWise,
            Layout::Cyclic,
            Layout::Snake,
            Layout::Diagonal,
        ] {
            let (steps, space) = bench.generate_with_layout(grid, n, 1998, layout);
            let trace = steps.window_fixed(2);
            let sf = space
                .straightforward(&trace, Layout::RowWise)
                .evaluate(&trace)
                .total();
            let scds = schedule(Method::Scds, &trace, memory)
                .evaluate(&trace)
                .total();
            let go = schedule(Method::Gomcds, &trace, memory)
                .evaluate(&trace)
                .total();
            let gain = improvement_pct(sf, go);
            if csv {
                println!(
                    "{},{},{sf},{scds},{go},{gain:.2}",
                    bench.label(),
                    layout.name()
                );
            } else {
                println!(
                    "{:<6} {:<12} {:>10} {:>10} {:>10} {:>7.1}%",
                    bench.label(),
                    layout.name(),
                    sf,
                    scds,
                    go,
                    gain
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
