//! Ablation E: greedy window grouping (the paper's Algorithm 3) vs the
//! exact DP-optimal grouping, per datum, on every paper benchmark.
//!
//! Reports how often the greedy matches the optimum and the worst-case and
//! aggregate optimality gap — evidence for (or against) the paper's choice
//! of "our greedy heuristic that efficiently finds the number of execution
//! windows in a group".

use pim_array::grid::Grid;
use pim_sched::grouping::{cost_of_grouping, greedy_grouping, optimal_grouping, GroupMethod};
use pim_trace::ids::DataId;
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    println!("Grouping ablation: greedy (Algorithm 3) vs DP-optimal, per datum\n");
    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>9} {:>10}",
        "bench", "data", "greedy", "optimal", "matched", "gap"
    );

    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, 16, 2, 1998);
        let mut greedy_total = 0u64;
        let mut optimal_total = 0u64;
        let mut matched = 0usize;
        for d in 0..trace.num_data() {
            let rs = trace.refs(DataId(d as u32));
            let groups = greedy_grouping(&grid, rs, GroupMethod::LocalCenters);
            let g_cost = cost_of_grouping(&grid, rs, &groups, GroupMethod::LocalCenters);
            let (_, o_cost) = optimal_grouping(&grid, rs);
            assert!(
                o_cost <= g_cost,
                "optimal exceeded greedy on datum {d} of benchmark {}",
                bench.label()
            );
            greedy_total += g_cost;
            optimal_total += o_cost;
            if g_cost == o_cost {
                matched += 1;
            }
        }
        let gap = if optimal_total > 0 {
            (greedy_total - optimal_total) as f64 / optimal_total as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "{:<6} {:>6} {:>12} {:>12} {:>8.1}% {:>9.2}%",
            bench.label(),
            trace.num_data(),
            greedy_total,
            optimal_total,
            matched as f64 / trace.num_data() as f64 * 100.0,
            gap
        );
    }
}
