//! Ablation L: open mesh vs torus.
//!
//! PetaFlop-era PIM proposals differ on whether the mesh edges wrap. Using
//! the topology-generic schedulers, this sweep reruns the paper's
//! benchmarks on a torus of the same dimensions and reports how much of
//! the communication (and of the scheduling gain) the wrap-around links
//! absorb.

use pim_array::grid::Grid;
use pim_array::torus::Torus;
use pim_sched::generic::{evaluate_generic, gomcds_generic, scds_generic, striped_generic};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let grid = Grid::new(4, 4);
    let torus = Torus::new(4, 4);
    let n = 16;
    let csv = std::env::args().any(|a| a == "--csv");

    if csv {
        println!("bench,topology,striped,scds,gomcds,gain_pct");
    } else {
        println!("Mesh vs torus ({n}x{n} data, 4x4 array, unbounded memory)\n");
        println!(
            "{:<6} {:<7} {:>10} {:>10} {:>10} {:>8}",
            "bench", "topo", "striped", "SCDS", "GOMCDS", "gain"
        );
    }

    for bench in Benchmark::paper_set() {
        let (trace, _) = windowed(bench, grid, n, 2, 1998);
        let mut rows: Vec<(&str, u64, u64, u64)> = Vec::new();
        {
            let base = evaluate_generic(&grid, &trace, &striped_generic(&grid, &trace));
            let sc = evaluate_generic(&grid, &trace, &scds_generic(&grid, &trace));
            let go = evaluate_generic(&grid, &trace, &gomcds_generic(&grid, &trace));
            rows.push(("mesh", base, sc, go));
        }
        {
            let base = evaluate_generic(&torus, &trace, &striped_generic(&torus, &trace));
            let sc = evaluate_generic(&torus, &trace, &scds_generic(&torus, &trace));
            let go = evaluate_generic(&torus, &trace, &gomcds_generic(&torus, &trace));
            rows.push(("torus", base, sc, go));
        }
        for (topo, base, sc, go) in rows {
            let gain = (base as f64 - go as f64) / base as f64 * 100.0;
            if csv {
                println!("{},{topo},{base},{sc},{go},{gain:.2}", bench.label());
            } else {
                println!(
                    "{:<6} {:<7} {:>10} {:>10} {:>10} {:>7.1}%",
                    bench.label(),
                    topo,
                    base,
                    sc,
                    go,
                    gain
                );
            }
        }
        if !csv {
            println!();
        }
    }
}
