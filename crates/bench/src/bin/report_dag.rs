//! Precedence-aware scheduling benchmark: completion cycles under
//! DAG-gated release, with vs. without precedence-aware ordering
//! (`cargo run --release -p pim-bench --bin report_dag`).
//!
//! For each dependence-carrying kernel (LU, Cholesky, triangular solve)
//! the natural step-chain DAG gates message release in the cycle
//! simulator; the precedence-oblivious GOMCDS schedule is the baseline
//! and the `list-scds` / `edf-scds` schedules are the treatment — all
//! three clocked by the *same* gated simulator, so the only variable is
//! placement. Emits `BENCH_dag.json` (working directory) and warns on
//! stderr if an aware schedule ever completes later than the oblivious
//! baseline (the guard in `pim_sched::precedence` should prevent it).

use pim_array::grid::Grid;
use pim_par::Pool;
use pim_sched::{MemoryPolicy, Run};
use pim_workloads::{natural_dag, windowed, Benchmark};
use std::fmt::Write as _;

struct Config {
    bench: Benchmark,
    grid: Grid,
    size: u32,
    spw: usize,
    memory: MemoryPolicy,
    seed: u64,
}

fn main() {
    // Capacity pressure is the interesting regime: with room to spare the
    // guard keeps plain GOMCDS (it already minimizes volume), but under a
    // tight memory bound the priority replay decides who wins the
    // contested slots and the critical chain benefits.
    let configs = [
        Config {
            bench: Benchmark::Lu,
            grid: Grid::new(4, 4),
            size: 16,
            spw: 2,
            memory: MemoryPolicy::ScaledMinimum { factor: 1 },
            seed: 1998,
        },
        Config {
            bench: Benchmark::Lu,
            grid: Grid::new(8, 8),
            size: 16,
            spw: 4,
            memory: MemoryPolicy::ScaledMinimum { factor: 1 },
            seed: 1998,
        },
        Config {
            bench: Benchmark::Cholesky,
            grid: Grid::new(4, 4),
            size: 16,
            spw: 2,
            memory: MemoryPolicy::ScaledMinimum { factor: 1 },
            seed: 1998,
        },
        Config {
            bench: Benchmark::Cholesky,
            grid: Grid::new(8, 8),
            size: 16,
            spw: 4,
            memory: MemoryPolicy::ScaledMinimum { factor: 1 },
            seed: 1998,
        },
        Config {
            bench: Benchmark::Trisolve,
            grid: Grid::new(4, 4),
            size: 16,
            spw: 2,
            memory: MemoryPolicy::ScaledMinimum { factor: 1 },
            seed: 1998,
        },
        Config {
            bench: Benchmark::Trisolve,
            grid: Grid::new(8, 8),
            size: 24,
            spw: 4,
            memory: MemoryPolicy::ScaledMinimum { factor: 1 },
            seed: 1998,
        },
    ];

    println!("=== DAG-gated completion: precedence-aware vs oblivious placement ===\n");
    println!(
        "{:<10} {:>5} {:>5} {:>4}  {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "grid", "size", "spw", "ungated", "gomcds", "list-scds", "edf-scds"
    );

    let pool = Pool::serial();
    let mut rows = String::new();
    let mut improved = 0usize;
    for cfg in &configs {
        let (trace, _) = windowed(cfg.bench, cfg.grid, cfg.size, cfg.spw, cfg.seed);
        let dag = natural_dag(cfg.bench, cfg.grid, cfg.size, cfg.spw, cfg.seed)
            .expect("chain kernels have a natural dag");
        dag.validate_cover(&trace).expect("dag covers its trace");

        let plain = Run::new(&trace)
            .policy(cfg.memory)
            .run_named("GOMCDS")
            .unwrap_or_else(|e| panic!("GOMCDS on {}: {e}", cfg.bench.label()));
        let ungated: u64 = pim_sim::simulate_cycles(&trace, &plain, pool)
            .expect("ungated sim")
            .iter()
            .map(|w| w.completion_cycle)
            .sum();
        let baseline: u64 = pim_sim::simulate_cycles_dag(&trace, &plain, &dag, pool)
            .expect("gated sim (baseline)")
            .iter()
            .map(|w| w.completion_cycle)
            .sum();

        let mut gated = [0u64; 2];
        for (i, method) in ["list-scds", "edf-scds"].into_iter().enumerate() {
            let s = Run::new(&trace)
                .policy(cfg.memory)
                .dag(&dag)
                .run_named(method)
                .unwrap_or_else(|e| panic!("{method} on {}: {e}", cfg.bench.label()));
            let cycles: u64 = pim_sim::simulate_cycles_dag(&trace, &s, &dag, pool)
                .expect("gated sim (aware)")
                .iter()
                .map(|w| w.completion_cycle)
                .sum();
            if cycles > baseline {
                eprintln!(
                    "warning: {method} on benchmark {} ({} size {} spw {}): \
                     aware completion {cycles} exceeds the oblivious baseline {baseline}",
                    cfg.bench.label(),
                    cfg.grid,
                    cfg.size,
                    cfg.spw,
                );
            }
            if cycles < baseline {
                improved += 1;
            }
            gated[i] = cycles;
        }

        println!(
            "{:<10} {:>5} {:>5} {:>4}  {:>9} {:>9} {:>9} {:>9}",
            cfg.bench.label(),
            cfg.grid.to_string(),
            cfg.size,
            cfg.spw,
            ungated,
            baseline,
            gated[0],
            gated[1],
        );

        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        write!(
            rows,
            "    {{\"benchmark\": \"{}\", \"grid\": \"{}x{}\", \"size\": {}, \
             \"steps_per_window\": {}, \"memory\": \"{:?}\", \"tasks\": {}, \"edges\": {}, \
             \"ungated_cycles\": {ungated}, \"gomcds_gated_cycles\": {baseline}, \
             \"list_scds_gated_cycles\": {}, \"edf_scds_gated_cycles\": {}}}",
            cfg.bench.label(),
            cfg.grid.width(),
            cfg.grid.height(),
            cfg.size,
            cfg.spw,
            cfg.memory,
            dag.num_tasks(),
            dag.edges().len(),
            gated[0],
            gated[1],
        )
        .expect("write to String cannot fail");
    }

    let json = format!(
        "{{\n  \"config\": {{\"baseline\": \"GOMCDS under the same gated simulator\", \
         \"seed\": 1998}},\n  \"rows\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write("BENCH_dag.json", &json).expect("write BENCH_dag.json");
    println!("\n{improved} aware runs beat the oblivious baseline strictly");
    println!("wrote BENCH_dag.json");
}
