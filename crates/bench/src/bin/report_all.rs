//! One-shot experiment report: runs every reproduction target and ablation
//! at reduced sizes and prints a combined summary — the quick way to sanity
//! check a checkout (`cargo run --release -p pim-bench --bin report_all`).
//! For the full paper-sized tables use the individual binaries.
//!
//! Also emits `BENCH_sched.json` (in the working directory): machine-readable
//! wall times and total costs of the cached scheduling path against the
//! pre-cache reference, per method × benchmark × size — each row carrying a
//! `"metrics"` object (cache/phase/placement/pool counters from one observed
//! run) — plus the `compare_methods` headline on the paper's benchmark 3 at
//! 32×32 data.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_bench::cycle_workload::reversal_window;
use pim_bench::experiments::{paper_config, run_table, PaperConfig};
use pim_bench::table;
use pim_bench::timing::{bench_ns, warn_if_slower};
use pim_sched::registry::schedulers;
use pim_sched::schedule::improvement_pct;
use pim_sched::{compare_methods, registry, schedule, MemoryPolicy, Method, Run};
use pim_workloads::{windowed, Benchmark};
use std::fmt::Write as _;
use std::hint::black_box;

fn main() {
    let cfg = PaperConfig {
        sizes: [8, 16, 16],
        ..paper_config()
    };

    println!("=== pim-sched experiment summary (reduced sizes; see individual bins) ===\n");

    let rows = run_table(&cfg, &schedulers(&["scds", "lomcds", "gomcds"]));
    print!("{}", table::render("Table 1 (reduced)", &rows));
    println!();

    let rows = run_table(
        &cfg,
        &schedulers(&["scds", "grouped-lomcds", "grouped-gomcds"]),
    );
    print!("{}", table::render("Table 2 (reduced)", &rows));
    println!();

    // Figure 1 cross-check.
    {
        use pim_workloads::paper_example::{expectation, figure1_trace};
        let (trace, _) = figure1_trace();
        let exp = expectation();
        let ok = [
            (Method::Scds, exp.scds_cost),
            (Method::Lomcds, exp.lomcds_cost),
            (Method::Gomcds, exp.gomcds_cost),
        ]
        .into_iter()
        .all(|(m, want)| {
            schedule(m, &trace, MemoryPolicy::Unbounded)
                .evaluate(&trace)
                .total()
                == want
        });
        println!(
            "Figure 1 example: centers and costs match the paper's prose: {}",
            if ok { "yes" } else { "NO" }
        );
    }

    // Headline cross-cutting numbers.
    let grid = Grid::new(4, 4);
    let (trace, space) = windowed(Benchmark::LuCode, grid, 16, 2, 1998);
    let sf = space
        .straightforward(&trace, Layout::RowWise)
        .evaluate(&trace)
        .total();
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let go = schedule(Method::Gomcds, &trace, memory)
        .evaluate(&trace)
        .total();
    println!(
        "benchmark 3 spotlight: S.F. {sf}, GOMCDS {go} ({:.1}% better)",
        improvement_pct(sf, go)
    );

    let spec = memory.resolve(&trace);
    let repl = pim_sched::replicate::replicated_schedule(&trace, spec);
    println!(
        "  + 2-copy replication: {} ({:.1}% further)",
        repl.evaluate(&trace).total(),
        improvement_pct(go, repl.evaluate(&trace).total())
    );

    let lb = pim_sched::bounds::reference_lower_bound(&trace);
    println!("  single-copy lower bound: {lb} (gap to optimum {:.1}%)", {
        (go as f64 - lb as f64) / lb as f64 * 100.0
    });

    // Machine-readable scheduling benchmark: cached vs pre-cache wall
    // times. Written last so a crash above leaves no stale file behind.
    let json = bench_sched_json();
    std::fs::write("BENCH_sched.json", &json).expect("write BENCH_sched.json");
    println!("\nwrote BENCH_sched.json");

    // Machine-readable cycle-simulator benchmark: the event-driven rewrite
    // against the brute-force oracle on high-contention windows.
    let json = bench_cycle_json();
    std::fs::write("BENCH_cycle.json", &json).expect("write BENCH_cycle.json");
    println!("wrote BENCH_cycle.json");

    println!("\nall consistency assertions passed");
}

/// Time the registry's comparison set cached and uncached over benchmark ×
/// size, plus the `compare_methods` headline (benchmark 3, 32×32 data, 4×4
/// array), and render the results as JSON (hand-rolled; the vendored serde
/// shim has no serializer and the schema is flat). Grouped rows also
/// isolate the Algorithm 3 grouping-decision phase (`grouping_ns`), and
/// any row whose cached path loses to the reference is warned about on
/// stderr. Any newly registered scheduler with `in_comparison()` shows up
/// here automatically.
fn bench_sched_json() -> String {
    let compare_set: Vec<&dyn pim_sched::Scheduler> = registry().comparison_set().collect();
    let grid = Grid::new(4, 4);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };

    let mut json = String::from("{\n");
    json.push_str("  \"config\": {\"grid\": \"4x4\", \"memory\": \"scaled_minimum_x2\", \"steps_per_window\": 2, \"seed\": 1998},\n");
    json.push_str("  \"rows\": [\n");
    let mut first = true;
    for bench in [Benchmark::Lu, Benchmark::LuCode] {
        for size in [8u32, 16] {
            let (trace, _) = windowed(bench, grid, size, 2, 1998);
            for &scheduler in &compare_set {
                let (cached_ns, sched) = bench_ns(10, || {
                    Run::new(&trace)
                        .policy(memory)
                        .run(scheduler)
                        .unwrap_or_else(|e| panic!("{e}"))
                });
                let (uncached_ns, _) = bench_ns(10, || {
                    Run::new(&trace)
                        .policy(memory)
                        .cached(false)
                        .run(scheduler)
                        .unwrap_or_else(|e| panic!("{e}"))
                });
                // One extra observed run per row (outside the timing loop,
                // so collection can't skew the wall times): cache, phase,
                // placement and pool counters for this scheduler alone.
                let metrics = pim_sched::Metrics::enabled();
                Run::new(&trace)
                    .policy(memory)
                    .metrics(metrics.clone())
                    .run(scheduler)
                    .unwrap_or_else(|e| panic!("{e}"));
                let metrics_json = metrics.report().to_json();
                // Isolate the Algorithm 3 grouping-decision phase for the
                // grouped methods (greedy over every datum, cached); other
                // methods have no grouping phase and report 0.
                let grouping_ns = if scheduler.name().starts_with("Grouped") {
                    let cache = pim_sched::CostCache::build(&trace);
                    let mut ws = pim_sched::Workspace::new();
                    let tgrid = trace.grid();
                    bench_ns(10, || {
                        for d in 0..trace.num_data() as u32 {
                            black_box(pim_sched::grouping::greedy_grouping_cached(
                                &tgrid,
                                cache.datum(pim_trace::ids::DataId(d)),
                                pim_sched::grouping::GroupMethod::LocalCenters,
                                &mut ws,
                            ));
                        }
                    })
                    .0
                } else {
                    0
                };
                let cost = sched.evaluate(&trace).total();
                let speedup = uncached_ns as f64 / cached_ns.max(1) as f64;
                warn_if_slower(
                    &format!(
                        "{} on benchmark {} size {size}: cached path",
                        scheduler.name(),
                        bench.label(),
                    ),
                    speedup,
                );
                if !first {
                    json.push_str(",\n");
                }
                first = false;
                write!(
                    json,
                    "    {{\"benchmark\": \"{}\", \"size\": {size}, \"method\": \"{}\", \
                     \"total_cost\": {cost}, \"cached_ns\": {cached_ns}, \
                     \"uncached_ns\": {uncached_ns}, \"grouping_ns\": {grouping_ns}, \
                     \"speedup\": {speedup:.3}, \"metrics\": {metrics_json}}}",
                    bench.label(),
                    scheduler.name(),
                )
                .expect("write to String cannot fail");
            }
        }
    }
    json.push_str("\n  ],\n");

    // Headline: the full compare_methods sweep, where one shared cost cache
    // serves all five methods, on the paper's benchmark 3 at 32×32 data.
    let (trace, _) = windowed(Benchmark::LuCode, grid, 32, 2, 1998);
    let (cached_ns, costs) = bench_ns(5, || compare_methods(&trace, memory));
    let (uncached_ns, uncached_costs) = bench_ns(5, || {
        let mut run = Run::new(&trace).policy(memory).cached(false);
        compare_set
            .iter()
            .map(|&s| {
                let sched = run.run(s).unwrap_or_else(|e| panic!("{e}"));
                (s.name(), sched.evaluate(&trace).total())
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(costs, uncached_costs, "cached diverged from reference");
    let speedup = uncached_ns as f64 / cached_ns.max(1) as f64;
    warn_if_slower("compare_methods headline: cached path", speedup);
    write!(
        json,
        "  \"compare_methods\": {{\"benchmark\": \"3\", \"size\": 32, \"grid\": \"4x4\", \
         \"cached_ns\": {cached_ns}, \"uncached_ns\": {uncached_ns}, \
         \"speedup\": {speedup:.3}, \"costs\": {{"
    )
    .expect("write to String cannot fail");
    for (i, (name, c)) in costs.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        write!(json, "\"{name}\": {c}").expect("write to String cannot fail");
    }
    json.push_str("}}\n}\n");

    println!(
        "\ncached-vs-uncached headline (benchmark 3, 32x32 data, 4x4 array): \
         compare_methods {:.2}x faster ({:.1} ms vs {:.1} ms)",
        speedup,
        cached_ns as f64 / 1e6,
        uncached_ns as f64 / 1e6,
    );
    json
}

/// Time the event-driven cycle simulator and the brute-force oracle on the
/// same high-contention reversal window per grid size, assert they still
/// agree bit for bit, and render the rows as JSON (`oracle_ns` is the old
/// implementation, `event_ns` the rewrite). Mirrors `bench_sched_json`'s
/// convention: any row where the rewrite loses is warned about on stderr.
fn bench_cycle_json() -> String {
    use pim_sim::cycle::{run_window_oracle, CycleSim};

    const VOLUME: u32 = 256;
    let mut json = String::from("{\n");
    json.push_str("  \"config\": {\"pattern\": \"reversal\", \"volume_per_message\": 256},\n");
    json.push_str("  \"rows\": [\n");
    println!();
    for (i, side) in [4u32, 8, 16].into_iter().enumerate() {
        let grid = Grid::new(side, side);
        let msgs = reversal_window(&grid, VOLUME);
        let mut sim = CycleSim::new(grid);
        // The oracle is O(cycles × flits in flight); keep its rep count low
        // on the big grid so the report stays quick.
        let reps = if side >= 16 { 3 } else { 10 };
        let (event_ns, event) = bench_ns(reps, || sim.run_window(&msgs).expect("event sim"));
        let (oracle_ns, oracle) = bench_ns(reps, || {
            run_window_oracle(&grid, &msgs).expect("oracle sim")
        });
        assert_eq!(event, oracle, "event-driven diverged from the oracle");
        let speedup = oracle_ns as f64 / event_ns.max(1) as f64;
        warn_if_slower(
            &format!("cycle sim on {side}x{side}: event-driven path"),
            speedup,
        );
        if i > 0 {
            json.push_str(",\n");
        }
        write!(
            json,
            "    {{\"grid\": \"{side}x{side}\", \"messages\": {}, \
             \"volume_per_message\": {VOLUME}, \"completion_cycles\": {}, \
             \"flit_hops\": {}, \"peak_in_flight\": {}, \
             \"oracle_ns\": {oracle_ns}, \"event_ns\": {event_ns}, \
             \"speedup\": {speedup:.3}}}",
            msgs.len(),
            event.completion_cycle,
            event.flit_hops,
            event.peak_in_flight,
        )
        .expect("write to String cannot fail");
        println!(
            "cycle sim {side}x{side} reversal window: event {:.3} ms vs oracle {:.3} ms \
             ({speedup:.1}x)",
            event_ns as f64 / 1e6,
            oracle_ns as f64 / 1e6,
        );
    }
    json.push_str("\n  ]\n}\n");
    json
}
