//! One-shot experiment report: runs every reproduction target and ablation
//! at reduced sizes and prints a combined summary — the quick way to sanity
//! check a checkout (`cargo run --release -p pim-bench --bin report_all`).
//! For the full paper-sized tables use the individual binaries.

use pim_array::grid::Grid;
use pim_array::layout::Layout;
use pim_bench::experiments::{paper_config, run_table, PaperConfig};
use pim_bench::table;
use pim_sched::schedule::improvement_pct;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};

fn main() {
    let cfg = PaperConfig {
        sizes: [8, 16, 16],
        ..paper_config()
    };

    println!("=== pim-sched experiment summary (reduced sizes; see individual bins) ===\n");

    let rows = run_table(&cfg, &[Method::Scds, Method::Lomcds, Method::Gomcds]);
    print!("{}", table::render("Table 1 (reduced)", &rows));
    println!();

    let rows = run_table(
        &cfg,
        &[Method::Scds, Method::GroupedLocal, Method::GroupedGomcds],
    );
    print!("{}", table::render("Table 2 (reduced)", &rows));
    println!();

    // Figure 1 cross-check.
    {
        use pim_workloads::paper_example::{expectation, figure1_trace};
        let (trace, _) = figure1_trace();
        let exp = expectation();
        let ok = [
            (Method::Scds, exp.scds_cost),
            (Method::Lomcds, exp.lomcds_cost),
            (Method::Gomcds, exp.gomcds_cost),
        ]
        .into_iter()
        .all(|(m, want)| {
            schedule(m, &trace, MemoryPolicy::Unbounded)
                .evaluate(&trace)
                .total()
                == want
        });
        println!(
            "Figure 1 example: centers and costs match the paper's prose: {}",
            if ok { "yes" } else { "NO" }
        );
    }

    // Headline cross-cutting numbers.
    let grid = Grid::new(4, 4);
    let (trace, space) = windowed(Benchmark::LuCode, grid, 16, 2, 1998);
    let sf = space
        .straightforward(&trace, Layout::RowWise)
        .evaluate(&trace)
        .total();
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let go = schedule(Method::Gomcds, &trace, memory).evaluate(&trace).total();
    println!(
        "benchmark 3 spotlight: S.F. {sf}, GOMCDS {go} ({:.1}% better)",
        improvement_pct(sf, go)
    );

    let spec = memory.resolve(&trace);
    let repl = pim_sched::replicate::replicated_schedule(&trace, spec);
    println!(
        "  + 2-copy replication: {} ({:.1}% further)",
        repl.evaluate(&trace).total(),
        improvement_pct(go, repl.evaluate(&trace).total())
    );

    let lb = pim_sched::bounds::reference_lower_bound(&trace);
    println!("  single-copy lower bound: {lb} (gap to optimum {:.1}%)", {
        (go as f64 - lb as f64) / lb as f64 * 100.0
    });

    println!("\nall consistency assertions passed");
}
