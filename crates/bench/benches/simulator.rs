//! Criterion bench: hop-by-hop simulation throughput, serial vs parallel
//! window processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_par::Pool;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::MatMulCode, grid, 16, 2, 1998);
    let sched = schedule(
        Method::Gomcds,
        &trace,
        MemoryPolicy::ScaledMinimum { factor: 2 },
    );
    let mut group = c.benchmark_group("simulate");
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let pool = Pool::with_threads(threads);
                b.iter(|| {
                    black_box(pim_sim::simulate(
                        black_box(&trace),
                        black_box(&sched),
                        pool,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
