//! Criterion bench: end-to-end scheduling throughput of every method on
//! the paper benchmarks (4×4 array, 16×16 data, memory = 2× minimum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_sched::{compare_methods, schedule, schedule_uncached, MemoryPolicy, Method};
use pim_workloads::{windowed, Benchmark};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let mut group = c.benchmark_group("schedulers");
    for bench in [Benchmark::Lu, Benchmark::MatMulCode] {
        let (trace, _) = windowed(bench, grid, 16, 2, 1998);
        for method in [
            Method::Scds,
            Method::Lomcds,
            Method::Gomcds,
            Method::GroupedLocal,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), bench.label()),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let s = schedule(method, black_box(trace), memory);
                        black_box(s.evaluate(trace).total())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let grid = Grid::new(8, 8);
    let (trace, _) = windowed(Benchmark::MatMul, grid, 32, 2, 1998);
    let mut group = c.benchmark_group("gomcds_parallel");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let pool = pim_par::Pool::with_threads(threads);
                b.iter(|| {
                    black_box(pim_sched::schedule_parallel(
                        Method::Gomcds,
                        black_box(&trace),
                        pool,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The tentpole measurement: every method through the shared cost-table
/// cache (`schedule`) against the pre-cache reference (`schedule_uncached`),
/// plus the whole `compare_methods` sweep where one cache serves all five
/// methods.
fn bench_cached_vs_uncached(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let (trace, _) = windowed(Benchmark::LuCode, grid, 16, 2, 1998);
    let mut group = c.benchmark_group("cached_vs_uncached");
    group.sample_size(10);
    for method in [
        Method::Scds,
        Method::Lomcds,
        Method::Gomcds,
        Method::GroupedLocal,
        Method::GroupedGomcds,
    ] {
        group.bench_with_input(
            BenchmarkId::new("cached", method.name()),
            &trace,
            |b, trace| b.iter(|| black_box(schedule(method, black_box(trace), memory))),
        );
        group.bench_with_input(
            BenchmarkId::new("uncached", method.name()),
            &trace,
            |b, trace| b.iter(|| black_box(schedule_uncached(method, black_box(trace), memory))),
        );
    }
    group.bench_with_input(
        BenchmarkId::new("compare_methods", "cached"),
        &trace,
        |b, trace| b.iter(|| black_box(compare_methods(black_box(trace), memory))),
    );
    group.bench_with_input(
        BenchmarkId::new("compare_methods", "uncached"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let costs: Vec<u64> = [
                    Method::Scds,
                    Method::Lomcds,
                    Method::Gomcds,
                    Method::GroupedLocal,
                    Method::GroupedGomcds,
                ]
                .into_iter()
                .map(|m| {
                    schedule_uncached(m, black_box(trace), memory)
                        .evaluate(trace)
                        .total()
                })
                .collect();
                black_box(costs)
            })
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_parallel_speedup,
    bench_cached_vs_uncached
);
criterion_main!(benches);
