//! Criterion bench: end-to-end scheduling throughput of every method on
//! the paper benchmarks (4×4 array, 16×16 data, memory = 2× minimum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::{Grid, ProcId};
use pim_sched::grouping::{greedy_grouping_cached, optimal_grouping_cached, GroupMethod};
use pim_sched::{
    compare_methods, schedule, schedule_uncached, DatumCostCache, MemoryPolicy, Method, Workspace,
};
use pim_trace::window::{DataRefString, WindowRefs};
use pim_workloads::{windowed, Benchmark};
use std::hint::black_box;

fn bench_schedulers(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let mut group = c.benchmark_group("schedulers");
    for bench in [Benchmark::Lu, Benchmark::MatMulCode] {
        let (trace, _) = windowed(bench, grid, 16, 2, 1998);
        for method in [
            Method::Scds,
            Method::Lomcds,
            Method::Gomcds,
            Method::GroupedLocal,
        ] {
            group.bench_with_input(
                BenchmarkId::new(method.name(), bench.label()),
                &trace,
                |b, trace| {
                    b.iter(|| {
                        let s = schedule(method, black_box(trace), memory);
                        black_box(s.evaluate(trace).total())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let grid = Grid::new(8, 8);
    let (trace, _) = windowed(Benchmark::MatMul, grid, 32, 2, 1998);
    let mut group = c.benchmark_group("gomcds_parallel");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let pool = pim_par::Pool::with_threads(threads);
                b.iter(|| {
                    black_box(pim_sched::schedule_parallel(
                        Method::Gomcds,
                        black_box(&trace),
                        pool,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The tentpole measurement: every method through the shared cost-table
/// cache (`schedule`) against the pre-cache reference (`schedule_uncached`),
/// plus the whole `compare_methods` sweep where one cache serves all five
/// methods.
fn bench_cached_vs_uncached(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let memory = MemoryPolicy::ScaledMinimum { factor: 2 };
    let (trace, _) = windowed(Benchmark::LuCode, grid, 16, 2, 1998);
    let mut group = c.benchmark_group("cached_vs_uncached");
    group.sample_size(10);
    for method in [
        Method::Scds,
        Method::Lomcds,
        Method::Gomcds,
        Method::GroupedLocal,
        Method::GroupedGomcds,
    ] {
        group.bench_with_input(
            BenchmarkId::new("cached", method.name()),
            &trace,
            |b, trace| b.iter(|| black_box(schedule(method, black_box(trace), memory))),
        );
        group.bench_with_input(
            BenchmarkId::new("uncached", method.name()),
            &trace,
            |b, trace| b.iter(|| black_box(schedule_uncached(method, black_box(trace), memory))),
        );
    }
    group.bench_with_input(
        BenchmarkId::new("compare_methods", "cached"),
        &trace,
        |b, trace| b.iter(|| black_box(compare_methods(black_box(trace), memory))),
    );
    group.bench_with_input(
        BenchmarkId::new("compare_methods", "uncached"),
        &trace,
        |b, trace| {
            b.iter(|| {
                let costs: Vec<u64> = [
                    Method::Scds,
                    Method::Lomcds,
                    Method::Gomcds,
                    Method::GroupedLocal,
                    Method::GroupedGomcds,
                ]
                .into_iter()
                .map(|m| {
                    schedule_uncached(m, black_box(trace), memory)
                        .evaluate(trace)
                        .total()
                })
                .collect();
                black_box(costs)
            })
        },
    );
    group.finish();
}

/// Grouping-decision scaling: the incremental greedy (Algorithm 3) and the
/// `O(t²)` optimal DP over a synthetic reference string as the window count
/// grows 8 → 128. The greedy should scale linearly in evaluations; the DP
/// quadratically in the referenced-window count.
fn bench_grouping_scaling(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let m = grid.num_procs() as u64;
    // Deterministic synthetic drift: a hotspot that wanders across the
    // array with a little multiplicative noise — windows near each other
    // reference near-by processors, so grouping decisions are non-trivial.
    let make_refs = |windows: usize| {
        let per_window = (0..windows)
            .map(|w| {
                let s = (w as u64).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
                let pairs = (0..(s % 3 + 1)).map(move |i| {
                    let p = (s.wrapping_add(i.wrapping_mul(29)) ^ (w as u64 / 8)) % m;
                    (ProcId(p as u32), (s >> (8 + i)) as u32 % 5 + 1)
                });
                WindowRefs::from_pairs(pairs)
            })
            .collect();
        DataRefString::new(per_window)
    };
    let mut group = c.benchmark_group("grouping_scaling");
    for windows in [8usize, 16, 32, 64, 128] {
        let rs = make_refs(windows);
        let cache = DatumCostCache::build(&grid, &rs);
        cache.ensure_tables();
        group.bench_with_input(BenchmarkId::new("greedy", windows), &cache, |b, cache| {
            let mut ws = Workspace::new();
            b.iter(|| {
                black_box(greedy_grouping_cached(
                    &grid,
                    black_box(cache),
                    GroupMethod::LocalCenters,
                    &mut ws,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("dp", windows), &cache, |b, cache| {
            let mut ws = Workspace::new();
            b.iter(|| black_box(optimal_grouping_cached(&grid, black_box(cache), &mut ws)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedulers,
    bench_parallel_speedup,
    bench_cached_vs_uncached,
    bench_grouping_scaling
);
criterion_main!(benches);
