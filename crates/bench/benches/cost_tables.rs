//! Criterion bench: the per-candidate cost-table scan (paper Algorithm 1
//! lines 2–4) vs the separable prefix-sum computation, and the L1 distance
//! transform vs its naive form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_sched::cost::{cost_table, cost_table_naive};
use pim_sched::dt::{l1_relax, l1_relax_naive};
use pim_trace::window::WindowRefs;
use std::hint::black_box;

fn refs_for(grid: &Grid, n: usize) -> WindowRefs {
    WindowRefs::from_pairs((0..n).map(|i| {
        let p = pim_array::grid::ProcId((i * 7 % grid.num_procs()) as u32);
        (p, (i % 5 + 1) as u32)
    }))
}

fn bench_cost_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_table");
    for dim in [4u32, 16, 64] {
        let grid = Grid::new(dim, dim);
        let refs = refs_for(&grid, (dim as usize).pow(2) / 4);
        group.bench_with_input(BenchmarkId::new("naive", dim), &refs, |b, refs| {
            let mut out = Vec::new();
            b.iter(|| {
                cost_table_naive(&grid, black_box(refs), &mut out);
                black_box(out.last().copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("separable", dim), &refs, |b, refs| {
            let mut out = Vec::new();
            b.iter(|| {
                cost_table(&grid, black_box(refs), &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

fn bench_relax(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1_relax");
    for dim in [4u32, 16, 64] {
        let grid = Grid::new(dim, dim);
        let input: Vec<u64> = (0..grid.num_procs() as u64).map(|i| i * 31 % 97).collect();
        group.bench_with_input(BenchmarkId::new("naive", dim), &input, |b, input| {
            let mut out = Vec::new();
            b.iter(|| {
                l1_relax_naive(&grid, black_box(input), &mut out);
                black_box(out.last().copied())
            })
        });
        group.bench_with_input(BenchmarkId::new("two_pass", dim), &input, |b, input| {
            let mut out = Vec::new();
            b.iter(|| {
                l1_relax(&grid, black_box(input), &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cost_tables, bench_relax);
criterion_main!(benches);
