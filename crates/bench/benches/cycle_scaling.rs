//! Criterion bench: event-driven cycle simulator vs the brute-force
//! oracle on high-contention windows, across grid sizes.
//!
//! The acceptance bar for the rewrite is ≥ 10× over the oracle on the
//! 16×16 high-volume window; `report_all` records the same comparison as
//! `BENCH_cycle.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_bench::cycle_workload::reversal_window;
use pim_sim::cycle::{run_window_oracle, CycleSim};
use std::hint::black_box;

const VOLUME: u32 = 256;

fn bench_cycle_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cycle_scaling");
    group.sample_size(10);
    for side in [4u32, 8, 16] {
        let grid = Grid::new(side, side);
        let msgs = reversal_window(&grid, VOLUME);
        let label = format!("{side}x{side}");
        group.bench_with_input(BenchmarkId::new("event", &label), &msgs, |b, msgs| {
            let mut sim = CycleSim::new(grid);
            b.iter(|| black_box(sim.run_window(black_box(msgs)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("oracle", &label), &msgs, |b, msgs| {
            b.iter(|| black_box(run_window_oracle(black_box(&grid), black_box(msgs)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cycle_scaling);
criterion_main!(benches);
