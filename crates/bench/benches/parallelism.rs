//! Criterion bench: the `pim-par` primitives themselves — parallel-map
//! overhead vs chunk size, and the sharded counter vs a single atomic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_par::counter::ShardedCounter;
use pim_par::{parallel_map_chunked, Pool};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

fn busy_work(x: u64) -> u64 {
    // ~100ns of integer mixing
    let mut v = x;
    for _ in 0..32 {
        v = v
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v ^= v >> 33;
    }
    v
}

fn bench_parallel_map(c: &mut Criterion) {
    let items: Vec<u64> = (0..100_000).collect();
    let mut group = c.benchmark_group("parallel_map");
    group.sample_size(15);
    for (label, pool, chunk) in [
        ("serial", Pool::serial(), 1024usize),
        ("4thr_chunk1", Pool::with_threads(4), 1),
        ("4thr_chunk64", Pool::with_threads(4), 64),
        ("4thr_chunk1024", Pool::with_threads(4), 1024),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &items, |b, items| {
            b.iter(|| {
                black_box(parallel_map_chunked(
                    pool,
                    black_box(items),
                    chunk,
                    |_, &x| busy_work(x),
                ))
            })
        });
    }
    group.finish();
}

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_8threads");
    group.sample_size(15);
    group.bench_function("sharded", |b| {
        b.iter(|| {
            let counter = ShardedCounter::new();
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..50_000 {
                            counter.incr();
                        }
                    });
                }
            });
            black_box(counter.get())
        })
    });
    group.bench_function("single_atomic", |b| {
        b.iter(|| {
            let counter = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..50_000 {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(counter.load(Ordering::Relaxed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_map, bench_counters);
criterion_main!(benches);
