//! Criterion bench: trace generation throughput for every paper benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_workloads::{windowed, Benchmark};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let mut group = c.benchmark_group("workload_gen");
    for bench in Benchmark::paper_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.label()),
            &bench,
            |b, &bench| b.iter(|| black_box(windowed(bench, grid, 16, 2, black_box(1998)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
