//! Criterion bench for ablation A: the naive `O(m²)` cost-graph relaxation
//! vs the `O(m)` L1 distance-transform inside GOMCDS, as the processor
//! array grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_sched::gomcds::{gomcds_schedule_with, Solver};
use pim_sched::MemoryPolicy;
use pim_workloads::{windowed, Benchmark};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("gomcds_solver");
    group.sample_size(15);
    for dim in [4u32, 8, 16] {
        let grid = Grid::new(dim, dim);
        let (trace, _) = windowed(Benchmark::MatMul, grid, 16, 2, 1998);
        let spec = MemoryPolicy::Unbounded.resolve(&trace);
        group.bench_with_input(BenchmarkId::new("naive", dim), &trace, |b, trace| {
            b.iter(|| black_box(gomcds_schedule_with(black_box(trace), spec, Solver::Naive)))
        });
        group.bench_with_input(BenchmarkId::new("dt", dim), &trace, |b, trace| {
            b.iter(|| {
                black_box(gomcds_schedule_with(
                    black_box(trace),
                    spec,
                    Solver::DistanceTransform,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
