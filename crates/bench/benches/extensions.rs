//! Criterion bench: the extension algorithms — Algorithm 3 grouping
//! (greedy vs DP-optimal), local-search refinement, replication, and the
//! online policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_array::memory::MemorySpec;
use pim_sched::grouping::{greedy_grouping, optimal_grouping, GroupMethod};
use pim_sched::online::{online_schedule, OnlinePolicy};
use pim_sched::refine::refine;
use pim_sched::replicate::replicated_schedule;
use pim_sched::{schedule, MemoryPolicy, Method};
use pim_trace::ids::DataId;
use pim_workloads::{windowed, Benchmark};
use std::hint::black_box;

fn bench_grouping(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::CodeReverse, grid, 16, 1, 1998);
    let strings: Vec<_> = (0..trace.num_data())
        .map(|d| trace.refs(DataId(d as u32)).clone())
        .collect();
    let mut group = c.benchmark_group("grouping");
    group.sample_size(15);
    group.bench_function("greedy_all_data", |b| {
        b.iter(|| {
            strings
                .iter()
                .map(|rs| greedy_grouping(&grid, black_box(rs), GroupMethod::LocalCenters).len())
                .sum::<usize>()
        })
    });
    group.bench_function("optimal_all_data", |b| {
        b.iter(|| {
            strings
                .iter()
                .map(|rs| optimal_grouping(&grid, black_box(rs)).1)
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let grid = Grid::new(4, 4);
    let (trace, _) = windowed(Benchmark::MatMulCode, grid, 16, 2, 1998);
    let spec = MemorySpec::unbounded();
    let mut group = c.benchmark_group("extensions");
    group.sample_size(15);
    group.bench_function("replicate_2copy", |b| {
        b.iter(|| black_box(replicated_schedule(black_box(&trace), spec)))
    });
    group.bench_function("online_eager", |b| {
        b.iter(|| {
            black_box(online_schedule(
                black_box(&trace),
                OnlinePolicy::eager(spec),
            ))
        })
    });
    group.bench_with_input(
        BenchmarkId::new("refine_from", "rowwise-baseline"),
        &trace,
        |b, trace| {
            let base = schedule(Method::Scds, trace, MemoryPolicy::Unbounded);
            b.iter(|| {
                let mut s = base.clone();
                black_box(refine(trace, &mut s, spec, 100))
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_grouping, bench_extensions);
criterion_main!(benches);
