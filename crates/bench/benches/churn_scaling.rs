//! Criterion bench: incremental delta re-solve vs a from-scratch flat
//! re-schedule under 1% churn ticks.
//!
//! The acceptance bar for the incremental engine is ≥ 10× over
//! from-scratch at 1% churn on the 16×16 × 100k instance; `report_churn`
//! records the full comparison (with per-tick parity asserts) as
//! `BENCH_churn.json`. Here a smaller instance keeps the wall time down
//! while preserving the shape: the `incremental` rows re-solve one tick's
//! dirty set in place, the `scratch` rows materialize and re-schedule the
//! whole trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_array::grid::Grid;
use pim_bench::scale::{synthetic_flat, Rng64, SCALE_SEED, SCALE_WINDOWS};
use pim_sched::{flat_lomcds, flat_scds, IncrementalRun, MemoryPolicy, Method};
use pim_trace::edit::TraceDelta;
use pim_trace::ids::DataId;
use std::hint::black_box;

const SIDE: u32 = 16;
const NUM_DATA: usize = 10_000;

/// One churn tick's delta: rewrite one window run for 1% of the data.
/// Simpler than the harness generator (fixed two-ref runs) — Criterion
/// needs a repeatable tick, not workload realism.
fn tick_delta(grid: Grid, rng: &mut Rng64) -> TraceDelta {
    let (w, h) = (grid.width() as u64, grid.height() as u64);
    let mut delta = TraceDelta::new();
    for _ in 0..NUM_DATA / 100 {
        let d = DataId(rng.below(NUM_DATA as u64) as u32);
        let window = rng.below(SCALE_WINDOWS as u64) as u32;
        let x = rng.below(w) as u32;
        let y = rng.below(h) as u32;
        delta.set_run(
            d,
            window,
            [(grid.proc_xy(x, y), 2), (grid.proc_xy(x, y), 1)],
        );
    }
    delta
}

fn bench_churn_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_scaling");
    group.sample_size(10);
    let grid = Grid::new(SIDE, SIDE);
    let pool = pim_par::Pool::auto();
    let policy = MemoryPolicy::Unbounded;
    for (label, method) in [("scds", Method::Scds), ("lomcds", Method::Lomcds)] {
        let flat = synthetic_flat(grid, SCALE_WINDOWS, NUM_DATA, SCALE_SEED);
        let mut engine =
            IncrementalRun::new(flat, method, policy, pool).expect("method supports incremental");
        let mut rng = Rng64::new(SCALE_SEED ^ 0xC4A4);
        group.bench_function(BenchmarkId::new("incremental", label), |b| {
            b.iter(|| {
                let delta = tick_delta(grid, &mut rng);
                engine.incremental(black_box(&delta)).unwrap();
                black_box(engine.schedule().center(DataId(0), 0))
            })
        });
        group.bench_function(BenchmarkId::new("scratch", label), |b| {
            b.iter(|| {
                let edited = engine.trace().materialize();
                let sched = match method {
                    Method::Scds => flat_scds(&edited, policy, pool).unwrap(),
                    _ => flat_lomcds(&edited, policy, pool).unwrap(),
                };
                black_box(sched.center(DataId(0), 0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn_scaling);
criterion_main!(benches);
