//! Smoke tests for the reproduction entry points: the table/figure
//! binaries must run, print the paper's layout, and satisfy the headline
//! orderings — so a broken experiment harness fails CI, not the reader.

use std::process::Command;

fn run(bin_path: &str, args: &[&str]) -> String {
    let out = Command::new(bin_path)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("{bin_path} failed to spawn: {e}"));
    assert!(out.status.success(), "{bin_path} exited nonzero");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn figure1_matches_paper_prose() {
    let out = run(env!("CARGO_BIN_EXE_figure1"), &[]);
    assert!(out.contains("SCDS"));
    assert!(out.contains("(1,0) (1,3) (1,0) (1,1)"), "{out}");
    assert!(out.contains("(1,0) (1,0) (1,0) (1,1)"), "{out}");
    assert!(out.contains("GOMCDS < LOMCDS < SCDS: true"), "{out}");
}

#[test]
fn table1_csv_is_well_formed_and_ordered() {
    let out = run(env!("CARGO_BIN_EXE_table1"), &["--csv"]);
    let mut lines = out.lines();
    assert_eq!(
        lines.next(),
        Some("bench,size,sf,method,comm,improvement_pct")
    );
    let mut rows = 0;
    for line in lines {
        let cols: Vec<&str> = line.split(',').collect();
        assert_eq!(cols.len(), 6, "bad row {line}");
        let sf: u64 = cols[2].parse().unwrap();
        let comm: u64 = cols[4].parse().unwrap();
        assert!(comm <= sf, "scheduler worse than baseline in {line}");
        rows += 1;
    }
    // 5 benchmarks × 3 sizes × 3 methods
    assert_eq!(rows, 45);
}

#[test]
fn table2_csv_shape() {
    let out = run(env!("CARGO_BIN_EXE_table2"), &["--csv"]);
    assert!(out.starts_with("bench,size,sf,method,comm,improvement_pct"));
    assert_eq!(out.lines().count(), 46);
    assert!(out.contains("Grouped-LOMCDS"));
}
