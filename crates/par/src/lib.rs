#![warn(missing_docs)]
//! # pim-par
//!
//! Minimal data-parallel utilities for the PIM scheduling pipeline.
//!
//! Scheduling is embarrassingly parallel across data items: each datum's
//! center sequence depends only on its own reference string (capacity
//! resolution is a separate sequential pass). Rather than pulling in a full
//! task scheduler, this crate provides exactly what the pipeline needs:
//!
//! * [`parallel_map`] — map a function over a slice, dynamic load balancing.
//! * [`parallel_map_chunked`] — the same with caller-chosen chunk size for
//!   very cheap per-item work.
//! * [`parallel_map_with`] — map with once-per-worker state (e.g. a
//!   `pim_sched::Workspace`), so scratch buffers are allocated per thread,
//!   not per item.
//! * [`parallel_reduce`] — map + associative reduction.
//! * [`Pool`] — a tiny configurable thread-count handle; `Pool::serial()`
//!   runs inline, which keeps tests deterministic and lets callers opt out.
//!
//! All helpers run on one process-wide **persistent worker pool**
//! (the private `executor` module): worker threads are spawned on first
//! use, parked on a
//! condvar between calls, and reused for every subsequent job — no
//! per-call thread creation. The submitting thread always participates,
//! work is claimed from a shared atomic index (the pattern from *Rust
//! Atomics and Locks*), outputs land at their input index, and panics
//! from any participant propagate to the caller. Results are therefore
//! bit-identical to a serial run regardless of pool width or timing.

#![allow(clippy::needless_range_loop)] // index loops mirror the work-claiming math

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod counter;
mod executor;
pub mod stats;

/// Execution-width policy for the parallel helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: NonZeroUsize,
}

impl Pool {
    /// Use `threads` worker threads (clamped to at least one).
    pub fn with_threads(threads: usize) -> Self {
        Pool {
            threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"),
        }
    }

    /// Run everything inline on the calling thread.
    pub fn serial() -> Self {
        Pool::with_threads(1)
    }

    /// One thread per available CPU (or serial when parallelism is
    /// unavailable).
    pub fn auto() -> Self {
        let n = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Pool::with_threads(n)
    }

    /// Number of worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

/// Map `f` over `items`, returning outputs in input order.
///
/// Work is distributed dynamically: workers claim the next unprocessed
/// index from a shared atomic counter, so uneven per-item cost (e.g. data
/// with wildly different reference-string lengths) still balances.
pub fn parallel_map<T, U, F>(pool: Pool, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_chunked(pool, items, 1, f)
}

/// Like [`parallel_map`] but workers claim `chunk` consecutive indices at a
/// time, amortizing the atomic traffic when `f` is very cheap.
pub fn parallel_map_chunked<T, U, F>(pool: Pool, items: &[T], chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    parallel_map_with_chunked(pool, items, chunk, || (), |(), i, t| f(i, t))
}

/// Map with once-per-worker state: every participating thread calls
/// `init()` exactly once, then processes its share of items through
/// `f(&mut state, index, item)`. Outputs stay in input order.
///
/// This is the allocation-free hot path for scheduling: `init` builds a
/// scratch workspace, `f` reuses it across every datum the worker claims,
/// so the per-item cost is pure compute no matter how many items there are.
pub fn parallel_map_with<T, U, S, I, F>(pool: Pool, items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    parallel_map_with_chunked(pool, items, 1, init, f)
}

/// [`parallel_map_with`] with caller-chosen chunk size.
pub fn parallel_map_with_chunked<T, U, S, I, F>(
    pool: Pool,
    items: &[T],
    chunk: usize,
    init: I,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let chunk = chunk.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = pool.threads().min(n.div_ceil(chunk));
    if threads <= 1 {
        let mut state = init();
        stats::note_tasks(n as u64);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, i, t))
            .collect();
    }

    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    let out_slots = SliceCells::new(&mut out);

    // Each participant — the calling thread plus up to `threads - 1` pool
    // workers — runs this body once: build state, then drain the counter.
    executor::run_job(threads - 1, &|| {
        let mut state = init();
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            stats::note_tasks((end - start) as u64);
            for i in start..end {
                let value = f(&mut state, i, &items[i]);
                // SAFETY: each index is claimed by exactly one participant
                // via the fetch_add above, so no two threads write the
                // same slot.
                unsafe { out_slots.write(i, Some(value)) };
            }
        }
    });

    out.into_iter()
        .map(|v| v.expect("all indices claimed and written"))
        .collect()
}

/// A chunk size for sharding `n` items over `threads` workers:
/// contiguous runs large enough to amortize the shared-counter traffic and
/// keep each worker streaming cache-adjacent items, while still leaving
/// ~8 chunks per worker for dynamic load balancing. Returns 1 (per-item
/// claiming) for small inputs where chunking cannot help.
pub fn auto_chunk(n: usize, threads: usize) -> usize {
    let per_thread = n.div_ceil(threads.max(1));
    per_thread.div_ceil(8).max(1)
}

/// Map then reduce with an associative `combine`. `identity` must be a
/// neutral element for `combine`.
pub fn parallel_reduce<T, U, F, C>(pool: Pool, items: &[T], identity: U, f: F, combine: C) -> U
where
    T: Sync,
    U: Send + Clone,
    F: Fn(usize, &T) -> U + Sync,
    C: Fn(U, U) -> U,
{
    let mapped = parallel_map(pool, items, f);
    mapped.into_iter().fold(identity, combine)
}

/// Shared mutable access to disjoint slots of a slice across scoped
/// threads.
///
/// Soundness contract: callers must ensure no two threads `write` the same
/// index, and that the slice outlives all uses (guaranteed here by
/// `std::thread::scope`).
struct SliceCells<T> {
    ptr: *mut T,
}

unsafe impl<T: Send> Sync for SliceCells<T> {}
unsafe impl<T: Send> Send for SliceCells<T> {}

impl<T> SliceCells<T> {
    fn new(slice: &mut [T]) -> Self {
        SliceCells {
            ptr: slice.as_mut_ptr(),
        }
    }

    /// Write `value` into slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and no other thread may access slot `i`
    /// concurrently.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { self.ptr.add(i).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(Pool::with_threads(4), &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty() {
        let out: Vec<u32> = parallel_map(Pool::auto(), &[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn map_serial_matches_parallel() {
        let items: Vec<u32> = (0..257).collect();
        let serial = parallel_map(Pool::serial(), &items, |_, &x| x.wrapping_mul(2654435761));
        let par = parallel_map(Pool::with_threads(8), &items, |_, &x| {
            x.wrapping_mul(2654435761)
        });
        assert_eq!(serial, par);
    }

    #[test]
    fn chunked_visits_every_index_once() {
        for chunk in [1usize, 3, 7, 64, 1000] {
            let items: Vec<usize> = (0..500).collect();
            let visits: Vec<AtomicU64> = (0..items.len()).map(|_| AtomicU64::new(0)).collect();
            let _ = parallel_map_chunked(Pool::with_threads(5), &items, chunk, |i, _| {
                visits[i].fetch_add(1, Ordering::Relaxed)
            });
            for (i, v) in visits.iter().enumerate() {
                assert_eq!(v.load(Ordering::Relaxed), 1, "index {i} chunk {chunk}");
            }
        }
    }

    #[test]
    fn auto_chunk_shapes() {
        assert_eq!(auto_chunk(0, 4), 1);
        assert_eq!(auto_chunk(5, 4), 1);
        assert_eq!(auto_chunk(64, 4), 2);
        assert_eq!(auto_chunk(100_000, 4), 3125);
        // serial pool still chunks (amortizes the counter, preserves order)
        assert_eq!(auto_chunk(80, 1), 10);
        // every item is still visited exactly once at any chunk size
        let items: Vec<usize> = (0..1000).collect();
        let chunk = auto_chunk(items.len(), 4);
        let out = parallel_map_chunked(Pool::with_threads(4), &items, chunk, |_, &x| x);
        assert_eq!(out, items);
    }

    #[test]
    fn reduce_sums() {
        let items: Vec<u64> = (1..=100).collect();
        let sum = parallel_reduce(Pool::with_threads(4), &items, 0u64, |_, &x| x, |a, b| a + b);
        assert_eq!(sum, 5050);
    }

    #[test]
    fn pool_thread_counts() {
        assert_eq!(Pool::serial().threads(), 1);
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert!(Pool::auto().threads() >= 1);
        assert_eq!(Pool::default(), Pool::auto());
    }

    #[test]
    fn map_with_state_initialized_once_per_worker() {
        let inits = AtomicU64::new(0);
        let items: Vec<u64> = (0..300).collect();
        let out = parallel_map_with(
            Pool::with_threads(4),
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, _, &x| {
                scratch.clear();
                scratch.push(x);
                scratch[0] * 3
            },
        );
        assert_eq!(out, (0..300).map(|x| x * 3).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        assert!(
            (1..=4).contains(&n),
            "state built once per participant, not per item (got {n})"
        );
    }

    #[test]
    fn map_with_serial_matches_parallel() {
        let items: Vec<u32> = (0..513).collect();
        let run = |pool| {
            parallel_map_with(
                pool,
                &items,
                || 0u32,
                |acc, i, &x| {
                    *acc = acc.wrapping_add(x);
                    x.wrapping_mul(2654435761).wrapping_add(i as u32)
                },
            )
        };
        assert_eq!(run(Pool::serial()), run(Pool::with_threads(8)));
    }

    #[test]
    fn repeated_maps_reuse_pool_workers() {
        // Regression guard for the persistent pool: many small maps should
        // work fine back-to-back (previously each spawned fresh threads).
        for round in 0..64 {
            let items: Vec<u64> = (0..50).collect();
            let out = parallel_map(Pool::with_threads(4), &items, move |_, &x| x + round);
            assert_eq!(out, (0..50).map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn panics_propagate() {
        let items = vec![0u32; 64];
        let result = std::panic::catch_unwind(|| {
            parallel_map(Pool::with_threads(4), &items, |i, _| {
                if i == 33 {
                    panic!("worker bug");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
