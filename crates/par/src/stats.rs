//! Always-on utilization counters for the process-wide worker pool.
//!
//! The pool records how much work it actually does — jobs submitted, items
//! executed per worker thread vs. on the submitting thread, and how often
//! workers park on the condvar — as process-wide relaxed atomics. The
//! counters are cheap enough to leave on unconditionally (one relaxed add
//! per claimed *chunk*, not per item), which keeps `pim-par` free of any
//! metrics dependency: observability layers take a [`snapshot`] before and
//! after a region and diff with [`PoolSnapshot::since`].
//!
//! Counters are cumulative for the process. Concurrent jobs from other
//! threads interleave into the same counters, so a delta brackets the
//! region's own work plus whatever ran alongside it — exact attribution
//! would need per-job plumbing the hot path doesn't want to pay for.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker task counters are tracked for this many worker threads;
/// workers beyond the limit fold into slot `index % MAX_TRACKED_WORKERS`.
/// The pool is grow-only and sized to the machine, so in practice every
/// worker gets its own slot.
pub const MAX_TRACKED_WORKERS: usize = 64;

static JOBS: AtomicU64 = AtomicU64::new(0);
static SUBMITTER_TASKS: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);
static WORKER_TASKS: [AtomicU64; MAX_TRACKED_WORKERS] =
    [const { AtomicU64::new(0) }; MAX_TRACKED_WORKERS];

thread_local! {
    /// Which tracked worker slot this thread charges tasks to; `None` on
    /// every thread that is not a pool worker (tasks count as submitter
    /// participation instead).
    static WORKER_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Mark the current thread as pool worker `index` (called once from the
/// worker loop before it starts draining jobs).
pub(crate) fn register_worker(index: usize) {
    WORKER_SLOT.with(|s| s.set(Some(index % MAX_TRACKED_WORKERS)));
}

/// Count one job handed to the pool.
pub(crate) fn note_job() {
    JOBS.fetch_add(1, Ordering::Relaxed);
}

/// Count one condvar park of an idle worker.
pub(crate) fn note_park() {
    PARKS.fetch_add(1, Ordering::Relaxed);
}

/// Charge `n` executed items to the current thread (worker slot or
/// submitter).
pub(crate) fn note_tasks(n: u64) {
    if n == 0 {
        return;
    }
    match WORKER_SLOT.with(Cell::get) {
        Some(slot) => {
            WORKER_TASKS[slot].fetch_add(n, Ordering::Relaxed);
        }
        None => {
            SUBMITTER_TASKS.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Cumulative pool counters at one point in time. Monotone per field;
/// diff two snapshots with [`since`](PoolSnapshot::since) to bracket a
/// region of interest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolSnapshot {
    /// Jobs submitted to the pool (serial fallbacks are not jobs).
    pub jobs: u64,
    /// Items executed on submitting (non-worker) threads, including the
    /// serial fallback path.
    pub submitter_tasks: u64,
    /// Condvar parks of idle workers.
    pub parks: u64,
    /// Items executed per tracked worker slot.
    pub worker_tasks: Vec<u64>,
}

impl PoolSnapshot {
    /// Items executed on pool workers, summed over every slot.
    pub fn total_worker_tasks(&self) -> u64 {
        self.worker_tasks.iter().sum()
    }

    /// Items executed by the busiest single worker slot.
    pub fn max_worker_tasks(&self) -> u64 {
        self.worker_tasks.iter().copied().max().unwrap_or(0)
    }

    /// Field-wise delta since an `earlier` snapshot (saturating, so a
    /// stale or foreign snapshot can never underflow).
    pub fn since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            jobs: self.jobs.saturating_sub(earlier.jobs),
            submitter_tasks: self.submitter_tasks.saturating_sub(earlier.submitter_tasks),
            parks: self.parks.saturating_sub(earlier.parks),
            worker_tasks: self
                .worker_tasks
                .iter()
                .enumerate()
                .map(|(i, &v)| v.saturating_sub(earlier.worker_tasks.get(i).copied().unwrap_or(0)))
                .collect(),
        }
    }
}

/// Read the cumulative counters.
pub fn snapshot() -> PoolSnapshot {
    PoolSnapshot {
        jobs: JOBS.load(Ordering::Relaxed),
        submitter_tasks: SUBMITTER_TASKS.load(Ordering::Relaxed),
        parks: PARKS.load(Ordering::Relaxed),
        worker_tasks: WORKER_TASKS
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel_map, Pool};

    #[test]
    fn snapshot_delta_accounts_for_every_item() {
        let before = snapshot();
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map(Pool::with_threads(4), &items, |_, &x| x + 1);
        assert_eq!(out.len(), 200);
        let delta = snapshot().since(&before);
        // Other tests may run concurrently, so the delta is a lower bound
        // on this map's work, never less.
        assert!(
            delta.total_worker_tasks() + delta.submitter_tasks >= 200,
            "delta lost items: {delta:?}"
        );
        assert!(delta.jobs >= 1, "a 4-wide map must submit a pool job");
    }

    #[test]
    fn serial_fallback_charges_the_submitter() {
        let before = snapshot();
        let items: Vec<u64> = (0..50).collect();
        let _ = parallel_map(Pool::serial(), &items, |_, &x| x);
        let delta = snapshot().since(&before);
        assert!(delta.submitter_tasks >= 50, "serial items: {delta:?}");
    }

    #[test]
    fn since_saturates_against_foreign_snapshots() {
        let later = snapshot();
        let fake = PoolSnapshot {
            jobs: u64::MAX,
            submitter_tasks: u64::MAX,
            parks: u64::MAX,
            worker_tasks: vec![u64::MAX; MAX_TRACKED_WORKERS],
        };
        let delta = later.since(&fake);
        assert_eq!(delta.jobs, 0);
        assert_eq!(delta.total_worker_tasks(), 0);
        assert_eq!(delta.max_worker_tasks(), 0);
    }
}
