//! The process-wide persistent worker pool.
//!
//! The original helpers spawned fresh OS threads with `std::thread::scope`
//! on every call — fine for one-shot experiments, but the scheduling
//! pipeline calls into `pim-par` once per method per trace, and thread
//! creation dominated small traces. This module keeps a single set of
//! long-lived workers parked on a condvar; each [`run_job`] wakes as many
//! as the caller's [`Pool`](crate::Pool) width asks for.
//!
//! A job is a type-erased `Fn() + Sync` *participant body*: every
//! participant (the submitting thread plus each woken worker) calls it once,
//! and the body loops claiming work indices from an atomic counter until
//! the work is gone. The body borrows the caller's stack (items, output
//! slots, closure); soundness comes from the completion protocol — the
//! submitting thread does not return (or unwind) past [`run_job`] until
//! every worker has finished with the job, enforced by a drop guard, so
//! the lifetime-erased reference never dangles.
//!
//! Panics in any participant are caught, the first payload is kept, and
//! the panic resumes on the submitting thread after all participants have
//! stopped touching the job — same observable behaviour as the scoped
//! implementation.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// One submitted unit of work, shared between the submitter and the
/// workers that picked it up.
struct Job {
    /// Lifetime-erased participant body. Valid until `pending` reaches
    /// zero — the submitter blocks until then, keeping the borrow alive.
    body: &'static (dyn Fn() + Sync),
    /// Workers that may still touch `body` (the submitter is not counted;
    /// it synchronizes by waiting for zero).
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic payload from any participant.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl Job {
    /// Run the body once as one participant, recording a panic instead of
    /// unwinding into the worker loop.
    fn run_participant(&self) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)())) {
            let mut slot = self.panic.lock().unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every worker has finished with this job.
    fn wait(&self) {
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        while *pending > 0 {
            pending = self
                .done
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The global executor: a queue of jobs and the lazily-spawned workers
/// draining it.
struct Executor {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    /// Workers spawned so far (grow-only; idle workers just park).
    spawned: AtomicUsize,
}

static EXECUTOR: OnceLock<Executor> = OnceLock::new();

fn executor() -> &'static Executor {
    EXECUTOR.get_or_init(|| Executor {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

impl Executor {
    /// Grow the worker set to at least `want` threads. Workers never exit;
    /// a later wider pool only tops up the difference.
    fn ensure_workers(&'static self, want: usize) {
        loop {
            let have = self.spawned.load(Ordering::Acquire);
            if have >= want {
                return;
            }
            if self
                .spawned
                .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue; // someone else spawned; re-check
            }
            let spawned = std::thread::Builder::new()
                .name(format!("pim-par-{have}"))
                .spawn(move || self.worker_loop(have));
            if spawned.is_err() {
                // Could not create the thread (resource limit). Undo the
                // reservation; jobs still complete because the submitter
                // participates and drains the counter itself.
                self.spawned.fetch_sub(1, Ordering::AcqRel);
                return;
            }
        }
    }

    fn worker_loop(&self, index: usize) {
        crate::stats::register_worker(index);
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    crate::stats::note_park();
                    q = self
                        .available
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            job.run_participant();
        }
    }
}

/// Run `body` on the calling thread plus up to `extra_workers` pool
/// workers; returns once every participant is done. Panics from any
/// participant resume here.
pub(crate) fn run_job(extra_workers: usize, body: &(dyn Fn() + Sync)) {
    if extra_workers == 0 {
        (body)();
        return;
    }

    // SAFETY: the job (and thus this reference) is only touched by workers
    // that decrement `pending` when finished; `guard` below blocks this
    // frame — on return *and* on unwind — until `pending` is zero, so the
    // erased borrow cannot outlive the referent.
    let body_static: &'static (dyn Fn() + Sync) = unsafe { std::mem::transmute(body) };
    let job = Arc::new(Job {
        body: body_static,
        pending: Mutex::new(extra_workers),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });

    crate::stats::note_job();
    let ex = executor();
    ex.ensure_workers(extra_workers);
    {
        let mut q = ex.queue.lock().unwrap_or_else(PoisonError::into_inner);
        for _ in 0..extra_workers {
            q.push_back(Arc::clone(&job));
        }
    }
    ex.available.notify_all();

    struct WaitGuard<'a>(&'a Job);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let guard = WaitGuard(&job);

    // The submitting thread is a full participant: with a busy pool the
    // work still completes at least serially.
    let own = catch_unwind(AssertUnwindSafe(body));
    drop(guard); // all workers finished; borrows in `body` are dead

    if let Err(payload) = own {
        resume_unwind(payload);
    }
    let worker_panic = job
        .panic
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_extra_workers_runs_inline() {
        let counter = AtomicUsize::new(0);
        run_job(0, &|| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn every_participant_runs_body_once() {
        let calls = AtomicUsize::new(0);
        run_job(3, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        // submitter + 3 workers
        assert_eq!(calls.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn workers_persist_across_jobs() {
        run_job(2, &|| {});
        assert!(executor().spawned.load(Ordering::Acquire) >= 2);
        for _ in 0..16 {
            run_job(2, &|| {});
        }
        // Grow-only to the widest width ever requested in this process
        // (other tests run concurrently and may widen the pool) — but
        // never per-job: 16 width-2 jobs must not have spawned 32 threads.
        let after = executor().spawned.load(Ordering::Acquire);
        assert!(after < 16 * 2, "workers must be reused, not respawned");
    }

    #[test]
    fn worker_panic_resumes_on_submitter() {
        let result = catch_unwind(|| {
            let turn = AtomicUsize::new(0);
            run_job(2, &|| {
                if turn.fetch_add(1, Ordering::Relaxed) == 1 {
                    panic!("participant bug");
                }
            });
        });
        assert!(result.is_err());
        // the pool survives a panicking job
        let ran = AtomicUsize::new(0);
        run_job(2, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }
}
