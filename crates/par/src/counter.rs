//! Sharded counters for cheap cross-thread statistics.
//!
//! The message simulator in `pim-sim` counts hops and per-link crossings
//! from several worker threads. A single shared `AtomicU64` would serialize
//! every increment through one cache line; a sharded counter gives each
//! thread (by id hash) its own padded slot and sums on read — the classic
//! trade of write locality for read cost, appropriate because reads happen
//! once per experiment and writes happen millions of times.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of shards; a small power of two comfortably above typical core
/// counts for this workload.
const SHARDS: usize = 32;

/// Pad each shard to its own cache line to prevent false sharing.
#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

/// A monotonically increasing counter optimized for concurrent increments.
pub struct ShardedCounter {
    shards: Box<[PaddedAtomic]>,
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        let shards = (0..SHARDS)
            .map(|_| PaddedAtomic(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedCounter { shards }
    }

    #[inline]
    fn shard(&self) -> &AtomicU64 {
        // Derive a stable per-thread shard index from the thread id. The
        // hash need not be perfect — collisions only cost contention.
        use std::hash::{Hash, Hasher};
        let mut h = std::hash::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS].0
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shard().fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum across all shards. Concurrent increments may or may not be
    /// visible; call after joining writers for an exact total.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Reset to zero. Not linearizable against concurrent writers.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedCounter")
            .field("value", &self.get())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_single_threaded() {
        let c = ShardedCounter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counts_exactly_across_threads() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn debug_shows_value() {
        let c = ShardedCounter::new();
        c.add(7);
        assert!(format!("{c:?}").contains('7'));
    }
}
