//! One unified record per scheduling run: analytic cost, routed traffic
//! and collected [`Metrics`] side by side.
//!
//! The analytic model (`pim-sched`), the routed simulation (this crate)
//! and the observability layer (`pim-metrics`) each describe the same run
//! from a different angle. [`RunReport`] flattens all three into a single
//! serializable row — the export format behind `pim-cli run --metrics`
//! and the per-row `"metrics"` objects in `BENCH_sched.json` — and
//! [`collect_run_report`] is the one-call front end that produces it.
//!
//! JSON is hand-rolled ([`RunReport::to_json`]): the vendored `serde`
//! shim provides derive markers only, no serializer.

use crate::cycle::CycleResult;
use crate::error::RunError;
use crate::report::SimReport;
use pim_par::Pool;
use pim_sched::schedule::{CostBreakdown, Schedule};
use pim_sched::{MemoryPolicy, Metrics, MetricsReport, Run};
use pim_trace::window::WindowedTrace;
use serde::Serialize;

/// Everything one run produced, in export order.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Registry name of the scheduler that produced the run.
    pub scheduler: String,
    /// Memory policy the run scheduled under (debug form).
    pub policy: String,
    /// Analytic total cost — must equal `total_hop_volume`.
    pub analytic_total: u64,
    /// Analytic volume-weighted reference traffic.
    pub analytic_reference: u64,
    /// Analytic inter-window movement traffic.
    pub analytic_movement: u64,
    /// Routed hop-volume over all windows.
    pub total_hop_volume: u64,
    /// Routed fetch hop-volume.
    pub fetch_hop_volume: u64,
    /// Routed move hop-volume.
    pub move_hop_volume: u64,
    /// Sum of per-window completion-time lower bounds.
    pub completion_time: u64,
    /// Sum of per-window *simulated* completion cycles (cycle-accurate,
    /// under link contention) — always ≥ `completion_time`.
    pub simulated_completion_cycles: u64,
    /// Largest per-window peak of flits simultaneously in flight.
    pub peak_in_flight: usize,
    /// Simulated completion cycle of every window, in window order.
    pub window_completion_cycles: Vec<u64>,
    /// Sum of per-window completion cycles under precedence-gated release
    /// ([`crate::simulate_cycles_dag`]), when the run carried a task DAG.
    pub dag_completion_cycles: Option<u64>,
    /// Per-window gated completion cycles (empty without a DAG).
    pub dag_window_completion_cycles: Vec<u64>,
    /// Most loaded link (`"src->dst"`), if any traffic flowed.
    pub hottest_link: Option<String>,
    /// Volume on the hottest link (0 when no traffic flowed).
    pub hottest_link_volume: u64,
    /// Mean volume over links that carried traffic.
    pub mean_active_link_volume: f64,
    /// Hottest over mean active link volume.
    pub link_imbalance: f64,
    /// Scheduler-side observability (cache, phases, placements, pool).
    pub metrics: MetricsReport,
}

impl RunReport {
    /// Assemble a report from the pieces a caller already has (the bench
    /// tables schedule and simulate themselves; [`collect_run_report`]
    /// does the whole pipeline for everyone else).
    pub fn from_parts(
        scheduler: &str,
        policy: MemoryPolicy,
        analytic: CostBreakdown,
        sim: &SimReport,
        cycles: &[CycleResult],
        metrics: MetricsReport,
    ) -> Self {
        let (hottest_link, hottest_link_volume) = match sim.hottest_link() {
            Some((l, v)) => (Some(l.to_string()), v),
            None => (None, 0),
        };
        RunReport {
            scheduler: scheduler.to_string(),
            policy: format!("{policy:?}"),
            analytic_total: analytic.total(),
            analytic_reference: analytic.reference,
            analytic_movement: analytic.movement,
            total_hop_volume: sim.total_hop_volume(),
            fetch_hop_volume: sim.total_fetch_hop_volume(),
            move_hop_volume: sim.total_move_hop_volume(),
            completion_time: sim.total_completion_time(),
            simulated_completion_cycles: cycles.iter().map(|c| c.completion_cycle).sum(),
            peak_in_flight: cycles.iter().map(|c| c.peak_in_flight).max().unwrap_or(0),
            window_completion_cycles: cycles.iter().map(|c| c.completion_cycle).collect(),
            dag_completion_cycles: None,
            dag_window_completion_cycles: Vec::new(),
            hottest_link,
            hottest_link_volume,
            mean_active_link_volume: sim.mean_active_link_volume(),
            link_imbalance: sim.link_imbalance(),
            metrics,
        }
    }

    /// Attach precedence-gated cycle results (`pim-cli run --dag`, the
    /// DAG bench tables): the report gains a `"dag"` JSON section.
    pub fn with_dag_cycles(mut self, cycles: &[CycleResult]) -> Self {
        self.dag_completion_cycles = Some(cycles.iter().map(|c| c.completion_cycle).sum());
        self.dag_window_completion_cycles = cycles.iter().map(|c| c.completion_cycle).collect();
        self
    }

    /// Serialize as one JSON object. Non-finite float fields render as
    /// `0.0` — the struct's fields are public, and a hand-assembled report
    /// must not be able to emit bare `NaN` (invalid JSON).
    pub fn to_json(&self) -> String {
        let finite = |v: f64| if v.is_finite() { v } else { 0.0 };
        let hottest = match &self.hottest_link {
            Some(l) => format!("\"{}\"", escape_json(l)),
            None => "null".to_string(),
        };
        let windows = self
            .window_completion_cycles
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let dag = match self.dag_completion_cycles {
            Some(total) => format!(
                "\"dag\":{{\"completion_cycles\":{},\"window_completion_cycles\":[{}]}},",
                total,
                self.dag_window_completion_cycles
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"scheduler\":\"{}\",\"policy\":\"{}\",",
                "\"analytic\":{{\"total\":{},\"reference\":{},\"movement\":{}}},",
                "\"sim\":{{\"total_hop_volume\":{},\"fetch_hop_volume\":{},",
                "\"move_hop_volume\":{},\"completion_time\":{},",
                "\"hottest_link\":{},\"hottest_link_volume\":{},",
                "\"mean_active_link_volume\":{:.4},\"link_imbalance\":{:.4}}},",
                "\"cycle\":{{\"completion_cycles\":{},\"peak_in_flight\":{},",
                "\"window_completion_cycles\":[{}]}},{}",
                "\"metrics\":{}}}"
            ),
            escape_json(&self.scheduler),
            escape_json(&self.policy),
            self.analytic_total,
            self.analytic_reference,
            self.analytic_movement,
            self.total_hop_volume,
            self.fetch_hop_volume,
            self.move_hop_volume,
            self.completion_time,
            hottest,
            self.hottest_link_volume,
            finite(self.mean_active_link_volume),
            finite(self.link_imbalance),
            self.simulated_completion_cycles,
            self.peak_in_flight,
            windows,
            dag,
            self.metrics.to_json(),
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// enough for scheduler names, policy debug strings and link labels.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Schedule `name` over `trace` under `policy`, simulate the result (both
/// the routed hop-volume pass and the cycle-accurate pass), and return the
/// unified report (plus the schedule for further use).
///
/// `metrics` decides the observability depth: pass
/// [`Metrics::enabled()`] to collect cache/phase/placement/pool data, or
/// [`Metrics::disabled()`] for a zero-overhead run whose report carries
/// `"enabled": false` and zeros. The schedule is bit-identical either way
/// (property-tested in the conformance suite). Either pipeline half can
/// fail, hence the combined [`RunError`].
pub fn collect_run_report(
    name: &str,
    trace: &WindowedTrace,
    policy: MemoryPolicy,
    pool: Pool,
    metrics: Metrics,
) -> Result<(Schedule, RunReport), RunError> {
    let schedule = Run::new(trace)
        .policy(policy)
        .parallel(pool)
        .metrics(metrics.clone())
        .run_named(name)
        .map_err(RunError::Sched)?;
    let sim = crate::simulate(trace, &schedule, pool);
    let cycles = crate::cycle::simulate_cycles_observed(trace, &schedule, pool, &metrics)
        .map_err(RunError::Sim)?;
    let analytic = schedule.evaluate(trace);
    let canonical = pim_sched::registry()
        .get(name)
        .map(|s| s.name())
        .unwrap_or(name);
    let report =
        RunReport::from_parts(canonical, policy, analytic, &sim, &cycles, metrics.report());
    Ok((schedule, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    /// The paper's running example shape: a 4×4 array.
    fn paper_trace() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 2)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 1), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 2), 4)]),
                ],
            ],
        )
    }

    #[test]
    fn total_hop_volume_equals_analytic_cost() {
        let trace = paper_trace();
        for name in ["SCDS", "LOMCDS", "GOMCDS"] {
            let (schedule, report) = collect_run_report(
                name,
                &trace,
                MemoryPolicy::Unbounded,
                Pool::serial(),
                Metrics::enabled(),
            )
            .unwrap();
            assert_eq!(
                report.total_hop_volume,
                schedule.evaluate(&trace).total(),
                "{name}: routed volume vs analytic cost"
            );
            assert_eq!(report.analytic_total, report.total_hop_volume);
            assert!(report.metrics.enabled);
            // cycle-accurate completion can never beat the lower bound
            assert!(report.simulated_completion_cycles >= report.completion_time);
            assert_eq!(
                report.window_completion_cycles.len(),
                trace.num_windows(),
                "one simulated completion per window"
            );
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let trace = paper_trace();
        let err = collect_run_report(
            "no-such",
            &trace,
            MemoryPolicy::Unbounded,
            Pool::serial(),
            Metrics::disabled(),
        )
        .expect_err("unknown scheduler");
        assert!(matches!(
            err,
            RunError::Sched(pim_sched::SchedError::UnknownScheduler(_))
        ));
    }

    #[test]
    fn json_has_the_three_sections() {
        let trace = paper_trace();
        let (_, report) = collect_run_report(
            "gomcds",
            &trace,
            MemoryPolicy::Capacity(2),
            Pool::serial(),
            Metrics::enabled(),
        )
        .unwrap();
        let json = report.to_json();
        for key in [
            "\"scheduler\":\"GOMCDS\"",
            "\"policy\":",
            "\"analytic\":",
            "\"sim\":",
            "\"total_hop_volume\":",
            "\"hottest_link\":",
            "\"cycle\":",
            "\"completion_cycles\":",
            "\"peak_in_flight\":",
            "\"window_completion_cycles\":[",
            "\"metrics\":",
            "\"enabled\": true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("\\u{"), "raw rust escapes leaked");
    }

    #[test]
    fn dag_section_appears_only_when_attached() {
        let trace = paper_trace();
        let (schedule, report) = collect_run_report(
            "gomcds",
            &trace,
            MemoryPolicy::Unbounded,
            Pool::serial(),
            Metrics::disabled(),
        )
        .unwrap();
        assert!(!report.to_json().contains("\"dag\":"));
        // Edge-free cover DAG: gated cycles equal the plain ones.
        let mut tasks = Vec::new();
        for w in 0..trace.num_windows() {
            for (d, rs) in trace.iter_data() {
                if !rs.window(w).is_empty() {
                    tasks.push(pim_trace::dag::Task {
                        window: w as u32,
                        data: vec![d],
                        wcet: 1,
                    });
                }
            }
        }
        let dag = pim_trace::dag::TaskDag::new(trace.num_windows(), tasks, vec![]).unwrap();
        let gated = crate::simulate_cycles_dag(&trace, &schedule, &dag, Pool::serial()).unwrap();
        let report = report.with_dag_cycles(&gated);
        assert_eq!(
            report.dag_completion_cycles,
            Some(report.simulated_completion_cycles)
        );
        let json = report.to_json();
        assert!(json.contains("\"dag\":{\"completion_cycles\":"), "{json}");
        assert!(json.contains("\"window_completion_cycles\":["), "{json}");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
