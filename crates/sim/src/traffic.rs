//! Per-processor traffic accounting.
//!
//! Complements [`crate::report::SimReport`]'s per-link view with a
//! per-node one: how much volume each processor injects (as a datum's
//! center serving remote references, or as the source of a move), receives
//! (as a referencing processor or a move target), and forwards (as an
//! intermediate hop on someone else's x-y route). Forwarding traffic is
//! what PIM designers fear most — it steals memory bandwidth from the
//! node's own compute — so schedulers that reduce total hops *and* spread
//! forwarding matter.

use crate::engine::window_messages;
use pim_array::grid::{Grid, ProcId};
use pim_array::routing::visit_xy_route;
use pim_sched::schedule::Schedule;
use pim_trace::window::WindowedTrace;
use serde::{Deserialize, Serialize};

/// Volume totals for one processor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTraffic {
    /// Volume originating here (message source).
    pub injected: u64,
    /// Volume terminating here (message destination).
    pub received: u64,
    /// Volume passing through as an intermediate hop.
    pub forwarded: u64,
}

impl NodeTraffic {
    /// Everything this node's network interface handles.
    pub fn total(&self) -> u64 {
        self.injected + self.received + self.forwarded
    }
}

/// Per-processor traffic of a whole (trace, schedule) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMap {
    nodes: Vec<NodeTraffic>,
}

impl TrafficMap {
    /// Traffic of one processor.
    pub fn node(&self, p: ProcId) -> NodeTraffic {
        self.nodes[p.index()]
    }

    /// Iterate `(proc, traffic)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, NodeTraffic)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &t)| (ProcId(i as u32), t))
    }

    /// Total forwarded volume — pure overhead on third-party nodes.
    pub fn total_forwarded(&self) -> u64 {
        self.nodes.iter().map(|n| n.forwarded).sum()
    }

    /// The processor whose interface handles the most volume.
    pub fn busiest(&self) -> (ProcId, NodeTraffic) {
        self.iter()
            .max_by_key(|&(p, t)| (t.total(), u32::MAX - p.0))
            .expect("non-empty grid")
    }
}

/// Route every transfer and accumulate per-node traffic.
pub fn traffic_map(trace: &WindowedTrace, schedule: &Schedule) -> TrafficMap {
    let grid: Grid = trace.grid();
    let mut nodes = vec![NodeTraffic::default(); grid.num_procs()];
    for w in 0..trace.num_windows() {
        for m in window_messages(trace, schedule, w) {
            if m.is_local() {
                continue;
            }
            let vol = m.volume as u64;
            nodes[m.src.index()].injected += vol;
            nodes[m.dst.index()].received += vol;
            visit_xy_route(&grid, m.src, m.dst, |p| {
                if p != m.src && p != m.dst {
                    nodes[p.index()].forwarded += vol;
                }
            });
        }
    }
    TrafficMap { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;

    use pim_trace::window::{WindowRefs, WindowedTrace};

    #[test]
    fn single_transfer_accounting() {
        let grid = Grid::new(4, 4);
        // datum at (0,0), referenced 3 times from (2,0): route crosses (1,0)
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([(grid.proc_xy(2, 0), 3)])]],
        );
        let s = Schedule::static_placement(grid, vec![grid.proc_xy(0, 0)], 1);
        let t = traffic_map(&trace, &s);
        assert_eq!(t.node(grid.proc_xy(0, 0)).injected, 3);
        assert_eq!(t.node(grid.proc_xy(2, 0)).received, 3);
        assert_eq!(t.node(grid.proc_xy(1, 0)).forwarded, 3);
        assert_eq!(t.total_forwarded(), 3);
        let (busiest, traffic) = t.busiest();
        assert_eq!(traffic.total(), 3);
        // all three nodes tie at 3; tie-break favours the lowest id
        assert_eq!(busiest, grid.proc_xy(0, 0));
    }

    #[test]
    fn local_references_produce_no_traffic() {
        let grid = Grid::new(2, 2);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([(grid.proc_xy(1, 1), 9)])]],
        );
        let s = Schedule::static_placement(grid, vec![grid.proc_xy(1, 1)], 1);
        let t = traffic_map(&trace, &s);
        assert!(t.iter().all(|(_, n)| n.total() == 0));
    }

    #[test]
    fn moves_counted_as_injected_and_received() {
        let grid = Grid::new(4, 4);
        let trace =
            WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new(), WindowRefs::new()]]);
        let s = Schedule::new(grid, vec![vec![grid.proc_xy(0, 0), grid.proc_xy(0, 2)]]);
        let t = traffic_map(&trace, &s);
        assert_eq!(t.node(grid.proc_xy(0, 0)).injected, 1);
        assert_eq!(t.node(grid.proc_xy(0, 2)).received, 1);
        assert_eq!(t.node(grid.proc_xy(0, 1)).forwarded, 1);
    }
}
