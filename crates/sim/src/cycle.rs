//! Cycle-level network simulation.
//!
//! [`crate::contention`] gives a closed-form *lower bound* on a window's
//! completion time; this module actually clocks the mesh: store-and-forward
//! flit transport, one flit per link per cycle, FIFO arbitration with
//! deterministic tie-breaking (oldest flit first, then lowest message id).
//! It reports the cycle at which the last flit of the window arrives.
//!
//! Invariants (tested):
//!
//! * simulated completion ≥ the analytic lower bound, always;
//! * a single message completes in exactly `distance + volume − 1` cycles
//!   (wormhole pipelining across store-and-forward hops of 1-flit depth);
//! * total delivered flit-hops equal the analytic hop-volume.
//!
//! ## Event-driven engine, brute-force oracle
//!
//! [`run_window`] is queue-driven: each message's x-y route is flattened
//! **once** into a slice of dense link slots, its `volume` flits exist only
//! as per-hop `sent`/`avail` counters, and every link owns a tiny priority
//! queue holding at most one entry per waiting message hop — the head
//! flit, keyed by `(flit index, message id)`, which is exactly the
//! injection-order priority the brute-force loop arbitrates by. Each
//! simulated cycle then costs `O(active links · log queue)` instead of
//! `O(flits in flight)`: blocked traffic waits in its queue for free, and
//! a cycle with no eligible link never runs (the loop ends — in this
//! model some flit moves every cycle, so active cycles are dense).
//!
//! The seed's literal clock-every-flit loop survives as
//! [`run_window_oracle`]; the two are pinned bit-identical on
//! `(completion_cycle, flit_hops, peak_in_flight)` over random grids and
//! message sets in `tests/cycle_props.rs`, the same oracle pattern the
//! cost cache and grouping rework used.
//!
//! The model is intentionally minimal — infinite node buffers, no
//! virtual channels — because its role is to show that hop-volume savings
//! translate into wall-clock savings under contention, not to model a
//! specific router.
//!
//! ## Precedence-gated release
//!
//! [`CycleSim::run_window_gated`] generalizes injection: given a
//! [`WindowPrecedence`] (one window's gating, distilled from a
//! [`TaskDag`]), a task's messages enter the network only once every
//! intra-window predecessor task has delivered all of its traffic —
//! completion-triggered release instead of all-at-window-start. Queue
//! keys become `(release cycle + flit index, message id)`, which is still
//! exactly injection order; with no precedence every release is 0, so the
//! gated engine is bit-identical to [`run_window`] (pinned by tests).
//! Cross-window DAG edges need no gating here: windows are simulated
//! independently and their completions summed, which is a barrier no
//! intra-window release can cross.

use crate::error::{SimError, SAFETY_VALVE_CYCLES};
use crate::message::{Message, MessageKind};
use pim_array::grid::{Grid, ProcId};
use pim_array::routing::{visit_xy_links, xy_route, LinkIndex};
use pim_sched::Metrics;
use pim_trace::dag::TaskDag;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of clocking one window's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleResult {
    /// Cycle at which the last flit arrived (0 for no traffic).
    pub completion_cycle: u64,
    /// Total flit-hops delivered; equals the analytic hop-volume.
    pub flit_hops: u64,
    /// Peak number of flits in flight in any single cycle.
    pub peak_in_flight: usize,
}

impl CycleResult {
    const EMPTY: CycleResult = CycleResult {
        completion_cycle: 0,
        flit_hops: 0,
        peak_in_flight: 0,
    };
}

/// A link's queue entry: the *head* waiting flit of one message at one
/// hop. Ordered by `(injection cycle, message id)` — release cycle plus
/// flit index, the same priority the oracle's injection-sorted scan gives
/// (releases are all 0 without precedence) — with the flattened hop index
/// carried as payload.
type QueueEntry = Reverse<(u64, u32)>;

fn entry(inject_cycle: u64, msg: usize, hop: usize) -> QueueEntry {
    Reverse(((inject_cycle << 32) | msg as u64, hop as u32))
}

/// Group id for messages no task owns (move-only traffic of data with no
/// references in the window): released at cycle 0, never gated.
const UNGATED: u32 = u32::MAX;

/// Reusable event-driven simulator for one grid.
///
/// Construction sizes the per-link queues once; [`CycleSim::run_window`]
/// reuses every buffer, so a worker thread clocking many windows
/// allocates only when a window is larger than any it has seen before
/// (the same high-water discipline as `pim_sched::Workspace`).
pub struct CycleSim {
    grid: Grid,
    links: LinkIndex,
    /// Flattened routes of all messages: one dense link slot per hop.
    route: Vec<u32>,
    /// Per-message offset into `route`; one trailing sentinel.
    m_start: Vec<u32>,
    /// Per-message flit count.
    m_vol: Vec<u32>,
    /// Per hop: flits already sent across this hop's link.
    sent: Vec<u32>,
    /// Per hop (downstream of the source): flits arrived and not yet sent.
    avail: Vec<u32>,
    /// Per link slot: waiting message heads, highest priority first.
    queues: Vec<BinaryHeap<QueueEntry>>,
    /// Per link slot: already scheduled for the next cycle.
    scheduled: Vec<bool>,
    /// Links with at least one eligible head this cycle / next cycle.
    active: Vec<u32>,
    active_next: Vec<u32>,
    /// Flits that crossed a link this cycle and land one hop downstream
    /// at the next: `(flattened hop, message id)`.
    arrivals: Vec<(u32, u32)>,
    /// Injection-rate deltas for the peak-in-flight sweep.
    rate_delta: Vec<i64>,
    /// Flits leaving the network per cycle, for the same sweep.
    retire_cnt: Vec<u32>,
    /// Per-message release cycle (all 0 without precedence).
    m_release: Vec<u64>,
    /// Per-message owning task group, [`UNGATED`] when none (gated runs).
    m_group: Vec<u32>,
    /// Per group: gated messages not yet fully delivered.
    g_outstanding: Vec<u32>,
    /// Per group: intra-window predecessor groups not yet complete.
    g_pred_left: Vec<u32>,
    /// CSR offsets/ids of each group's flattened messages.
    g_msg_off: Vec<u32>,
    g_msg_adj: Vec<u32>,
    /// Groups whose last message retired this cycle.
    done_buf: Vec<u32>,
    /// Groups whose predecessor count just hit zero (release worklist).
    worklist: Vec<u32>,
}

impl CycleSim {
    /// Build a simulator for `grid`.
    pub fn new(grid: Grid) -> Self {
        let links = LinkIndex::new(grid);
        let slots = links.num_slots();
        CycleSim {
            grid,
            links,
            route: Vec::new(),
            m_start: Vec::new(),
            m_vol: Vec::new(),
            sent: Vec::new(),
            avail: Vec::new(),
            queues: (0..slots).map(|_| BinaryHeap::new()).collect(),
            scheduled: vec![false; slots],
            active: Vec::new(),
            active_next: Vec::new(),
            arrivals: Vec::new(),
            rate_delta: Vec::new(),
            retire_cnt: Vec::new(),
            m_release: Vec::new(),
            m_group: Vec::new(),
            g_outstanding: Vec::new(),
            g_pred_left: Vec::new(),
            g_msg_off: Vec::new(),
            g_msg_adj: Vec::new(),
            done_buf: Vec::new(),
            worklist: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.route.clear();
        self.m_start.clear();
        self.m_vol.clear();
        self.sent.clear();
        self.avail.clear();
        self.active.clear();
        self.active_next.clear();
        self.arrivals.clear();
        self.rate_delta.clear();
        self.retire_cnt.clear();
        self.m_release.clear();
        self.m_group.clear();
        self.g_outstanding.clear();
        self.g_pred_left.clear();
        self.g_msg_off.clear();
        self.g_msg_adj.clear();
        self.done_buf.clear();
        self.worklist.clear();
        debug_assert!(self.queues.iter().all(|q| q.is_empty()));
        debug_assert!(self.scheduled.iter().all(|s| !s));
    }

    fn schedule(&mut self, link: usize) {
        if !self.scheduled[link] {
            self.scheduled[link] = true;
            self.active_next.push(link as u32);
        }
    }

    /// Clock one window's messages to completion.
    ///
    /// Flits of message `m` are injected one per cycle starting at cycle 0
    /// (a node can source one flit of each of its messages per cycle — the
    /// serialization bottleneck is the links, which is what we study).
    ///
    /// Bit-identical to [`run_window_oracle`] on
    /// `(completion_cycle, flit_hops, peak_in_flight)`; the event-driven
    /// path refuses up front with [`SimError::NoProgress`] when the
    /// window's flit-hop volume reaches [`SAFETY_VALVE_CYCLES`] (its cycle
    /// count is bounded by its hop volume, so the oracle's in-loop valve
    /// could only ever trip past that point).
    pub fn run_window(&mut self, messages: &[Message]) -> Result<CycleResult, SimError> {
        self.run_window_gated(messages, None)
    }

    /// [`CycleSim::run_window`] under completion-triggered release: each
    /// message belongs to a task group (per `prec`, built from the same
    /// `messages` slice), and a group's messages are injected only once
    /// every intra-window predecessor group has delivered all of its
    /// traffic — one cycle after the predecessor's last flit crosses its
    /// final link. Groups with no gated traffic (all local or
    /// zero-volume) complete the moment they release and cascade. With
    /// `prec == None` every message releases at cycle 0 and the result is
    /// bit-identical to [`CycleSim::run_window`].
    pub fn run_window_gated(
        &mut self,
        messages: &[Message],
        prec: Option<&WindowPrecedence>,
    ) -> Result<CycleResult, SimError> {
        self.reset();

        // Flatten every route once: no per-flit route clone, no link
        // lookup per hop per cycle.
        let grid = self.grid;
        let links = self.links;
        let mut hop_volume: u64 = 0;
        for (i, m) in messages.iter().enumerate() {
            if m.is_local() || m.volume == 0 {
                continue;
            }
            let start = self.route.len();
            self.m_start.push(start as u32);
            self.m_vol.push(m.volume);
            if let Some(p) = prec {
                self.m_group.push(p.msg_group[i]);
            }
            let route = &mut self.route;
            visit_xy_links(&grid, m.src, m.dst, |l| {
                route.push(links.index_of(l) as u32);
            });
            hop_volume += (self.route.len() - start) as u64 * m.volume as u64;
        }
        self.m_start.push(self.route.len() as u32);
        if self.m_vol.is_empty() {
            return Ok(CycleResult::EMPTY);
        }
        if hop_volume >= SAFETY_VALVE_CYCLES {
            return Err(SimError::NoProgress {
                cycle: SAFETY_VALVE_CYCLES,
            });
        }

        self.sent.resize(self.route.len(), 0);
        self.avail.resize(self.route.len(), 0);
        self.m_release.resize(self.m_vol.len(), 0);

        match prec {
            None => {
                // The classic model: everything enters at window start.
                for msg in 0..self.m_vol.len() {
                    self.inject(msg, 0);
                }
            }
            Some(p) => {
                debug_assert_eq!(
                    p.msg_group.len(),
                    messages.len(),
                    "WindowPrecedence built from a different message slice"
                );
                let ng = p.num_groups();
                self.g_pred_left.extend_from_slice(&p.indeg);
                self.g_outstanding.resize(ng, 0);
                self.g_msg_off.resize(ng + 1, 0);
                for &g in &self.m_group {
                    if g != UNGATED {
                        self.g_outstanding[g as usize] += 1;
                        self.g_msg_off[g as usize + 1] += 1;
                    }
                }
                for g in 0..ng {
                    self.g_msg_off[g + 1] += self.g_msg_off[g];
                }
                // Counting-sort messages into per-group lists, borrowing
                // `done_buf` as the fill cursor.
                self.g_msg_adj.resize(self.g_msg_off[ng] as usize, 0);
                self.done_buf.extend_from_slice(&self.g_msg_off[..ng]);
                for msg in 0..self.m_group.len() {
                    let g = self.m_group[msg];
                    if g != UNGATED {
                        let c = self.done_buf[g as usize] as usize;
                        self.g_msg_adj[c] = msg as u32;
                        self.done_buf[g as usize] += 1;
                    }
                }
                self.done_buf.clear();
                // Unowned traffic and dependency-free groups release at
                // cycle 0; all-local groups complete instantly, cascading
                // through `drain_releases`.
                for msg in 0..self.m_group.len() {
                    if self.m_group[msg] == UNGATED {
                        self.inject(msg, 0);
                    }
                }
                for g in 0..ng {
                    if self.g_pred_left[g] == 0 {
                        self.worklist.push(g as u32);
                    }
                }
                self.drain_releases(p, 0);
            }
        }

        let mut cycle: u64 = 0;
        let mut completion: u64 = 0;
        let mut flit_hops: u64 = 0;
        loop {
            std::mem::swap(&mut self.active, &mut self.active_next);
            self.active_next.clear();
            if self.active.is_empty() {
                break;
            }
            for i in 0..self.active.len() {
                self.scheduled[self.active[i] as usize] = false;
            }
            self.arrivals.clear();

            // Every active link forwards its highest-priority head flit.
            for i in 0..self.active.len() {
                let l = self.active[i] as usize;
                let Reverse((key, hop)) = self.queues[l]
                    .pop()
                    .expect("scheduled link has a queued head flit");
                let msg = (key & u32::MAX as u64) as usize;
                let hop = hop as usize;
                self.sent[hop] += 1;
                flit_hops += 1;
                let next_hop = hop + 1;
                if next_hop == self.m_start[msg + 1] as usize {
                    // Last hop: the flit leaves the network after this cycle.
                    let r = (cycle + 1) as usize;
                    completion = cycle + 1;
                    if self.retire_cnt.len() <= r {
                        self.retire_cnt.resize(r + 1, 0);
                    }
                    self.retire_cnt[r] += 1;
                    if prec.is_some() && self.sent[hop] == self.m_vol[msg] {
                        // Whole message delivered: retire it from its
                        // owning task group.
                        let g = self.m_group[msg];
                        if g != UNGATED {
                            self.g_outstanding[g as usize] -= 1;
                            if self.g_outstanding[g as usize] == 0 {
                                self.done_buf.push(g);
                            }
                        }
                    }
                } else {
                    self.arrivals.push((next_hop as u32, msg as u32));
                }
                // Re-arm this hop's head: at the source the backlog is
                // implicit (flit `sent` exists iff `sent < volume`, and is
                // always injected by the next cycle); downstream it is
                // `avail − sent`.
                let first = self.m_start[msg] as usize;
                let waiting = if hop == first {
                    self.sent[hop] < self.m_vol[msg]
                } else {
                    self.avail[hop] > self.sent[hop]
                };
                if waiting {
                    self.queues[l].push(entry(
                        self.m_release[msg] + self.sent[hop] as u64,
                        msg,
                        hop,
                    ));
                }
                if !self.queues[l].is_empty() {
                    self.schedule(l);
                }
            }

            // Arrivals land one cycle after crossing; apply them only after
            // every link arbitrated, so a flit cannot be forwarded (or win
            // arbitration) in the cycle it arrives.
            for i in 0..self.arrivals.len() {
                let (hop, msg) = self.arrivals[i];
                let (hop, msg) = (hop as usize, msg as usize);
                self.avail[hop] += 1;
                if self.avail[hop] == self.sent[hop] + 1 {
                    let l = self.route[hop] as usize;
                    self.queues[l].push(entry(
                        self.m_release[msg] + self.sent[hop] as u64,
                        msg,
                        hop,
                    ));
                    self.schedule(l);
                }
            }

            // Groups that finished this cycle release their intra-window
            // successors at the next one (the completing flit leaves the
            // network first); deferred past arbitration so a release can
            // never feed a link arbitrated later in the same cycle.
            if let Some(p) = prec {
                if !self.done_buf.is_empty() {
                    for i in 0..self.done_buf.len() {
                        let g = self.done_buf[i];
                        for &s in p.succs(g) {
                            self.g_pred_left[s as usize] -= 1;
                            if self.g_pred_left[s as usize] == 0 {
                                self.worklist.push(s);
                            }
                        }
                    }
                    self.done_buf.clear();
                    self.drain_releases(p, cycle + 1);
                }
            }
            cycle += 1;
        }
        debug_assert_eq!(flit_hops, hop_volume);

        // Peak flits in flight, swept from the aggregate injection ramp
        // (+1 per message per cycle while flits remain) minus retirements.
        let mut rate: i64 = 0;
        let mut in_flight: i64 = 0;
        let mut peak: i64 = 0;
        for c in 0..completion as usize {
            rate += self.rate_delta.get(c).copied().unwrap_or(0);
            in_flight += rate - self.retire_cnt.get(c).copied().unwrap_or(0) as i64;
            peak = peak.max(in_flight);
        }

        Ok(CycleResult {
            completion_cycle: completion,
            flit_hops,
            peak_in_flight: peak as usize,
        })
    }

    /// Release one message at cycle `release`: its head flit enters its
    /// first link's queue and the injection ramp is recorded for the
    /// peak-in-flight sweep. Flit `f` becomes available at the source at
    /// cycle `release + f`, which is exactly its queue key.
    fn inject(&mut self, msg: usize, release: u64) {
        self.m_release[msg] = release;
        let first = self.m_start[msg] as usize;
        self.avail[first] = 1; // flit 0 is at the source on release
        let l = self.route[first] as usize;
        self.queues[l].push(entry(release, msg, first));
        self.schedule(l);
        let lo = release as usize;
        let hi = lo + self.m_vol[msg] as usize;
        if self.rate_delta.len() <= hi {
            self.rate_delta.resize(hi + 1, 0);
        }
        self.rate_delta[lo] += 1;
        self.rate_delta[hi] -= 1;
    }

    /// Release every group on the worklist at cycle `t`, cascading
    /// through groups with no gated traffic: they complete the moment
    /// they release, unblocking their successors at the same cycle
    /// (local work is free, matching the analytic cost model).
    fn drain_releases(&mut self, prec: &WindowPrecedence, t: u64) {
        while let Some(g) = self.worklist.pop() {
            let g = g as usize;
            let lo = self.g_msg_off[g] as usize;
            let hi = self.g_msg_off[g + 1] as usize;
            for k in lo..hi {
                let msg = self.g_msg_adj[k] as usize;
                self.inject(msg, t);
            }
            if self.g_outstanding[g] == 0 {
                for &s in prec.succs(g as u32) {
                    self.g_pred_left[s as usize] -= 1;
                    if self.g_pred_left[s as usize] == 0 {
                        self.worklist.push(s);
                    }
                }
            }
        }
    }
}

/// One window's precedence gating, distilled from a [`TaskDag`]: the
/// owning task group of every message plus the window-internal release
/// edges. Cross-window edges are dropped — the window barrier (windows
/// simulated independently, completions summed) already enforces them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPrecedence {
    /// Per message (same indexing as the slice handed to
    /// [`CycleSim::run_window_gated`]): group id local to this window, or
    /// [`UNGATED`] for move-only traffic of data with no references here.
    msg_group: Vec<u32>,
    /// Intra-window successor CSR over groups.
    succ_off: Vec<u32>,
    succ_adj: Vec<u32>,
    /// Per group: number of intra-window predecessors.
    indeg: Vec<u32>,
}

impl WindowPrecedence {
    /// Distill `dag`'s gating for `window` over that window's `messages`
    /// (as produced by [`crate::engine::window_messages`]).
    ///
    /// Fetch traffic for a datum no task owns means the DAG does not
    /// cover the trace ([`SimError::UnownedMessage`]); move-only traffic
    /// without an owner is legal and rides ungated at cycle 0.
    ///
    /// # Panics
    /// Panics if `window >= dag.num_windows()`;
    /// [`simulate_cycles_dag`] checks the window counts up front.
    pub fn build(
        dag: &TaskDag,
        window: usize,
        messages: &[Message],
    ) -> Result<WindowPrecedence, SimError> {
        let w = window as u32;
        let tasks = dag.tasks_in_window(w);
        let local = |t: u32| {
            tasks
                .binary_search(&t)
                .expect("task listed in its own window") as u32
        };
        let mut msg_group = Vec::with_capacity(messages.len());
        for m in messages {
            let group = match dag.owner(w, m.data) {
                Some(t) => local(t),
                None if m.kind == MessageKind::Move => UNGATED,
                None => {
                    return Err(SimError::UnownedMessage {
                        window: w,
                        datum: m.data.0,
                    })
                }
            };
            msg_group.push(group);
        }
        let mut indeg = vec![0u32; tasks.len()];
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (li, &t) in tasks.iter().enumerate() {
            for &p in dag.preds(t) {
                if dag.task(p).window == w {
                    edges.push((local(p), li as u32));
                    indeg[li] += 1;
                }
            }
        }
        edges.sort_unstable();
        let mut succ_off = vec![0u32; tasks.len() + 1];
        for &(from, _) in &edges {
            succ_off[from as usize + 1] += 1;
        }
        for g in 0..tasks.len() {
            succ_off[g + 1] += succ_off[g];
        }
        let succ_adj = edges.iter().map(|&(_, to)| to).collect();
        Ok(WindowPrecedence {
            msg_group,
            succ_off,
            succ_adj,
            indeg,
        })
    }

    fn num_groups(&self) -> usize {
        self.indeg.len()
    }

    fn succs(&self, g: u32) -> &[u32] {
        let lo = self.succ_off[g as usize] as usize;
        let hi = self.succ_off[g as usize + 1] as usize;
        &self.succ_adj[lo..hi]
    }
}

/// Clock one window's messages to completion (one-shot front end over
/// [`CycleSim`]; build the workspace yourself to amortize it over many
/// windows).
pub fn run_window(grid: &Grid, messages: &[Message]) -> Result<CycleResult, SimError> {
    CycleSim::new(*grid).run_window(messages)
}

/// One flit in transit (oracle representation).
#[derive(Debug, Clone)]
struct Flit {
    /// Remaining route (next hop is `route[pos]` → `route[pos + 1]`).
    route: std::sync::Arc<[ProcId]>,
    pos: usize,
    /// Message id for deterministic arbitration (FIFO by injection order).
    msg: usize,
}

impl Flit {
    fn arrived(&self) -> bool {
        self.pos + 1 == self.route.len()
    }
    fn next_link(&self, links: &LinkIndex) -> usize {
        links.index_of(pim_array::routing::Link {
            from: self.route[self.pos],
            to: self.route[self.pos + 1],
        })
    }
}

/// The seed's brute-force cycle loop, kept as the correctness oracle for
/// [`run_window`]: every flit is materialized and every in-flight flit is
/// visited every cycle. `O(cycles × flits in flight)` — use only for
/// validation and benchmarking the event-driven rewrite against.
pub fn run_window_oracle(grid: &Grid, messages: &[Message]) -> Result<CycleResult, SimError> {
    let links = LinkIndex::new(*grid);
    // Materialize flits: message m with volume v yields v flits injected at
    // cycles 0..v (one per cycle).
    let mut pending: Vec<(u64, Flit)> = Vec::new(); // (injection cycle, flit)
    for (mid, m) in messages.iter().enumerate() {
        if m.is_local() {
            continue;
        }
        let route: std::sync::Arc<[ProcId]> = xy_route(grid, m.src, m.dst).into();
        for f in 0..m.volume {
            pending.push((
                f as u64,
                Flit {
                    route: route.clone(),
                    pos: 0,
                    msg: mid,
                },
            ));
        }
    }
    if pending.is_empty() {
        return Ok(CycleResult::EMPTY);
    }
    // Stable order: by injection cycle, then message id (FIFO fairness).
    pending.sort_by_key(|(c, f)| (*c, f.msg));

    let mut in_flight: Vec<Flit> = Vec::new();
    let mut cycle: u64 = 0;
    let mut flit_hops: u64 = 0;
    let mut peak = 0usize;
    let mut next_pending = 0usize;
    let mut link_busy = vec![false; links.num_slots()];

    while next_pending < pending.len() || !in_flight.is_empty() {
        // inject this cycle's flits
        while next_pending < pending.len() && pending[next_pending].0 <= cycle {
            in_flight.push(pending[next_pending].1.clone());
            next_pending += 1;
        }
        peak = peak.max(in_flight.len());

        // arbitration: flits claim their next link in order (older messages
        // first — the Vec is kept in injection order).
        link_busy.iter_mut().for_each(|b| *b = false);
        let mut still_flying = Vec::with_capacity(in_flight.len());
        for mut flit in in_flight.drain(..) {
            let link = flit.next_link(&links);
            if link_busy[link] {
                still_flying.push(flit); // blocked this cycle
                continue;
            }
            link_busy[link] = true;
            flit.pos += 1;
            flit_hops += 1;
            if !flit.arrived() {
                still_flying.push(flit);
            }
        }
        in_flight = still_flying;
        cycle += 1;

        // safety valve: progress is guaranteed (at least one flit moves per
        // cycle when any is in flight), so this can only trip on a future
        // modelling bug — reported as a typed error, not a panic.
        if cycle >= SAFETY_VALVE_CYCLES {
            return Err(SimError::NoProgress { cycle });
        }
    }
    Ok(CycleResult {
        completion_cycle: cycle,
        flit_hops,
        peak_in_flight: peak,
    })
}

/// Clock every window of a (trace, schedule) pair, in parallel across
/// windows through the persistent `pim-par` pool; each worker reuses one
/// [`CycleSim`] across all the windows it claims. Returns one
/// [`CycleResult`] per window, bit-identical regardless of thread count;
/// the first failing window (in window order) short-circuits the result.
pub fn simulate_cycles(
    trace: &pim_trace::window::WindowedTrace,
    schedule: &pim_sched::schedule::Schedule,
    pool: pim_par::Pool,
) -> Result<Vec<CycleResult>, SimError> {
    simulate_cycles_observed(trace, schedule, pool, &Metrics::disabled())
}

/// [`simulate_cycles`] with observability: records a `cycle-sim` phase
/// around the whole pass and a `cycle-sim/window` phase per window into
/// `metrics` (no-ops on a disabled handle; the results are bit-identical
/// either way).
pub fn simulate_cycles_observed(
    trace: &pim_trace::window::WindowedTrace,
    schedule: &pim_sched::schedule::Schedule,
    pool: pim_par::Pool,
    metrics: &Metrics,
) -> Result<Vec<CycleResult>, SimError> {
    let _whole = metrics.phase("cycle-sim");
    let grid = trace.grid();
    let windows: Vec<usize> = (0..trace.num_windows()).collect();
    pim_par::parallel_map_with(
        pool,
        &windows,
        || CycleSim::new(grid),
        |sim, _, &w| {
            let _t = metrics.phase("cycle-sim/window");
            let msgs = crate::engine::window_messages(trace, schedule, w);
            sim.run_window(&msgs)
        },
    )
    .into_iter()
    .collect()
}

/// Clock every window of a (trace, schedule) pair under completion-
/// triggered release: a task's traffic enters the network only once all
/// its intra-window DAG predecessors have delivered theirs (cross-window
/// edges are already honored by the window barrier). With an edge-free
/// DAG this is bit-identical to [`simulate_cycles`]. Parallel across
/// windows; the first failing window (in window order) short-circuits.
pub fn simulate_cycles_dag(
    trace: &pim_trace::window::WindowedTrace,
    schedule: &pim_sched::schedule::Schedule,
    dag: &TaskDag,
    pool: pim_par::Pool,
) -> Result<Vec<CycleResult>, SimError> {
    if dag.num_windows() != trace.num_windows() {
        return Err(SimError::DagWindows {
            dag: dag.num_windows(),
            trace: trace.num_windows(),
        });
    }
    let grid = trace.grid();
    let windows: Vec<usize> = (0..trace.num_windows()).collect();
    pim_par::parallel_map_with(
        pool,
        &windows,
        || CycleSim::new(grid),
        |sim, _, &w| {
            let msgs = crate::engine::window_messages(trace, schedule, w);
            let prec = WindowPrecedence::build(dag, w, &msgs)?;
            sim.run_window_gated(&msgs, Some(&prec))
        },
    )
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::window_completion_time;
    use crate::message::MessageKind;
    use pim_trace::ids::DataId;

    fn msg(grid: &Grid, sx: u32, sy: u32, dx: u32, dy: u32, vol: u32) -> Message {
        Message {
            src: grid.proc_xy(sx, sy),
            dst: grid.proc_xy(dx, dy),
            volume: vol,
            data: DataId(0),
            window: 0,
            kind: MessageKind::Fetch,
        }
    }

    fn run(grid: &Grid, msgs: &[Message]) -> CycleResult {
        let event = run_window(grid, msgs).expect("event sim");
        let oracle = run_window_oracle(grid, msgs).expect("oracle sim");
        assert_eq!(event, oracle, "event-driven diverged from the oracle");
        event
    }

    #[test]
    fn empty_and_local_are_free() {
        let g = Grid::new(4, 4);
        assert_eq!(run(&g, &[]).completion_cycle, 0);
        let local = msg(&g, 1, 1, 1, 1, 5);
        let r = run(&g, &[local]);
        assert_eq!(r.completion_cycle, 0);
        assert_eq!(r.flit_hops, 0);
    }

    #[test]
    fn zero_volume_messages_are_free() {
        let g = Grid::new(4, 4);
        let r = run(&g, &[msg(&g, 0, 0, 3, 3, 0)]);
        assert_eq!(r, CycleResult::EMPTY);
    }

    #[test]
    fn single_message_takes_dist_plus_volume_minus_one() {
        let g = Grid::new(4, 4);
        for (dist, vol) in [(1u64, 1u32), (3, 1), (3, 4), (6, 2)] {
            let m = msg(
                &g,
                0,
                0,
                dist.min(3) as u32,
                dist.saturating_sub(3) as u32,
                vol,
            );
            let d = g.dist(m.src, m.dst);
            let r = run(&g, &[m]);
            assert_eq!(r.completion_cycle, d + vol as u64 - 1, "d={d} vol={vol}");
            assert_eq!(r.flit_hops, d * vol as u64);
        }
    }

    #[test]
    fn contention_serializes_shared_link() {
        let g = Grid::new(4, 4);
        // two messages share their entire 1-hop route
        let a = msg(&g, 0, 0, 1, 0, 3);
        let b = msg(&g, 0, 0, 1, 0, 3);
        let r = run(&g, &[a, b]);
        // 6 flits over one link: exactly 6 cycles
        assert_eq!(r.completion_cycle, 6);
        assert_eq!(r.flit_hops, 6);
    }

    #[test]
    fn disjoint_messages_run_in_parallel() {
        let g = Grid::new(4, 4);
        let a = msg(&g, 0, 0, 3, 0, 2);
        let b = msg(&g, 0, 3, 3, 3, 2);
        let r = run(&g, &[a, b]);
        assert_eq!(r.completion_cycle, 3 + 2 - 1);
    }

    #[test]
    fn simulated_time_at_least_lower_bound() {
        let g = Grid::new(4, 4);
        let cases: Vec<Vec<Message>> = vec![
            vec![msg(&g, 0, 0, 3, 3, 2), msg(&g, 0, 0, 3, 0, 1)],
            vec![
                msg(&g, 0, 0, 1, 0, 5),
                msg(&g, 0, 0, 2, 0, 5),
                msg(&g, 1, 1, 1, 3, 2),
            ],
            (0..10)
                .map(|i| msg(&g, i % 4, 0, 3 - i % 4, 3, 1 + i % 3))
                .collect(),
        ];
        for msgs in cases {
            let bound = window_completion_time(&g, &msgs);
            let r = run(&g, &msgs);
            assert!(
                r.completion_cycle >= bound,
                "simulated {} < bound {bound}",
                r.completion_cycle
            );
        }
    }

    #[test]
    fn flit_hops_equal_hop_volume() {
        let g = Grid::new(4, 4);
        let msgs = vec![msg(&g, 0, 0, 3, 3, 2), msg(&g, 2, 1, 0, 2, 4)];
        let hop_volume: u64 = msgs
            .iter()
            .map(|m| g.dist(m.src, m.dst) * m.volume as u64)
            .sum();
        assert_eq!(run(&g, &msgs).flit_hops, hop_volume);
    }

    #[test]
    fn peak_in_flight_bounded_by_flits() {
        let g = Grid::new(4, 4);
        let msgs = vec![msg(&g, 0, 0, 3, 3, 3)];
        let r = run(&g, &msgs);
        assert!(r.peak_in_flight <= 3);
        assert!(r.peak_in_flight >= 1);
    }

    #[test]
    fn crossing_and_opposing_traffic_matches_oracle() {
        // A denser mixed case: shared links in both axes, opposing
        // directions, different volumes — the shapes most likely to shake
        // out an arbitration divergence.
        let g = Grid::new(4, 4);
        let msgs = vec![
            msg(&g, 0, 0, 3, 3, 4),
            msg(&g, 3, 3, 0, 0, 4),
            msg(&g, 0, 3, 3, 0, 2),
            msg(&g, 3, 0, 0, 3, 5),
            msg(&g, 1, 1, 1, 1, 9), // local noise between the ids
            msg(&g, 0, 0, 3, 3, 1),
            msg(&g, 2, 0, 2, 3, 7),
        ];
        run(&g, &msgs);
    }

    #[test]
    fn workspace_reuse_is_stateless() {
        let g = Grid::new(4, 4);
        let heavy = vec![msg(&g, 0, 0, 3, 3, 6), msg(&g, 0, 0, 3, 0, 6)];
        let light = vec![msg(&g, 1, 0, 2, 0, 1)];
        let mut sim = CycleSim::new(g);
        let first = sim.run_window(&heavy).unwrap();
        let second = sim.run_window(&light).unwrap();
        let third = sim.run_window(&heavy).unwrap();
        assert_eq!(first, third, "reuse leaked state across windows");
        assert_eq!(second, run_window(&g, &light).unwrap());
    }

    fn dmsg(grid: &Grid, sx: u32, sy: u32, dx: u32, dy: u32, vol: u32, d: u32) -> Message {
        Message {
            data: DataId(d),
            ..msg(grid, sx, sy, dx, dy, vol)
        }
    }

    fn task(w: u32, data: &[u32]) -> pim_trace::dag::Task {
        pim_trace::dag::Task {
            window: w,
            data: data.iter().map(|&d| DataId(d)).collect(),
            wcet: 1,
        }
    }

    fn dag(
        num_windows: usize,
        tasks: Vec<pim_trace::dag::Task>,
        edges: Vec<(u32, u32)>,
    ) -> TaskDag {
        TaskDag::new(num_windows, tasks, edges).expect("valid dag")
    }

    #[test]
    fn edge_free_gating_is_bit_identical() {
        let g = Grid::new(4, 4);
        let msgs = vec![
            dmsg(&g, 0, 0, 3, 3, 4, 0),
            dmsg(&g, 3, 3, 0, 0, 4, 1),
            dmsg(&g, 0, 3, 3, 0, 2, 2),
            dmsg(&g, 1, 1, 1, 1, 9, 3), // local: its group has no traffic
        ];
        let d = dag(
            1,
            vec![task(0, &[0]), task(0, &[1]), task(0, &[2]), task(0, &[3])],
            vec![],
        );
        let prec = WindowPrecedence::build(&d, 0, &msgs).unwrap();
        let plain = run(&g, &msgs);
        let gated = CycleSim::new(g)
            .run_window_gated(&msgs, Some(&prec))
            .unwrap();
        assert_eq!(gated, plain);
    }

    #[test]
    fn chain_gating_delays_the_successor() {
        let g = Grid::new(4, 4);
        let msgs = vec![
            dmsg(&g, 0, 0, 1, 0, 3, 0), // last flit crosses at cycle 2
            dmsg(&g, 2, 0, 3, 0, 1, 1), // disjoint link; alone: 1 cycle
        ];
        let plain = run(&g, &msgs);
        assert_eq!(plain.completion_cycle, 3);
        let d = dag(1, vec![task(0, &[0]), task(0, &[1])], vec![(0, 1)]);
        let prec = WindowPrecedence::build(&d, 0, &msgs).unwrap();
        let gated = CycleSim::new(g)
            .run_window_gated(&msgs, Some(&prec))
            .unwrap();
        // Datum 1 releases at 3, one cycle after datum 0's last flit
        // crossed, and lands at 4; hop volume is unchanged.
        assert_eq!(gated.completion_cycle, 4);
        assert_eq!(gated.flit_hops, plain.flit_hops);
    }

    #[test]
    fn local_only_groups_release_successors_immediately() {
        let g = Grid::new(4, 4);
        let msgs = vec![
            dmsg(&g, 1, 1, 1, 1, 5, 0), // local: never enters the network
            dmsg(&g, 0, 0, 2, 0, 2, 1),
        ];
        let d = dag(1, vec![task(0, &[0]), task(0, &[1])], vec![(0, 1)]);
        let prec = WindowPrecedence::build(&d, 0, &msgs).unwrap();
        let gated = CycleSim::new(g)
            .run_window_gated(&msgs, Some(&prec))
            .unwrap();
        // The predecessor's work is local (free): no gating delay at all.
        assert_eq!(gated, run(&g, &msgs));
    }

    #[test]
    fn unowned_traffic_must_be_move_only() {
        let g = Grid::new(4, 4);
        let d = dag(1, vec![task(0, &[0])], vec![]);
        // A move of a datum with no references in the window rides ungated.
        let mv = Message {
            kind: MessageKind::Move,
            ..dmsg(&g, 0, 0, 1, 0, 1, 7)
        };
        let prec = WindowPrecedence::build(&d, 0, &[mv]).unwrap();
        let r = CycleSim::new(g)
            .run_window_gated(&[mv], Some(&prec))
            .unwrap();
        assert_eq!(r.completion_cycle, 1);
        // A fetch of an unowned datum is a cover violation.
        let fetch = dmsg(&g, 0, 0, 1, 0, 1, 7);
        assert_eq!(
            WindowPrecedence::build(&d, 0, &[fetch]).unwrap_err(),
            SimError::UnownedMessage {
                window: 0,
                datum: 7
            }
        );
    }

    #[test]
    fn dag_sim_matches_plain_on_edge_free_and_cross_window_dags() {
        use pim_trace::builder::TraceBuilder;
        let g = Grid::new(4, 4);
        let mut b = TraceBuilder::new(g, 3);
        b.step()
            .access(g.proc_xy(0, 0), DataId(0))
            .access(g.proc_xy(3, 3), DataId(1));
        b.step()
            .access(g.proc_xy(3, 0), DataId(0))
            .access(g.proc_xy(0, 3), DataId(2));
        b.step().access(g.proc_xy(2, 2), DataId(1));
        let trace = b.finish().window_fixed(1);
        let sched = pim_sched::Run::new(&trace).run_named("gomcds").unwrap();
        // One task per (window, referenced datum), covering the trace.
        let mut tasks = Vec::new();
        for w in 0..trace.num_windows() {
            for (did, rs) in trace.iter_data() {
                if !rs.window(w).is_empty() {
                    tasks.push(pim_trace::dag::Task {
                        window: w as u32,
                        data: vec![did],
                        wcet: 1,
                    });
                }
            }
        }
        let edge_free = TaskDag::new(trace.num_windows(), tasks.clone(), vec![]).unwrap();
        edge_free.validate_cover(&trace).unwrap();
        let plain = simulate_cycles(&trace, &sched, pim_par::Pool::serial()).unwrap();
        let gated =
            simulate_cycles_dag(&trace, &sched, &edge_free, pim_par::Pool::serial()).unwrap();
        assert_eq!(gated, plain);
        // Cross-window edges are covered by the window barrier: adding
        // one changes nothing.
        let t0 = edge_free.tasks_in_window(0)[0];
        let t1 = edge_free.tasks_in_window(1)[0];
        let cross = TaskDag::new(trace.num_windows(), tasks, vec![(t0, t1)]).unwrap();
        let gated2 = simulate_cycles_dag(&trace, &sched, &cross, pim_par::Pool::serial()).unwrap();
        assert_eq!(gated2, plain);
        // A DAG for the wrong window count is a typed error.
        let stub = TaskDag::new(1, vec![], vec![]).unwrap();
        assert_eq!(
            simulate_cycles_dag(&trace, &sched, &stub, pim_par::Pool::serial()).unwrap_err(),
            SimError::DagWindows {
                dag: 1,
                trace: trace.num_windows()
            }
        );
    }

    #[test]
    fn oversized_window_is_a_typed_error() {
        let g = Grid::new(4, 4);
        // 2 · 1 073 741 824 flit-hops ≥ the valve: refused, not clocked.
        let m = msg(&g, 0, 0, 2, 0, 1 << 30);
        assert_eq!(
            run_window(&g, &[m]),
            Err(SimError::NoProgress {
                cycle: SAFETY_VALVE_CYCLES
            })
        );
    }
}
