//! Cycle-level network simulation.
//!
//! [`crate::contention`] gives a closed-form *lower bound* on a window's
//! completion time; this module actually clocks the mesh: store-and-forward
//! flit transport, one flit per link per cycle, FIFO arbitration with
//! deterministic tie-breaking (lowest message id first). It reports the
//! cycle at which the last flit of the window arrives.
//!
//! Invariants (tested):
//!
//! * simulated completion ≥ the analytic lower bound, always;
//! * a single message completes in exactly `distance + volume − 1` cycles
//!   (wormhole pipelining across store-and-forward hops of 1-flit depth);
//! * total delivered flit-hops equal the analytic hop-volume.
//!
//! The model is intentionally minimal — infinite node buffers, no
//! virtual channels — because its role is to show that hop-volume savings
//! translate into wall-clock savings under contention, not to model a
//! specific router.

use crate::message::Message;
use pim_array::grid::{Grid, ProcId};
use pim_array::routing::{xy_route, LinkIndex};

/// Result of clocking one window's messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleResult {
    /// Cycle at which the last flit arrived (0 for no traffic).
    pub completion_cycle: u64,
    /// Total flit-hops delivered; equals the analytic hop-volume.
    pub flit_hops: u64,
    /// Peak number of flits in flight in any single cycle.
    pub peak_in_flight: usize,
}

/// One flit in transit.
#[derive(Debug, Clone)]
struct Flit {
    /// Remaining route (next hop is `route[pos]` → `route[pos + 1]`).
    route: std::sync::Arc<[ProcId]>,
    pos: usize,
    /// Message id for deterministic arbitration (FIFO by injection order).
    msg: usize,
}

impl Flit {
    fn arrived(&self) -> bool {
        self.pos + 1 == self.route.len()
    }
    fn next_link(&self, links: &LinkIndex) -> usize {
        links.index_of(pim_array::routing::Link {
            from: self.route[self.pos],
            to: self.route[self.pos + 1],
        })
    }
}

/// Clock one window's messages to completion.
///
/// Flits of message `m` are injected one per cycle starting at cycle 0 (a
/// node can source one flit of each of its messages per cycle — the
/// serialization bottleneck is the links, which is what we study).
pub fn run_window(grid: &Grid, messages: &[Message]) -> CycleResult {
    let links = LinkIndex::new(*grid);
    // Materialize flits: message m with volume v yields v flits injected at
    // cycles 0..v (one per cycle).
    let mut pending: Vec<(u64, Flit)> = Vec::new(); // (injection cycle, flit)
    for (mid, m) in messages.iter().enumerate() {
        if m.is_local() {
            continue;
        }
        let route: std::sync::Arc<[ProcId]> = xy_route(grid, m.src, m.dst).into();
        for f in 0..m.volume {
            pending.push((
                f as u64,
                Flit {
                    route: route.clone(),
                    pos: 0,
                    msg: mid,
                },
            ));
        }
    }
    if pending.is_empty() {
        return CycleResult {
            completion_cycle: 0,
            flit_hops: 0,
            peak_in_flight: 0,
        };
    }
    // Stable order: by injection cycle, then message id (FIFO fairness).
    pending.sort_by_key(|(c, f)| (*c, f.msg));

    let mut in_flight: Vec<Flit> = Vec::new();
    let mut cycle: u64 = 0;
    let mut flit_hops: u64 = 0;
    let mut peak = 0usize;
    let mut next_pending = 0usize;
    let mut link_busy = vec![false; links.num_slots()];

    while next_pending < pending.len() || !in_flight.is_empty() {
        // inject this cycle's flits
        while next_pending < pending.len() && pending[next_pending].0 <= cycle {
            in_flight.push(pending[next_pending].1.clone());
            next_pending += 1;
        }
        peak = peak.max(in_flight.len());

        // arbitration: flits claim their next link in order (older messages
        // first — the Vec is kept in injection order).
        link_busy.iter_mut().for_each(|b| *b = false);
        let mut still_flying = Vec::with_capacity(in_flight.len());
        for mut flit in in_flight.drain(..) {
            let link = flit.next_link(&links);
            if link_busy[link] {
                still_flying.push(flit); // blocked this cycle
                continue;
            }
            link_busy[link] = true;
            flit.pos += 1;
            flit_hops += 1;
            if !flit.arrived() {
                still_flying.push(flit);
            }
        }
        in_flight = still_flying;
        cycle += 1;

        // safety valve: progress is guaranteed (at least one flit moves per
        // cycle when any is in flight), so this cannot trigger; it guards
        // against future modelling bugs.
        assert!(
            cycle < 1_000_000_000,
            "cycle simulator failed to make progress"
        );
    }
    CycleResult {
        completion_cycle: cycle,
        flit_hops,
        peak_in_flight: peak,
    }
}

/// Clock every window of a (trace, schedule) pair, in parallel across
/// windows. Returns one [`CycleResult`] per window.
pub fn simulate_cycles(
    trace: &pim_trace::window::WindowedTrace,
    schedule: &pim_sched::schedule::Schedule,
    pool: pim_par::Pool,
) -> Vec<CycleResult> {
    let grid = trace.grid();
    let windows: Vec<usize> = (0..trace.num_windows()).collect();
    pim_par::parallel_map(pool, &windows, |_, &w| {
        let msgs = crate::engine::window_messages(trace, schedule, w);
        run_window(&grid, &msgs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::window_completion_time;
    use crate::message::MessageKind;
    use pim_trace::ids::DataId;

    fn msg(grid: &Grid, sx: u32, sy: u32, dx: u32, dy: u32, vol: u32) -> Message {
        Message {
            src: grid.proc_xy(sx, sy),
            dst: grid.proc_xy(dx, dy),
            volume: vol,
            data: DataId(0),
            window: 0,
            kind: MessageKind::Fetch,
        }
    }

    #[test]
    fn empty_and_local_are_free() {
        let g = Grid::new(4, 4);
        assert_eq!(run_window(&g, &[]).completion_cycle, 0);
        let local = msg(&g, 1, 1, 1, 1, 5);
        let r = run_window(&g, &[local]);
        assert_eq!(r.completion_cycle, 0);
        assert_eq!(r.flit_hops, 0);
    }

    #[test]
    fn single_message_takes_dist_plus_volume_minus_one() {
        let g = Grid::new(4, 4);
        for (dist, vol) in [(1u64, 1u32), (3, 1), (3, 4), (6, 2)] {
            let m = msg(
                &g,
                0,
                0,
                dist.min(3) as u32,
                dist.saturating_sub(3) as u32,
                vol,
            );
            let d = g.dist(m.src, m.dst);
            let r = run_window(&g, &[m]);
            assert_eq!(r.completion_cycle, d + vol as u64 - 1, "d={d} vol={vol}");
            assert_eq!(r.flit_hops, d * vol as u64);
        }
    }

    #[test]
    fn contention_serializes_shared_link() {
        let g = Grid::new(4, 4);
        // two messages share their entire 1-hop route
        let a = msg(&g, 0, 0, 1, 0, 3);
        let b = msg(&g, 0, 0, 1, 0, 3);
        let r = run_window(&g, &[a, b]);
        // 6 flits over one link: exactly 6 cycles
        assert_eq!(r.completion_cycle, 6);
        assert_eq!(r.flit_hops, 6);
    }

    #[test]
    fn disjoint_messages_run_in_parallel() {
        let g = Grid::new(4, 4);
        let a = msg(&g, 0, 0, 3, 0, 2);
        let b = msg(&g, 0, 3, 3, 3, 2);
        let r = run_window(&g, &[a, b]);
        assert_eq!(r.completion_cycle, 3 + 2 - 1);
    }

    #[test]
    fn simulated_time_at_least_lower_bound() {
        let g = Grid::new(4, 4);
        let cases: Vec<Vec<Message>> = vec![
            vec![msg(&g, 0, 0, 3, 3, 2), msg(&g, 0, 0, 3, 0, 1)],
            vec![
                msg(&g, 0, 0, 1, 0, 5),
                msg(&g, 0, 0, 2, 0, 5),
                msg(&g, 1, 1, 1, 3, 2),
            ],
            (0..10)
                .map(|i| msg(&g, i % 4, 0, 3 - i % 4, 3, 1 + i % 3))
                .collect(),
        ];
        for msgs in cases {
            let bound = window_completion_time(&g, &msgs);
            let r = run_window(&g, &msgs);
            assert!(
                r.completion_cycle >= bound,
                "simulated {} < bound {bound}",
                r.completion_cycle
            );
        }
    }

    #[test]
    fn flit_hops_equal_hop_volume() {
        let g = Grid::new(4, 4);
        let msgs = vec![msg(&g, 0, 0, 3, 3, 2), msg(&g, 2, 1, 0, 2, 4)];
        let hop_volume: u64 = msgs
            .iter()
            .map(|m| g.dist(m.src, m.dst) * m.volume as u64)
            .sum();
        assert_eq!(run_window(&g, &msgs).flit_hops, hop_volume);
    }

    #[test]
    fn peak_in_flight_bounded_by_flits() {
        let g = Grid::new(4, 4);
        let msgs = vec![msg(&g, 0, 0, 3, 3, 3)];
        let r = run_window(&g, &msgs);
        assert!(r.peak_in_flight <= 3);
        assert!(r.peak_in_flight >= 1);
    }
}
