//! Aggregated simulation results.

use pim_array::grid::Grid;
use pim_array::routing::LinkIndex;
use serde::{Deserialize, Serialize};

/// Per-window statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Window index.
    pub window: usize,
    /// Hop-volume of reference (fetch) traffic.
    pub fetch_hop_volume: u64,
    /// Hop-volume of data-movement traffic leaving this window.
    pub move_hop_volume: u64,
    /// Number of non-local messages.
    pub num_messages: u64,
    /// Idealized lower-bound completion time (see [`crate::contention`]).
    pub completion_time: u64,
}

impl WindowStats {
    /// Fetch plus move hop-volume.
    pub fn total_hop_volume(&self) -> u64 {
        self.fetch_hop_volume + self.move_hop_volume
    }
}

/// Full simulation report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    grid: Grid,
    windows: Vec<WindowStats>,
    link_volume: Vec<u64>,
}

impl SimReport {
    /// Assemble a report (used by the engine).
    pub fn new(grid: Grid, windows: Vec<WindowStats>, link_volume: Vec<u64>) -> Self {
        SimReport {
            grid,
            windows,
            link_volume,
        }
    }

    /// Per-window statistics in window order.
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Per-link accumulated volume, indexed by
    /// [`pim_array::routing::LinkIndex`] slots.
    pub fn link_volume(&self) -> &[u64] {
        &self.link_volume
    }

    /// Total fetch hop-volume.
    pub fn total_fetch_hop_volume(&self) -> u64 {
        self.windows.iter().map(|w| w.fetch_hop_volume).sum()
    }

    /// Total movement hop-volume.
    pub fn total_move_hop_volume(&self) -> u64 {
        self.windows.iter().map(|w| w.move_hop_volume).sum()
    }

    /// Total hop-volume — must equal the analytic total cost.
    pub fn total_hop_volume(&self) -> u64 {
        self.total_fetch_hop_volume() + self.total_move_hop_volume()
    }

    /// Sum of per-window completion-time lower bounds.
    pub fn total_completion_time(&self) -> u64 {
        self.windows.iter().map(|w| w.completion_time).sum()
    }

    /// The most loaded link and its volume, if any traffic flowed.
    ///
    /// Ties break deterministically to the **lowest link slot** (the
    /// first maximal link in [`LinkIndex`] order): the scan only replaces
    /// the champion on a strictly greater volume, so equal-volume links
    /// keep the earliest slot.
    pub fn hottest_link(&self) -> Option<(pim_array::routing::Link, u64)> {
        let links = LinkIndex::new(self.grid);
        let mut best: Option<(usize, u64)> = None;
        for (slot, &v) in self.link_volume.iter().enumerate() {
            if v > 0 && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((slot, v));
            }
        }
        best.and_then(|(slot, v)| links.link_of(slot).map(|l| (l, v)))
    }

    /// Mean volume over links that carried any traffic. One pass over the
    /// link table — no per-call allocation.
    pub fn mean_active_link_volume(&self) -> f64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for &v in &self.link_volume {
            if v > 0 {
                sum += v;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Load imbalance: hottest link volume over mean active link volume
    /// (1.0 = perfectly even, higher = concentrated).
    pub fn link_imbalance(&self) -> f64 {
        let mean = self.mean_active_link_volume();
        match self.hottest_link() {
            Some((_, max)) if mean > 0.0 => max as f64 / mean,
            _ => 0.0,
        }
    }
}

impl core::fmt::Display for SimReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(
            f,
            "simulated {} windows on {}: hop-volume {} (fetch {}, move {})",
            self.windows.len(),
            self.grid,
            self.total_hop_volume(),
            self.total_fetch_hop_volume(),
            self.total_move_hop_volume(),
        )?;
        writeln!(
            f,
            "  completion-time lower bound: {}",
            self.total_completion_time()
        )?;
        if let Some((link, v)) = self.hottest_link() {
            writeln!(
                f,
                "  hottest link {link}: volume {v} (imbalance {:.2}x)",
                self.link_imbalance()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        let grid = Grid::new(2, 2);
        let links = LinkIndex::new(grid);
        let mut lv = vec![0u64; links.num_slots()];
        let l = links.index_of(pim_array::routing::Link {
            from: grid.proc_xy(0, 0),
            to: grid.proc_xy(1, 0),
        });
        lv[l] = 6;
        let l2 = links.index_of(pim_array::routing::Link {
            from: grid.proc_xy(1, 0),
            to: grid.proc_xy(1, 1),
        });
        lv[l2] = 2;
        SimReport::new(
            grid,
            vec![
                WindowStats {
                    window: 0,
                    fetch_hop_volume: 5,
                    move_hop_volume: 1,
                    num_messages: 2,
                    completion_time: 6,
                },
                WindowStats {
                    window: 1,
                    fetch_hop_volume: 2,
                    move_hop_volume: 0,
                    num_messages: 1,
                    completion_time: 2,
                },
            ],
            lv,
        )
    }

    #[test]
    fn totals() {
        let r = sample();
        assert_eq!(r.total_fetch_hop_volume(), 7);
        assert_eq!(r.total_move_hop_volume(), 1);
        assert_eq!(r.total_hop_volume(), 8);
        assert_eq!(r.total_completion_time(), 8);
        assert_eq!(r.windows()[0].total_hop_volume(), 6);
    }

    #[test]
    fn hottest_link_and_imbalance() {
        let r = sample();
        let (link, v) = r.hottest_link().unwrap();
        assert_eq!(v, 6);
        assert_eq!(link.from, pim_array::grid::ProcId(0));
        assert_eq!(r.mean_active_link_volume(), 4.0);
        assert_eq!(r.link_imbalance(), 1.5);
    }

    #[test]
    fn hottest_link_ties_pick_lowest_slot() {
        let grid = Grid::new(2, 2);
        let links = LinkIndex::new(grid);
        // every link carries the same volume → slot 0's link must win
        let lv = vec![3u64; links.num_slots()];
        let r = SimReport::new(grid, vec![], lv);
        let (link, v) = r.hottest_link().unwrap();
        assert_eq!(v, 3);
        assert_eq!(links.index_of(link), 0, "tie must resolve to slot 0");
        assert_eq!(links.link_of(0), Some(link));
    }

    #[test]
    fn display_renders() {
        let s = sample().to_string();
        assert!(s.contains("hop-volume 8"));
        assert!(s.contains("hottest link"));
    }

    #[test]
    fn empty_report() {
        let grid = Grid::new(2, 2);
        let links = LinkIndex::new(grid);
        let r = SimReport::new(grid, vec![], vec![0; links.num_slots()]);
        assert_eq!(r.total_hop_volume(), 0);
        assert_eq!(r.hottest_link(), None);
        assert_eq!(r.link_imbalance(), 0.0);
    }
}
