#![warn(missing_docs)]
//! # pim-sim
//!
//! A message-level simulator for the PIM array. Where `pim-sched` *counts*
//! communication analytically (volume × Manhattan distance), this crate
//! actually *routes* every transfer hop by hop with x-y routing and
//! observes what the network sees:
//!
//! * total hop-volume — which must equal the analytic cost exactly (the
//!   integration tests assert this for every scheduler on every benchmark);
//! * per-link utilization — where the traffic concentrates;
//! * an idealized per-window completion-time estimate under unit-bandwidth
//!   links ([`contention`]), separating bandwidth-bound from latency-bound
//!   windows.
//!
//! ## Modules
//!
//! * [`message`] — the transfer unit (fetches and moves).
//! * [`engine`] — trace + schedule → messages → routed statistics.
//! * [`contention`] — completion-time estimates per window.
//! * [`report`] — aggregated results with human-readable rendering.
//! * [`run_report`] — analytic + routed + metrics in one export record.

pub mod contention;
pub mod cycle;
pub mod engine;
pub mod heatmap;
pub mod message;
pub mod report;
pub mod run_report;
pub mod traffic;

pub use engine::{simulate, simulate_named, simulate_scheduler};
pub use report::SimReport;
pub use run_report::{collect_run_report, RunReport};
