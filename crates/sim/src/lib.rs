#![warn(missing_docs)]
//! # pim-sim
//!
//! A message-level simulator for the PIM array. Where `pim-sched` *counts*
//! communication analytically (volume × Manhattan distance), this crate
//! actually *routes* every transfer hop by hop with x-y routing and
//! observes what the network sees:
//!
//! * total hop-volume — which must equal the analytic cost exactly (the
//!   integration tests assert this for every scheduler on every benchmark);
//! * per-link utilization — where the traffic concentrates;
//! * an idealized per-window completion-time estimate under unit-bandwidth
//!   links ([`contention`]), separating bandwidth-bound from latency-bound
//!   windows;
//! * cycle-accurate completion under link contention ([`cycle`]): an
//!   event-driven per-link-queue simulator, validated bit-identically
//!   against the brute-force oracle it replaced — optionally gated by a
//!   task DAG ([`simulate_cycles_dag`]) so a task's traffic enters the
//!   network only when its intra-window predecessors have delivered.
//!
//! ## Modules
//!
//! * [`message`] — the transfer unit (fetches and moves).
//! * [`engine`] — trace + schedule → messages → routed statistics.
//! * [`contention`] — completion-time estimates per window.
//! * [`cycle`] — event-driven cycle-level simulation (plus its oracle).
//! * [`error`] — typed simulation failures ([`SimError`], [`RunError`]).
//! * [`report`] — aggregated results with human-readable rendering.
//! * [`run_report`] — analytic + routed + cycle + metrics in one record.

pub mod contention;
pub mod cycle;
pub mod engine;
pub mod error;
pub mod heatmap;
pub mod message;
pub mod report;
pub mod run_report;
pub mod traffic;

pub use cycle::{
    simulate_cycles, simulate_cycles_dag, simulate_cycles_observed, CycleResult, CycleSim,
    WindowPrecedence,
};
pub use engine::{simulate, simulate_named, simulate_scheduler};
pub use error::{RunError, SimError, SAFETY_VALVE_CYCLES};
pub use report::SimReport;
pub use run_report::{collect_run_report, RunReport};
