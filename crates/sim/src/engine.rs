//! The simulation engine.
//!
//! [`simulate`] expands a (trace, schedule) pair into messages, routes each
//! with x-y routing, and accumulates hop and link statistics. Windows are
//! independent, so the engine processes them in parallel with `pim-par`
//! and merges the per-window partial results — the output is deterministic
//! regardless of thread count.

use crate::contention::window_completion_time;
use crate::message::{Message, MessageKind};
use crate::report::{SimReport, WindowStats};
use pim_array::grid::Grid;
use pim_array::routing::{visit_xy_links, LinkIndex};
use pim_par::Pool;
use pim_sched::schedule::Schedule;
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;

/// Expand the messages of one window: fetches of every remote reference,
/// plus the moves *leaving* this window (for `w < nw − 1`).
pub fn window_messages(trace: &WindowedTrace, schedule: &Schedule, w: usize) -> Vec<Message> {
    let last = trace.num_windows() - 1;
    // Exact fetch count, plus one potential move per datum when a next
    // window exists: one allocation instead of a realloc-per-doubling in
    // the per-window hot loop.
    let fetches: usize = (0..trace.num_data())
        .map(|d| trace.refs(DataId(d as u32)).window(w).num_procs())
        .sum();
    let moves = if w < last { trace.num_data() } else { 0 };
    let mut msgs = Vec::with_capacity(fetches + moves);
    for d in 0..trace.num_data() {
        let data = DataId(d as u32);
        let center = schedule.center(data, w);
        for r in trace.refs(data).window(w).iter() {
            msgs.push(Message {
                src: center,
                dst: r.proc,
                volume: r.count,
                data,
                window: w as u32,
                kind: MessageKind::Fetch,
            });
        }
        if w < last {
            let next = schedule.center(data, w + 1);
            if next != center {
                msgs.push(Message {
                    src: center,
                    dst: next,
                    volume: 1,
                    data,
                    window: w as u32,
                    kind: MessageKind::Move,
                });
            }
        }
    }
    msgs
}

/// Partial result of simulating one window.
struct WindowPartial {
    stats: WindowStats,
    link_volume: Vec<u64>,
}

fn simulate_window(
    grid: &Grid,
    links: &LinkIndex,
    trace: &WindowedTrace,
    schedule: &Schedule,
    w: usize,
) -> WindowPartial {
    let msgs = window_messages(trace, schedule, w);
    let mut link_volume = vec![0u64; links.num_slots()];
    let mut fetch_hops = 0u64;
    let mut move_hops = 0u64;
    let mut num_messages = 0u64;
    for m in &msgs {
        if m.is_local() {
            continue;
        }
        num_messages += 1;
        let mut hops = 0u64;
        visit_xy_links(grid, m.src, m.dst, |l| {
            link_volume[links.index_of(l)] += m.volume as u64;
            hops += 1;
        });
        let hop_volume = hops * m.volume as u64;
        match m.kind {
            MessageKind::Fetch => fetch_hops += hop_volume,
            MessageKind::Move => move_hops += hop_volume,
        }
    }
    let completion = window_completion_time(grid, &msgs);
    WindowPartial {
        stats: WindowStats {
            window: w,
            fetch_hop_volume: fetch_hops,
            move_hop_volume: move_hops,
            num_messages,
            completion_time: completion,
        },
        link_volume,
    }
}

/// Simulate a schedule against its trace.
///
/// ```
/// use pim_array::grid::Grid;
/// use pim_par::Pool;
/// use pim_sched::schedule::Schedule;
/// use pim_trace::window::{WindowRefs, WindowedTrace};
///
/// let grid = Grid::new(4, 4);
/// let trace = WindowedTrace::from_parts(
///     grid,
///     vec![vec![WindowRefs::from_pairs([(grid.proc_xy(3, 0), 2)])]],
/// );
/// let sched = Schedule::static_placement(grid, vec![grid.proc_xy(0, 0)], 1);
/// let report = pim_sim::simulate(&trace, &sched, Pool::serial());
/// // 2 units over 3 hops — and it must equal the analytic model
/// assert_eq!(report.total_hop_volume(), 6);
/// assert_eq!(report.total_hop_volume(), sched.evaluate(&trace).total());
/// ```
///
/// # Panics
/// Panics if trace and schedule shapes disagree (same conditions as
/// [`Schedule::evaluate`]).
pub fn simulate(trace: &WindowedTrace, schedule: &Schedule, pool: Pool) -> SimReport {
    assert_eq!(trace.grid(), schedule.grid(), "grid mismatch");
    assert_eq!(trace.num_data(), schedule.num_data(), "data count mismatch");
    assert_eq!(
        trace.num_windows(),
        schedule.num_windows(),
        "window count mismatch"
    );
    let grid = trace.grid();
    let links = LinkIndex::new(grid);
    let windows: Vec<usize> = (0..trace.num_windows()).collect();

    let partials = pim_par::parallel_map(pool, &windows, |_, &w| {
        simulate_window(&grid, &links, trace, schedule, w)
    });

    let mut link_volume = vec![0u64; links.num_slots()];
    let mut per_window = Vec::with_capacity(partials.len());
    for p in partials {
        for (slot, v) in p.link_volume.iter().enumerate() {
            link_volume[slot] += v;
        }
        per_window.push(p.stats);
    }
    SimReport::new(grid, per_window, link_volume)
}

/// Schedule `trace` with any [`Scheduler`](pim_sched::Scheduler) and
/// simulate the result — the registry-driven front end: the engine drives
/// whatever strategy the registry hands it, with no per-method code here.
///
/// The same `pool` parallelizes both the scheduling pass (per-datum, when
/// the policy is unbounded) and the routing pass (per-window). Scheduling
/// failures (e.g. [`pim_sched::SchedError::CapacityExhausted`]) propagate
/// as the typed error — nothing panics on an infeasible policy.
pub fn simulate_scheduler(
    scheduler: &dyn pim_sched::Scheduler,
    trace: &WindowedTrace,
    policy: pim_sched::MemoryPolicy,
    pool: Pool,
) -> Result<(Schedule, SimReport), pim_sched::SchedError> {
    let schedule = pim_sched::Run::new(trace)
        .policy(policy)
        .parallel(pool)
        .run(scheduler)?;
    let report = simulate(trace, &schedule, pool);
    Ok((schedule, report))
}

/// [`simulate_scheduler`] by registry name (case-insensitive, aliases
/// accepted); [`pim_sched::SchedError::UnknownScheduler`] when no
/// scheduler is registered under `name`.
pub fn simulate_named(
    name: &str,
    trace: &WindowedTrace,
    policy: pim_sched::MemoryPolicy,
    pool: Pool,
) -> Result<(Schedule, SimReport), pim_sched::SchedError> {
    let scheduler = pim_sched::registry()
        .get(name)
        .ok_or_else(|| pim_sched::SchedError::UnknownScheduler(name.to_string()))?;
    simulate_scheduler(scheduler, trace, policy, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::ProcId;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    fn simple_case() -> (WindowedTrace, Schedule) {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(2, 0), 3)]),
                WindowRefs::from_pairs([(grid.proc_xy(0, 2), 1)]),
            ]],
        );
        let schedule = Schedule::new(grid, vec![vec![grid.proc_xy(0, 0), grid.proc_xy(0, 2)]]);
        (trace, schedule)
    }

    #[test]
    fn hop_volume_matches_analytic_cost() {
        let (trace, schedule) = simple_case();
        let report = simulate(&trace, &schedule, Pool::serial());
        let analytic = schedule.evaluate(&trace);
        assert_eq!(report.total_fetch_hop_volume(), analytic.reference);
        assert_eq!(report.total_move_hop_volume(), analytic.movement);
        assert_eq!(report.total_hop_volume(), analytic.total());
    }

    #[test]
    fn window_messages_content() {
        let (trace, schedule) = simple_case();
        let m0 = window_messages(&trace, &schedule, 0);
        // one fetch + one move out of window 0
        assert_eq!(m0.len(), 2);
        assert!(matches!(m0[0].kind, MessageKind::Fetch));
        assert_eq!(m0[0].volume, 3);
        assert!(matches!(m0[1].kind, MessageKind::Move));
        let m1 = window_messages(&trace, &schedule, 1);
        // final window: local fetch only (center == referencing proc)
        assert_eq!(m1.len(), 1);
        assert!(m1[0].is_local());
    }

    #[test]
    fn parallel_simulation_is_deterministic() {
        let (trace, schedule) = simple_case();
        let a = simulate(&trace, &schedule, Pool::serial());
        let b = simulate(&trace, &schedule, Pool::with_threads(4));
        assert_eq!(a, b);
    }

    #[test]
    fn link_volumes_route_xy() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)])]],
        );
        let schedule = Schedule::static_placement(grid, vec![grid.proc_xy(0, 0)], 1);
        let report = simulate(&trace, &schedule, Pool::serial());
        let links = LinkIndex::new(grid);
        // x first: (0,0)->(1,0), then y: (1,0)->(1,1); each carries volume 2
        let l1 = links.index_of(pim_array::routing::Link {
            from: grid.proc_xy(0, 0),
            to: grid.proc_xy(1, 0),
        });
        let l2 = links.index_of(pim_array::routing::Link {
            from: grid.proc_xy(1, 0),
            to: grid.proc_xy(1, 1),
        });
        assert_eq!(report.link_volume()[l1], 2);
        assert_eq!(report.link_volume()[l2], 2);
        assert_eq!(report.total_hop_volume(), 4);
        // no traffic on the y-first route
        let wrong = links.index_of(pim_array::routing::Link {
            from: grid.proc_xy(0, 0),
            to: grid.proc_xy(0, 1),
        });
        assert_eq!(report.link_volume()[wrong], 0);
    }

    #[test]
    #[should_panic(expected = "window count mismatch")]
    fn shape_mismatch_panics() {
        let (trace, _) = simple_case();
        let bad = Schedule::static_placement(g(), vec![ProcId(0)], 3);
        simulate(&trace, &bad, Pool::serial());
    }

    #[test]
    fn simulate_named_drives_any_registered_scheduler() {
        let (trace, _) = simple_case();
        for scheduler in pim_sched::registry().iter() {
            let (schedule, report) = simulate_scheduler(
                scheduler,
                &trace,
                pim_sched::MemoryPolicy::Unbounded,
                Pool::serial(),
            )
            .unwrap();
            assert_eq!(
                report.total_hop_volume(),
                schedule.evaluate(&trace).total(),
                "{}: routed hop-volume must match the analytic model",
                scheduler.name()
            );
        }
        assert!(simulate_named(
            "gomcds",
            &trace,
            pim_sched::MemoryPolicy::Unbounded,
            Pool::serial()
        )
        .is_ok());
        assert!(matches!(
            simulate_named(
                "no-such",
                &trace,
                pim_sched::MemoryPolicy::Unbounded,
                Pool::serial()
            ),
            Err(pim_sched::SchedError::UnknownScheduler(_))
        ));
    }
}
