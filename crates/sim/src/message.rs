//! The unit of simulated communication.

use pim_array::grid::ProcId;
use pim_trace::ids::DataId;
use serde::{Deserialize, Serialize};

/// Why a transfer happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageKind {
    /// A referencing processor pulls the datum from its center: `volume`
    /// copies of the value cross the network within one window.
    Fetch,
    /// The datum itself migrates to the next window's center.
    Move,
}

/// One routed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Source processor (the datum's center).
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Transfer volume in data units.
    pub volume: u32,
    /// The datum being transferred.
    pub data: DataId,
    /// The execution window the transfer belongs to. For a
    /// [`MessageKind::Move`] it is the window being *left*.
    pub window: u32,
    /// Fetch or move.
    pub kind: MessageKind,
}

impl Message {
    /// True for zero-distance transfers (local reference) that never enter
    /// the network.
    pub fn is_local(&self) -> bool {
        self.src == self.dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality() {
        let m = Message {
            src: ProcId(3),
            dst: ProcId(3),
            volume: 2,
            data: DataId(0),
            window: 0,
            kind: MessageKind::Fetch,
        };
        assert!(m.is_local());
        let m2 = Message {
            dst: ProcId(4),
            ..m
        };
        assert!(!m2.is_local());
    }
}
