//! Typed simulation errors.
//!
//! The cycle simulator used to guard against modelling bugs with a
//! `cycle < 1_000_000_000` `assert!` deep inside its clock loop. Matching
//! the panic-free convention of `pim_sched::SchedError`, that safety valve
//! is now a typed [`SimError::NoProgress`] result: the CLI turns it into a
//! one-line message and a nonzero exit instead of a backtrace, and callers
//! that combine scheduling with simulation get both failure families
//! through one [`RunError`].

use pim_sched::SchedError;
use std::fmt;

/// Cycle budget past which the simulator refuses to keep clocking. One
/// flit crosses at least one link per simulated cycle, so a window can
/// only reach this many cycles if its flit-hop volume does too — far past
/// anything the experiments generate, and a reliable tripwire for a
/// future modelling bug that stalls the clock.
pub const SAFETY_VALVE_CYCLES: u64 = 1_000_000_000;

/// Why a cycle-level simulation could not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The window could not complete within [`SAFETY_VALVE_CYCLES`]: the
    /// event-driven path refuses up front when the window's flit-hop
    /// volume reaches the valve (its cycle count is bounded by it), and
    /// the oracle trips when its clock actually gets there.
    NoProgress {
        /// The cycle budget that was exhausted.
        cycle: u64,
    },
    /// A precedence-gated window contained a fetch message for a
    /// `(window, datum)` pair no task owns — the task DAG does not cover
    /// the trace (run `TaskDag::validate_cover` before simulating).
    UnownedMessage {
        /// The execution window of the orphaned message.
        window: u32,
        /// The datum no task in that window owns.
        datum: u32,
    },
    /// A precedence-gated simulation was handed a task DAG built for a
    /// different number of execution windows than the trace.
    DagWindows {
        /// Windows the DAG covers.
        dag: usize,
        /// Windows the trace has.
        trace: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoProgress { cycle } => write!(
                f,
                "cycle simulator made no progress within {cycle} cycles \
                 (window too large for the safety valve, or a modelling bug)"
            ),
            SimError::UnownedMessage { window, datum } => write!(
                f,
                "task dag does not cover the trace: no task in window \
                 {window} owns datum {datum}"
            ),
            SimError::DagWindows { dag, trace } => {
                write!(f, "task dag covers {dag} windows but the trace has {trace}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Either half of a schedule-then-simulate pipeline can fail; this is the
/// combined error of [`crate::collect_run_report`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The scheduling pass failed (unknown scheduler, capacity exhausted).
    Sched(SchedError),
    /// The cycle simulation failed (safety valve).
    Sim(SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sched(e) => e.fmt(f),
            RunError::Sim(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SchedError> for RunError {
    fn from(e: SchedError) -> Self {
        RunError::Sched(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_cycle_budget() {
        let e = SimError::NoProgress { cycle: 42 };
        let msg = e.to_string();
        assert!(msg.contains("42"), "{msg}");
        assert!(msg.contains("no progress"), "{msg}");
    }

    #[test]
    fn unowned_message_names_the_orphan() {
        let e = SimError::UnownedMessage {
            window: 3,
            datum: 9,
        };
        let msg = e.to_string();
        assert!(msg.contains("window 3"), "{msg}");
        assert!(msg.contains("datum 9"), "{msg}");
    }

    #[test]
    fn run_error_wraps_both_families() {
        let s: RunError = SchedError::UnknownScheduler("x".into()).into();
        assert!(matches!(s, RunError::Sched(_)));
        assert!(s.to_string().contains("no scheduler"), "{s}");
        let c: RunError = SimError::NoProgress { cycle: 7 }.into();
        assert!(matches!(c, RunError::Sim(_)));
        assert!(c.to_string().contains("no progress"), "{c}");
    }
}
