//! Idealized completion-time estimates.
//!
//! The paper's metric is pure hop-volume; real PIM arrays also care *when*
//! transfers finish. This module computes a standard lower-bound estimate
//! of a window's completion time under unit-bandwidth links and wormhole
//! x-y routing:
//!
//! ```text
//! T(window) = max( max_link_occupancy , max_message (distance + volume − 1) )
//! ```
//!
//! The first term is the bandwidth bound (the most loaded link must carry
//! all its flits one per cycle); the second is the latency bound (a
//! message's last flit arrives after pipeline fill plus serialization).
//! A perfect scheduler could not beat this bound; a real network is ≥ it.
//! Comparing the bound across schedulers shows whether hop-volume savings
//! also relieve the *bottleneck* link — which they do on the paper's
//! benchmarks (see `EXPERIMENTS.md`).

use crate::message::Message;
use pim_array::grid::Grid;
use pim_array::routing::{visit_xy_links, LinkIndex};

/// Lower-bound completion time of one window's message set.
pub fn window_completion_time(grid: &Grid, messages: &[Message]) -> u64 {
    let links = LinkIndex::new(*grid);
    let mut occupancy = vec![0u64; links.num_slots()];
    let mut latency_bound = 0u64;
    for m in messages {
        // Zero-volume messages carry no flits: they neither occupy a link
        // nor serialize, and `dist + volume − 1` would underflow on them.
        if m.is_local() || m.volume == 0 {
            continue;
        }
        let dist = grid.dist(m.src, m.dst);
        latency_bound = latency_bound.max(dist + m.volume as u64 - 1);
        visit_xy_links(grid, m.src, m.dst, |l| {
            occupancy[links.index_of(l)] += m.volume as u64;
        });
    }
    let bandwidth_bound = occupancy.iter().copied().max().unwrap_or(0);
    bandwidth_bound.max(latency_bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageKind;
    use pim_array::grid::Grid;
    use pim_trace::ids::DataId;

    fn msg(grid: &Grid, sx: u32, sy: u32, dx: u32, dy: u32, vol: u32) -> Message {
        Message {
            src: grid.proc_xy(sx, sy),
            dst: grid.proc_xy(dx, dy),
            volume: vol,
            data: DataId(0),
            window: 0,
            kind: MessageKind::Fetch,
        }
    }

    #[test]
    fn empty_window_is_free() {
        let g = Grid::new(4, 4);
        assert_eq!(window_completion_time(&g, &[]), 0);
        // local messages are free too
        let local = msg(&g, 1, 1, 1, 1, 9);
        assert_eq!(window_completion_time(&g, &[local]), 0);
    }

    #[test]
    fn zero_volume_message_is_free() {
        // Regression: `dist + volume − 1` used to underflow (debug panic,
        // release wrap to u64::MAX) on a remote message with volume 0.
        let g = Grid::new(4, 4);
        let empty = msg(&g, 0, 0, 3, 3, 0);
        assert_eq!(window_completion_time(&g, &[empty]), 0);
        // and it never dominates real traffic
        let real = msg(&g, 0, 0, 1, 0, 2);
        assert_eq!(window_completion_time(&g, &[empty, real]), 2);
    }

    #[test]
    fn single_message_latency_bound() {
        let g = Grid::new(4, 4);
        // distance 3, volume 2 → 3 + 2 − 1 = 4
        let m = msg(&g, 0, 0, 3, 0, 2);
        assert_eq!(window_completion_time(&g, &[m]), 4);
    }

    #[test]
    fn shared_link_bandwidth_bound() {
        let g = Grid::new(4, 4);
        // both messages cross link (0,0)→(1,0) with volume 5 each:
        // bandwidth bound 10 > any latency bound
        let a = msg(&g, 0, 0, 1, 0, 5);
        let b = msg(&g, 0, 0, 2, 0, 5);
        assert_eq!(window_completion_time(&g, &[a, b]), 10);
    }

    #[test]
    fn disjoint_messages_overlap() {
        let g = Grid::new(4, 4);
        // opposite corners, disjoint x-y routes → time = individual bound
        let a = msg(&g, 0, 0, 1, 0, 1);
        let b = msg(&g, 3, 3, 2, 3, 1);
        assert_eq!(window_completion_time(&g, &[a, b]), 1);
    }
}
