//! ASCII rendering of network utilization.
//!
//! Renders the grid with per-processor traffic intensity and the four
//! inter-node link directions, so a scheduler's effect on *where* traffic
//! flows is visible at a glance in a terminal:
//!
//! ```text
//! [ 86]==[142]--[ 57]--[  3]
//!   ||     |
//! [ 40]--[ 91]==[ 12]--[  0]
//! ```
//!
//! `==`/`||` mark links above the hot threshold (75th percentile of active
//! links), `--`/`|` active links, spaces idle ones.

use crate::report::SimReport;
use crate::traffic::TrafficMap;
use pim_array::grid::Grid;
use pim_array::routing::{Link, LinkIndex};

/// Render per-node total traffic and link intensity.
pub fn render(grid: &Grid, report: &SimReport, traffic: &TrafficMap) -> String {
    let links = LinkIndex::new(*grid);
    let volume = |from, to| -> u64 {
        let slot = links.index_of(Link { from, to });
        report.link_volume()[slot]
    };
    // both directions of a physical channel, combined for display
    let channel = |a, b| volume(a, b) + volume(b, a);

    let hot = hot_threshold(report.link_volume());

    let mut out = String::new();
    for y in 0..grid.height() {
        // node row with horizontal channels
        for x in 0..grid.width() {
            let p = grid.proc_xy(x, y);
            out.push_str(&format!("[{:>4}]", traffic.node(p).total()));
            if x + 1 < grid.width() {
                let v = channel(p, grid.proc_xy(x + 1, y));
                out.push_str(link_glyph_h(v, hot));
            }
        }
        out.push('\n');
        // vertical channels row
        if y + 1 < grid.height() {
            for x in 0..grid.width() {
                let v = channel(grid.proc_xy(x, y), grid.proc_xy(x, y + 1));
                out.push_str(&format!("  {}   ", link_glyph_v(v, hot)));
                if x + 1 < grid.width() {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        }
    }
    out
}

fn link_glyph_h(v: u64, hot: u64) -> &'static str {
    if v == 0 {
        "  "
    } else if v >= hot {
        "=="
    } else {
        "--"
    }
}

fn link_glyph_v(v: u64, hot: u64) -> &'static str {
    if v == 0 {
        " "
    } else if v >= hot {
        "‖"
    } else {
        "|"
    }
}

/// 75th percentile of active (non-zero) link volumes; `u64::MAX` when no
/// link carried traffic (so nothing renders hot).
fn hot_threshold(link_volume: &[u64]) -> u64 {
    let mut active: Vec<u64> = link_volume.iter().copied().filter(|&v| v > 0).collect();
    if active.is_empty() {
        return u64::MAX;
    }
    active.sort_unstable();
    active[(active.len() - 1) * 3 / 4]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::traffic::traffic_map;
    use pim_par::Pool;
    use pim_sched::schedule::Schedule;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    #[test]
    fn renders_expected_shape() {
        let grid = Grid::new(3, 2);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([(grid.proc_xy(2, 0), 4)])]],
        );
        let s = Schedule::static_placement(grid, vec![grid.proc_xy(0, 0)], 1);
        let report = simulate(&trace, &s, Pool::serial());
        let t = traffic_map(&trace, &s);
        let art = render(&grid, &report, &t);
        // 2 node rows + 1 vertical-channel row
        assert_eq!(art.lines().count(), 3);
        // the route (0,0)->(1,0)->(2,0) is the only traffic: both its
        // channels render hot, everything else idle
        let first = art.lines().next().unwrap();
        assert!(first.contains("=="), "{art}");
        let second_row = art.lines().nth(2).unwrap();
        assert!(
            !second_row.contains("--") && !second_row.contains("=="),
            "{art}"
        );
        // node totals appear
        assert!(first.contains("[   4]"), "{art}");
    }

    #[test]
    fn idle_network_has_no_glyphs() {
        let grid = Grid::new(2, 2);
        let trace = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]]);
        let s = Schedule::static_placement(grid, vec![grid.proc_xy(0, 0)], 1);
        let report = simulate(&trace, &s, Pool::serial());
        let t = traffic_map(&trace, &s);
        let art = render(&grid, &report, &t);
        assert!(!art.contains("--"));
        assert!(!art.contains("=="));
        assert!(!art.contains('|'));
        assert!(art.contains("[   0]"));
    }

    #[test]
    fn hot_threshold_math() {
        assert_eq!(hot_threshold(&[0, 0, 0]), u64::MAX);
        assert_eq!(hot_threshold(&[5]), 5);
        assert_eq!(hot_threshold(&[1, 2, 3, 4, 0, 0]), 3);
    }
}
