//! End-to-end smoke tests of the `pim-cli` binary itself (spawned as a
//! process via `CARGO_BIN_EXE_pim-cli`), covering every subcommand and the
//! error paths.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pim-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn compare_prints_the_paper_table_shape() {
    let (ok, stdout, _) = run(&["compare", "--bench", "1", "--size", "8"]);
    assert!(ok);
    assert!(stdout.contains("S.F."));
    assert!(stdout.contains("SCDS"));
    assert!(stdout.contains("GOMCDS"));
    assert!(stdout.contains('%'));
}

#[test]
fn run_reports_cost_breakdown() {
    let (ok, stdout, _) = run(&[
        "run",
        "--bench",
        "2",
        "--size",
        "8",
        "--method",
        "gomcds",
        "--memory",
        "unbounded",
    ]);
    assert!(ok);
    assert!(stdout.contains("GOMCDS: total"));
    assert!(stdout.contains("moves:"));
}

#[test]
fn stats_and_windows_and_explain() {
    for cmd in ["stats", "windows", "explain"] {
        let (ok, stdout, stderr) = run(&[cmd, "--bench", "5", "--size", "8"]);
        assert!(ok, "{cmd} failed: {stderr}");
        assert!(!stdout.is_empty(), "{cmd} printed nothing");
    }
}

#[test]
fn simulate_asserts_model_agreement_and_draws_heatmap() {
    let (ok, stdout, _) = run(&["simulate", "--bench", "1", "--size", "8"]);
    assert!(ok);
    assert!(stdout.contains("matches analytic cost"));
    assert!(stdout.contains("link utilization"));
}

#[test]
fn export_then_reload_roundtrip() {
    let dir = std::env::temp_dir().join("pim_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.pimt");
    let path = path.to_str().unwrap();

    let (ok, stdout, stderr) = run(&["export", "--bench", "3", "--size", "8", "--out", path]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("wrote"));

    let (ok, stdout, stderr) = run(&["run", "--trace", path, "--method", "scds"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("loaded trace from"));
    assert!(stdout.contains("SCDS: total"));
}

#[test]
fn error_paths_fail_cleanly() {
    // unknown command
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    // bad flag value
    let (ok, _, stderr) = run(&["run", "--grid", "zero"]);
    assert!(!ok);
    assert!(stderr.contains("bad grid"));
    // export without --out
    let (ok, _, stderr) = run(&["export"]);
    assert!(!ok);
    assert!(stderr.contains("--out"));
    // compare from a trace file is rejected with an explanation
    let (ok, _, stderr) = run(&["compare", "--trace", "/nonexistent.pimt"]);
    assert!(!ok);
    assert!(stderr.contains("compare"));
    // unreadable trace file
    let (ok, _, stderr) = run(&["stats", "--trace", "/nonexistent.pimt"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn list_methods_shows_the_registry() {
    let (ok, stdout, _) = run(&["list-methods"]);
    assert!(ok);
    for name in pim_sched::registry().names() {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn list_methods_marks_parallelizable_schedulers() {
    let (ok, stdout, _) = run(&["list-methods"]);
    assert!(ok);
    assert!(stdout.contains("[parallel]"), "{stdout}");
    // the streaming policy cannot fan out — its line carries no tag
    let online = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("online"))
        .expect("online listed");
    assert!(!online.contains("[parallel]"), "{online}");
    let gomcds = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("GOMCDS "))
        .expect("GOMCDS listed");
    assert!(gomcds.contains("[parallel]"), "{gomcds}");
}

#[test]
fn threads_flag_matches_sequential_output() {
    let base = [
        "run", "--bench", "3", "--size", "8", "--method", "gomcds", "--memory", "2x",
    ];
    let (ok, sequential, stderr) = run(&base);
    assert!(ok, "{stderr}");
    let mut with_threads = base.to_vec();
    with_threads.extend_from_slice(&["--threads", "2"]);
    let (ok, parallel, stderr) = run(&with_threads);
    assert!(ok, "{stderr}");
    assert_eq!(sequential, parallel, "--threads changed the schedule");

    // compare under a bounded policy exercises the two-phase path for
    // every comparison-set scheduler
    let (ok, seq_table, stderr) = run(&["compare", "--bench", "1", "--size", "8"]);
    assert!(ok, "{stderr}");
    let (ok, par_table, stderr) =
        run(&["compare", "--bench", "1", "--size", "8", "--threads", "4"]);
    assert!(ok, "{stderr}");
    assert_eq!(seq_table, par_table, "--threads changed the compare table");
}

#[test]
fn run_accepts_any_registered_method() {
    for method in ["baseline", "online", "kcopy", "replicate", "gomcds-naive"] {
        let (ok, stdout, stderr) = run(&[
            "run",
            "--bench",
            "1",
            "--size",
            "8",
            "--method",
            method,
            "--memory",
            "unbounded",
        ]);
        assert!(ok, "{method} failed: {stderr}");
        assert!(stdout.contains("total"), "{method}: {stdout}");
    }
}

#[test]
fn unknown_method_error_names_the_value_and_options() {
    let (ok, _, stderr) = run(&["run", "--method", "magic"]);
    assert!(!ok);
    assert!(stderr.contains("unknown method 'magic'"), "{stderr}");
    assert!(stderr.contains("list-methods"), "{stderr}");
}
