//! `pim-cli` — run PIM data-scheduling experiments from the command line.

use pim_cli::args::{self, Command};
use pim_cli::render;
use pim_par::Pool;
use pim_sched::{Metrics, Run};
use pim_trace::stats::trace_stats;
use pim_workloads::windowed;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if parsed.command == Command::Scale {
        return run_scale(&parsed);
    }
    if parsed.command == Command::Serve {
        return run_serve(&parsed);
    }
    if parsed.command == Command::Pack {
        return run_pack(&parsed);
    }
    if parsed.command == Command::Unpack {
        return run_unpack(&parsed);
    }
    if parsed.command == Command::Run && parsed.bin {
        return run_bin(&parsed);
    }
    if parsed.command == Command::ListMethods {
        println!("registered scheduling methods:");
        for s in pim_sched::registry().iter() {
            let par = if s.parallelizable() {
                "  [parallel]"
            } else {
                ""
            };
            let flat = if s.flat_capable() { "  [flat]" } else { "" };
            let dag = if s.precedence_aware() { "  [dag]" } else { "" };
            let incr = if s.incremental() {
                "  [incremental]"
            } else {
                ""
            };
            let cmp = if s.in_comparison() {
                ""
            } else {
                "  [not in compare]"
            };
            println!(
                "  {:<16} {}{par}{flat}{dag}{incr}{cmp}",
                s.name(),
                s.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let (trace, space) = if let Some(path) = &parsed.trace_file {
        if parsed.command == Command::Compare {
            eprintln!("`compare` needs the data-array shape; it cannot run from --trace");
            return ExitCode::FAILURE;
        }
        match std::fs::read(path) {
            Ok(raw) => match pim_trace::encode::decode_trace(bytes::Bytes::from(raw)) {
                Ok(t) => {
                    println!("loaded trace from {path}");
                    let n = (t.num_data() as f64).sqrt().ceil() as u32;
                    (t, pim_workloads::DataSpace::single(n.max(1)).0)
                }
                Err(e) => {
                    eprintln!("cannot decode {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        windowed(
            parsed.bench,
            parsed.grid,
            parsed.size,
            parsed.window,
            parsed.seed,
        )
    };
    if parsed.trace_file.is_none() {
        println!(
            "benchmark {} ({}), {}x{} data on {}, {} windows, memory {:?}",
            parsed.bench.label(),
            parsed.bench.name(),
            parsed.size,
            parsed.size,
            parsed.grid,
            trace.num_windows(),
            parsed.memory,
        );
    } else {
        println!(
            "{} data, {} windows on {}, memory {:?}",
            trace.num_data(),
            trace.num_windows(),
            trace.grid(),
            parsed.memory,
        );
    }

    // `--dag` resolves before the Run is built: the borrow has to outlive
    // the scheduling context.
    let dag = match load_dag(&parsed, &trace) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Observability is opt-in: a disabled handle records nothing and the
    // schedule is bit-identical either way.
    let metrics = if parsed.metrics_out.is_some() {
        Metrics::enabled()
    } else {
        Metrics::disabled()
    };
    let sim_pool = if parsed.threads > 0 {
        Pool::with_threads(parsed.threads)
    } else {
        Pool::serial()
    };
    let mut run = Run::new(&trace)
        .policy(parsed.memory)
        .metrics(metrics.clone());
    if parsed.threads > 0 {
        run = run.parallel(Pool::with_threads(parsed.threads));
    }
    if let Some(d) = &dag {
        run = run.dag(d);
    }

    match parsed.command {
        Command::Run => {
            let s = if parsed.flat {
                let flat = pim_trace::flat::FlatTrace::from_trace(&trace);
                let pool = if parsed.threads > 0 {
                    Pool::with_threads(parsed.threads)
                } else {
                    Pool::serial()
                };
                match flat_schedule(&parsed.method, &flat, parsed.memory, pool) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                match run.run_named(&parsed.method) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            println!("{}", render::breakdown(&parsed.method, s.evaluate(&trace)));
            println!(
                "moves: {}, max occupancy: {}",
                s.num_moves(),
                s.max_occupancy()
            );
            let dag_cycles = if let Some(d) = &dag {
                match pim_sim::simulate_cycles_dag(&trace, &s, d, sim_pool) {
                    Ok(c) => {
                        let total: u64 = c.iter().map(|w| w.completion_cycle).sum();
                        println!(
                            "dag-gated completion: {total} cycles ({} tasks, {} edges)",
                            d.num_tasks(),
                            d.edges().len()
                        );
                        Some(c)
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                None
            };
            if let Some(path) = &parsed.metrics_out {
                let sim = pim_sim::simulate(&trace, &s, sim_pool);
                let cycles = match pim_sim::simulate_cycles_observed(&trace, &s, sim_pool, &metrics)
                {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let mut report = pim_sim::RunReport::from_parts(
                    &parsed.method,
                    parsed.memory,
                    s.evaluate(&trace),
                    &sim,
                    &cycles,
                    metrics.report(),
                );
                if let Some(c) = &dag_cycles {
                    report = report.with_dag_cycles(c);
                }
                println!(
                    "simulated completion: {} cycles over {} windows (peak {} flits in flight)",
                    report.simulated_completion_cycles,
                    report.window_completion_cycles.len(),
                    report.peak_in_flight
                );
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote run metrics to {path}");
            }
        }
        Command::Compare => {
            let sf = space
                .straightforward(&trace, pim_array::layout::Layout::RowWise)
                .evaluate(&trace)
                .total();
            let mut rows = Vec::new();
            for s in pim_sched::registry().comparison_set() {
                let sched = match run.run(s) {
                    Ok(sched) => sched,
                    Err(e) => {
                        eprintln!("error: {}: {e}", s.name());
                        return ExitCode::FAILURE;
                    }
                };
                let cost = sched.evaluate(&trace).total();
                rows.push((
                    s.name().to_string(),
                    cost,
                    pim_sched::schedule::improvement_pct(sf, cost),
                ));
            }
            print!("{}", render::comparison_table(sf, &rows));
            if let Some(path) = &parsed.metrics_out {
                // One isolated report per method: each gets its own sink so
                // cache/placement counters don't mix across schedulers.
                let mut reports = Vec::new();
                for s in pim_sched::registry().comparison_set() {
                    match pim_sim::collect_run_report(
                        s.name(),
                        &trace,
                        parsed.memory,
                        sim_pool,
                        Metrics::enabled(),
                    ) {
                        Ok((_, r)) => reports.push(r.to_json()),
                        Err(e) => {
                            eprintln!("error: {}: {e}", s.name());
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let json = format!("[{}]", reports.join(","));
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote per-method metrics to {path}");
            }
        }
        Command::Stats => {
            let st = trace_stats(&trace);
            println!("data items:            {}", st.num_data);
            println!("windows:               {}", st.num_windows);
            println!("total reference volume {}", st.total_volume);
            println!("never referenced:      {}", st.never_referenced);
            println!("procs per window:      {:.2}", st.mean_procs_per_window);
            println!("spatial spread:        {:.2}", st.mean_spread);
            println!("inter-window drift:    {:.2}", st.mean_drift);
        }
        Command::Simulate => {
            let (s, report) = match pim_sim::simulate_named(
                &parsed.method,
                &trace,
                parsed.memory,
                Pool::auto(),
            ) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{report}");
            let analytic = s.evaluate(&trace).total();
            assert_eq!(
                report.total_hop_volume(),
                analytic,
                "simulator/cost-model divergence — this is a bug"
            );
            println!("(simulated hop-volume matches analytic cost: {analytic})");
            let traffic = pim_sim::traffic::traffic_map(&trace, &s);
            println!(
                "forwarded volume {} ; busiest node {} ({} units)",
                traffic.total_forwarded(),
                traffic.busiest().0,
                traffic.busiest().1.total()
            );
            println!("\nnode traffic and link utilization:");
            print!(
                "{}",
                pim_sim::heatmap::render(&trace.grid(), &report, &traffic)
            );
        }
        Command::Refine => {
            let spec = parsed.memory.resolve(&trace);
            let mut s = match run.run_named(&parsed.method) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let before = s.evaluate(&trace).total();
            let stats = pim_sched::refine::refine(&trace, &mut s, spec, 100);
            println!(
                "{}: {} -> {} ({} moves over {} sweeps)",
                parsed.method,
                before,
                s.evaluate(&trace).total(),
                stats.moves_applied,
                stats.sweeps
            );
        }
        Command::Replicate => {
            let spec = parsed.memory.resolve(&trace);
            let single = match run.run_named("gomcds") {
                Ok(s) => s.evaluate(&trace).total(),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let repl = pim_sched::replicate::replicated_schedule(&trace, spec);
            let dual = repl.evaluate(&trace).total();
            println!(
                "1-copy GOMCDS: {single}; 2-copy: {dual} ({} secondary slots, {:.1}% gain)",
                repl.secondary_slots(),
                (single as f64 - dual as f64) / single as f64 * 100.0
            );
        }
        Command::Export => {
            let Some(path) = &parsed.out else {
                eprintln!("export needs --out FILE");
                return ExitCode::FAILURE;
            };
            if let Some(d) = &dag {
                // `export --dag` writes the (validated) DAG, not the trace:
                // the natural chain of a kernel becomes a reusable JSON file.
                if let Err(e) = std::fs::write(path, d.to_json()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote task dag ({} tasks, {} edges over {} windows) to {path}",
                    d.num_tasks(),
                    d.edges().len(),
                    d.num_windows()
                );
            } else if path.ends_with(".pimb") {
                // A `.pimb` destination selects the flat binary container
                // (zero-copy loadable via `run --bin` / `serve` `path`).
                let flat = pim_trace::flat::FlatTrace::from_trace(&trace);
                match pim_trace::binfmt::pack_file(&flat, path) {
                    Ok(bytes) => println!(
                        "wrote {bytes} bytes (binary flat trace, {} data x {} windows) to {path}",
                        flat.num_data(),
                        flat.num_windows()
                    ),
                    Err(e) => {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                let bytes = pim_trace::encode::encode_trace(&trace);
                if let Err(e) = std::fs::write(path, &bytes) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "wrote {} bytes ({} data x {} windows) to {path}",
                    bytes.len(),
                    trace.num_data(),
                    trace.num_windows()
                );
            }
        }
        Command::Explain => {
            use pim_sched::explain::{render_data, summarize};
            let s = match run.run_named(&parsed.method) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sum = summarize(&trace, &s);
            println!(
                "{}: total {} (movement {}, {} moves, total regret {})",
                parsed.method, sum.total, sum.movement, sum.moves, sum.total_regret
            );
            // narrate the five costliest data
            let mut by_cost: Vec<(u64, u32)> = (0..trace.num_data() as u32)
                .map(|d| {
                    (
                        s.evaluate_data(&trace, pim_trace::ids::DataId(d)).total(),
                        d,
                    )
                })
                .collect();
            by_cost.sort_unstable_by(|a, b| b.cmp(a));
            println!("\ncostliest data:");
            for &(cost, d) in by_cost.iter().take(5) {
                if cost == 0 {
                    break;
                }
                print!("{}", render_data(&trace, &s, pim_trace::ids::DataId(d)));
            }
        }
        Command::Windows => {
            use pim_sched::grouping::{greedy_grouping, GroupMethod};
            let grid = trace.grid();
            let mut sizes = vec![0u64; trace.num_windows() + 1];
            let mut grouped_data = 0usize;
            for d in 0..trace.num_data() {
                let rs = trace.refs(pim_trace::ids::DataId(d as u32));
                let groups = greedy_grouping(&grid, rs, GroupMethod::LocalCenters);
                if groups.len() < trace.num_windows() {
                    grouped_data += 1;
                }
                for g in &groups {
                    sizes[g.len()] += 1;
                }
            }
            println!(
                "Algorithm 3 grouped {} of {} data into fewer windows",
                grouped_data,
                trace.num_data()
            );
            println!("group-size histogram (windows per group -> count):");
            for (len, count) in sizes.iter().enumerate().filter(|&(_, &c)| c > 0) {
                println!("  {len:>3} -> {count}");
            }
        }
        Command::ListMethods
        | Command::Scale
        | Command::Serve
        | Command::Pack
        | Command::Unpack => {
            unreachable!("handled before trace construction")
        }
    }
    ExitCode::SUCCESS
}

/// Resolve `--dag`: `natural` derives the benchmark's step-chain DAG,
/// anything else loads a JSON file. Either way the DAG is validated
/// against the trace before use.
fn load_dag(
    parsed: &pim_cli::args::ParsedArgs,
    trace: &pim_trace::window::WindowedTrace,
) -> Result<Option<pim_trace::dag::TaskDag>, String> {
    let Some(spec) = &parsed.dag else {
        return Ok(None);
    };
    let dag = if spec == "natural" {
        pim_workloads::natural_dag(
            parsed.bench,
            parsed.grid,
            parsed.size,
            parsed.window,
            parsed.seed,
        )
        .ok_or_else(|| {
            format!(
                "benchmark {} has no natural dag (chain kernels: 1 (LU), cholesky, trisolve)",
                parsed.bench.name()
            )
        })?
    } else {
        let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
        pim_trace::dag::TaskDag::from_json(&text).map_err(|e| format!("bad dag in {spec}: {e}"))?
    };
    dag.validate_cover(trace)
        .map_err(|e| format!("dag does not match the trace: {e}"))?;
    Ok(Some(dag))
}

/// Dispatch a method name to its flat SoA fast path. Generic over
/// [`pim_trace::flat::FlatView`] so the same dispatch serves owned traces
/// (`--flat`) and memory-mapped `.pimb` files (`--bin`).
fn flat_schedule<V: pim_trace::flat::FlatView + ?Sized>(
    method: &str,
    flat: &V,
    memory: pim_sched::MemoryPolicy,
    pool: Pool,
) -> Result<pim_sched::Schedule, String> {
    match method {
        "SCDS" => pim_sched::flat_scds(flat, memory, pool).map_err(|e| e.to_string()),
        "LOMCDS" => pim_sched::flat_lomcds(flat, memory, pool).map_err(|e| e.to_string()),
        "GOMCDS" => pim_sched::flat_gomcds(flat, memory, pool).map_err(|e| e.to_string()),
        other => Err(format!(
            "--flat supports SCDS, LOMCDS and GOMCDS (got '{other}')"
        )),
    }
}

/// The `run --bin` path: memory-map a `.pimb` binary trace and drive the
/// flat fast path zero-copy off the mapped view.
fn run_bin(parsed: &pim_cli::args::ParsedArgs) -> ExitCode {
    use std::time::Instant;
    let path = parsed.trace_file.as_deref().expect("validated by args");
    let start = Instant::now();
    let bt = match pim_trace::BinTrace::open(path) {
        Ok(bt) => bt,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let load = start.elapsed();
    use pim_trace::flat::FlatView as _;
    println!(
        "{}: {} data x {} windows on {}, {} reference runs{}, opened in {:.1} ms",
        path,
        bt.num_data(),
        bt.num_windows(),
        bt.grid(),
        bt.num_refs(),
        if bt.is_mapped() {
            " (memory-mapped)"
        } else {
            " (decoded)"
        },
        load.as_secs_f64() * 1e3
    );
    let pool = if parsed.threads > 0 {
        Pool::with_threads(parsed.threads)
    } else {
        Pool::serial()
    };
    let start = Instant::now();
    let s = match flat_schedule(&parsed.method, &bt, parsed.memory, pool) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sched = start.elapsed();
    let cost = pim_sched::flat_total_cost(&bt, &s);
    println!("schedule {:.1} ms", sched.as_secs_f64() * 1e3);
    println!("{}", render::breakdown(&parsed.method, cost));
    println!(
        "moves: {}, max occupancy: {}",
        s.num_moves(),
        s.max_occupancy()
    );
    ExitCode::SUCCESS
}

/// The `pack` subcommand: encode a flat trace (a text file via `--trace`,
/// or a synthetic instance) into the `.pimb` binary container.
fn run_pack(parsed: &pim_cli::args::ParsedArgs) -> ExitCode {
    let out = parsed.out.as_deref().expect("validated by args");
    let flat = if let Some(path) = &parsed.trace_file {
        let file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match pim_trace::flat::FlatTrace::from_reader(std::io::BufReader::new(file)) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "packing synthetic instance: {} data x {} windows on {}, seed {}",
            parsed.data, parsed.windows, parsed.grid, parsed.seed
        );
        pim_bench::scale::synthetic_flat(parsed.grid, parsed.windows, parsed.data, parsed.seed)
    };
    match pim_trace::binfmt::pack_file(&flat, out) {
        Ok(bytes) => {
            println!(
                "wrote {bytes} bytes ({} data x {} windows, {} reference runs) to {out}",
                flat.num_data(),
                flat.num_windows(),
                flat.num_refs()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `unpack` subcommand: decode a `.pimb` back to the flat text format.
fn run_unpack(parsed: &pim_cli::args::ParsedArgs) -> ExitCode {
    let path = parsed.trace_file.as_deref().expect("validated by args");
    let out = parsed.out.as_deref().expect("validated by args");
    let flat = match pim_trace::binfmt::load_flat(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot decode {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out, flat.to_text()) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} data x {} windows ({} reference runs) to {out}",
        flat.num_data(),
        flat.num_windows(),
        flat.num_refs()
    );
    ExitCode::SUCCESS
}

/// The `scale` subcommand: synthesize a flat big instance and time the
/// SoA pipeline (CSR build, schedule, cost evaluation) on it.
fn run_scale(parsed: &pim_cli::args::ParsedArgs) -> ExitCode {
    use std::time::Instant;
    let grid = parsed.grid;
    println!(
        "synthetic flat instance: {} data x {} windows on {}, memory {:?}, method {}",
        parsed.data, parsed.windows, grid, parsed.memory, parsed.method
    );
    let records =
        pim_bench::scale::synthetic_records(grid, parsed.windows, parsed.data, parsed.seed);
    let start = Instant::now();
    let flat = match pim_trace::flat::FlatTrace::from_records(
        grid,
        parsed.windows,
        parsed.data,
        records,
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let build = start.elapsed();
    // `--out` persists the instance: the `.pimb` binary container when the
    // path says so, the flat text format otherwise.
    if let Some(out) = &parsed.out {
        let res = if out.ends_with(".pimb") {
            pim_trace::binfmt::pack_file(&flat, out)
                .map(|bytes| format!("{bytes} bytes, binary"))
                .map_err(|e| e.to_string())
        } else {
            let text = flat.to_text();
            std::fs::write(out, &text)
                .map(|()| format!("{} bytes, text", text.len()))
                .map_err(|e| e.to_string())
        };
        match res {
            Ok(what) => println!("wrote instance ({what}) to {out}"),
            Err(e) => {
                eprintln!("cannot write {out}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let pool = if parsed.threads > 0 {
        Pool::with_threads(parsed.threads)
    } else {
        Pool::serial()
    };
    if parsed.bin {
        return scale_stream(parsed, &flat, build, pool);
    }
    let start = Instant::now();
    let s = match flat_schedule(&parsed.method, &flat, parsed.memory, pool) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sched = start.elapsed();
    let cost = pim_sched::flat_total_cost(&flat, &s);
    println!(
        "{} reference runs; build {:.1} ms, schedule {:.1} ms",
        flat.num_refs(),
        build.as_secs_f64() * 1e3,
        sched.as_secs_f64() * 1e3
    );
    println!("{}", render::breakdown(&parsed.method, cost));
    println!(
        "moves: {}, max occupancy: {}, peak RSS {} MB",
        s.num_moves(),
        s.max_occupancy(),
        pim_bench::timing::peak_rss_kb().unwrap_or(0) / 1024
    );
    ExitCode::SUCCESS
}

/// The `scale --bin` path: pack the synthetic instance to a `.pimb` file
/// (reusing `--out` when it already names one, else a temporary) and
/// schedule it through the out-of-core streaming pipeline.
fn scale_stream(
    parsed: &pim_cli::args::ParsedArgs,
    flat: &pim_trace::flat::FlatTrace,
    build: std::time::Duration,
    pool: Pool,
) -> ExitCode {
    use std::time::Instant;
    let method = match parsed.method.as_str() {
        "SCDS" => pim_sched::Method::Scds,
        "LOMCDS" => pim_sched::Method::Lomcds,
        "GOMCDS" => pim_sched::Method::Gomcds,
        other => {
            eprintln!("--bin supports SCDS, LOMCDS and GOMCDS (got '{other}')");
            return ExitCode::FAILURE;
        }
    };
    let (path, temp) = match &parsed.out {
        Some(out) if out.ends_with(".pimb") => (std::path::PathBuf::from(out), false),
        _ => {
            let p = std::env::temp_dir().join(format!("pim_scale_{}.pimb", std::process::id()));
            if let Err(e) = pim_trace::binfmt::pack_file(flat, &p) {
                eprintln!("cannot write {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
            (p, true)
        }
    };
    let start = Instant::now();
    let outcome = pim_sched::stream_schedule(
        &path,
        method,
        parsed.memory,
        pool,
        pim_sched::StreamConfig::default(),
    );
    let sched = start.elapsed();
    if temp {
        let _ = std::fs::remove_file(&path);
    }
    match outcome {
        Ok(o) => {
            println!(
                "{} reference runs streamed in {} chunks; build {:.1} ms, schedule {:.1} ms",
                o.num_refs,
                o.num_chunks,
                build.as_secs_f64() * 1e3,
                sched.as_secs_f64() * 1e3
            );
            println!("{}", render::breakdown(&parsed.method, o.cost));
            println!(
                "peak RSS {} MB",
                pim_bench::timing::peak_rss_kb().unwrap_or(0) / 1024
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `serve` subcommand: run the scheduling daemon on the selected
/// transport until EOF (stdin) or a `shutdown` request (sockets).
fn run_serve(parsed: &pim_cli::args::ParsedArgs) -> ExitCode {
    let config = pim_serve::ServeConfig {
        workers: parsed.serve_workers,
        queue_capacity: parsed.queue,
        cache_bytes: parsed.cache_mb << 20,
        pool_threads: parsed.threads,
    };
    if let Some(path) = &parsed.serve_socket {
        eprintln!(
            "pim-serve listening on unix socket {path} ({} workers, queue {}, cache {} MiB)",
            config.workers, config.queue_capacity, parsed.cache_mb
        );
        match pim_serve::Server::start_unix(&config, std::path::Path::new(path)) {
            Ok(server) => server.wait(),
            Err(e) => {
                eprintln!("cannot bind {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    if let Some(addr) = &parsed.serve_tcp {
        match pim_serve::Server::start_tcp(&config, addr) {
            Ok(server) => {
                eprintln!(
                    "pim-serve listening on tcp {} ({} workers, queue {}, cache {} MiB)",
                    server.tcp_addr().expect("tcp server"),
                    config.workers,
                    config.queue_capacity,
                    parsed.cache_mb
                );
                server.wait();
            }
            Err(e) => {
                eprintln!("cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    // Default: newline-delimited JSON over stdin/stdout until EOF.
    pim_serve::serve_stdio(&config);
    ExitCode::SUCCESS
}
