//! Plain-text rendering of experiment results.

use pim_sched::schedule::CostBreakdown;

/// Render a comparison table in the paper's row format.
///
/// `rows` is `(label, cost, pct_improvement)`; `sf` is the straight-forward
/// baseline cost.
pub fn comparison_table(sf: u64, rows: &[(String, u64, f64)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16} {:>12} {:>9}\n", "method", "comm", "%"));
    out.push_str(&format!("{:<16} {:>12} {:>9}\n", "S.F.", sf, "-"));
    for (label, cost, pct) in rows {
        out.push_str(&format!("{label:<16} {cost:>12} {pct:>8.1}%\n"));
    }
    out
}

/// Render one method's cost breakdown.
pub fn breakdown(label: &str, cost: CostBreakdown) -> String {
    format!(
        "{label}: total {} (reference {}, movement {})",
        cost.total(),
        cost.reference,
        cost.movement
    )
}

/// Right-pad/align helper used by the sweep binaries too.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats() {
        let t = comparison_table(
            100,
            &[
                ("SCDS".to_string(), 80, 20.0),
                ("GOMCDS".to_string(), 60, 40.0),
            ],
        );
        assert!(t.contains("S.F."));
        assert!(t.contains("100"));
        assert!(t.contains("20.0%"));
        assert!(t.contains("GOMCDS"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn breakdown_format() {
        let s = breakdown(
            "GOMCDS",
            CostBreakdown {
                reference: 9,
                movement: 1,
            },
        );
        assert_eq!(s, "GOMCDS: total 10 (reference 9, movement 1)");
    }

    #[test]
    fn rule_len() {
        assert_eq!(rule(5), "-----");
    }
}
