//! Hand-rolled argument parsing (no external CLI crates, per the
//! dependency policy).

use pim_array::grid::Grid;
use pim_sched::MemoryPolicy;
use pim_workloads::Benchmark;

/// The CLI subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Run one method and print its cost breakdown.
    Run,
    /// Run every method and the baseline, print a comparison table.
    Compare,
    /// Print trace statistics.
    Stats,
    /// Run the message simulator and print the network report.
    Simulate,
    /// Hill-climb refinement on top of a method's schedule.
    Refine,
    /// Two-copy replication on top of GOMCDS primaries.
    Replicate,
    /// Report Algorithm 3 grouping decisions per datum.
    Windows,
    /// Write the generated windowed trace to a binary file (`--out`).
    Export,
    /// Narrate the costliest data items' schedules window by window.
    Explain,
    /// List every registered scheduling method with its description.
    ListMethods,
    /// Big-instance pipeline: synthesize a flat trace (`--data`,
    /// `--windows`) and run a scheduler's SoA fast path, printing build
    /// and schedule wall times.
    Scale,
    /// Long-running scheduling daemon speaking newline-delimited JSON
    /// over stdin (`--stdin`, the default), a Unix socket (`--socket`)
    /// or TCP (`--tcp`).
    Serve,
    /// Pack a flat trace (`--trace` text file, or synthetic via
    /// `--grid`/`--data`/`--windows`/`--seed`) into the `.pimb` binary
    /// container at `--out`.
    Pack,
    /// Decode a `.pimb` binary trace (`--trace`) back to the flat text
    /// format at `--out`.
    Unpack,
}

/// Fully parsed CLI invocation.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// Selected subcommand.
    pub command: Command,
    /// Workload.
    pub bench: Benchmark,
    /// Data matrix dimension (`n × n`).
    pub size: u32,
    /// Processor grid.
    pub grid: Grid,
    /// Steps per execution window.
    pub window: usize,
    /// Scheduling method (for `run`/`simulate`): the canonical name of any
    /// scheduler registered in `pim_sched::registry()`.
    pub method: String,
    /// Memory policy.
    pub memory: MemoryPolicy,
    /// Workload RNG seed.
    pub seed: u64,
    /// Output path for `export`.
    pub out: Option<String>,
    /// Load the trace from this file instead of generating it
    /// (`run`/`stats`/`simulate`/`windows` only — the baseline comparison
    /// needs the data-array shape, which the binary format does not carry).
    pub trace_file: Option<String>,
    /// Worker threads for per-datum scheduling parallelism (`0` =
    /// sequential, the default). Schedulers that cannot parallelize
    /// ignore the pool; see `pim-cli list-methods`.
    pub threads: usize,
    /// Write a JSON run report (analytic cost + routed traffic +
    /// scheduler metrics) to this path (`run`/`compare` only).
    pub metrics_out: Option<String>,
    /// `run` only: convert the trace to the flat SoA layout and use the
    /// big-instance fast path (SCDS/LOMCDS/GOMCDS only).
    pub flat: bool,
    /// `run`: `--trace` is a `.pimb` binary file, memory-mapped and
    /// scheduled zero-copy through the flat fast path. `scale`: pack the
    /// synthetic instance to a temporary `.pimb` and schedule it through
    /// the out-of-core streaming pipeline.
    pub bin: bool,
    /// Task DAG source: a JSON file path, or the literal `natural` for
    /// the benchmark's analytically known dependence chain (`run`: gate
    /// the cycle simulation and inform precedence-aware schedulers;
    /// `export`: write the natural DAG as JSON to `--out`).
    pub dag: Option<String>,
    /// `scale` only: number of synthetic data.
    pub data: usize,
    /// `scale` only: number of execution windows.
    pub windows: usize,
    /// `serve` only: Unix socket path to listen on.
    pub serve_socket: Option<String>,
    /// `serve` only: TCP address to listen on (e.g. `127.0.0.1:7070`;
    /// port 0 picks a free port and prints it).
    pub serve_tcp: Option<String>,
    /// `serve` only: service worker threads.
    pub serve_workers: usize,
    /// `serve` only: admission queue capacity (a full queue rejects
    /// requests with a typed `overloaded` error).
    pub queue: usize,
    /// `serve` only: resident-trace store budget, MiB.
    pub cache_mb: u64,
}

impl Default for ParsedArgs {
    fn default() -> Self {
        ParsedArgs {
            command: Command::Compare,
            bench: Benchmark::Lu,
            size: 8,
            grid: Grid::new(4, 4),
            window: 2,
            method: "GOMCDS".to_string(),
            memory: MemoryPolicy::ScaledMinimum { factor: 2 },
            seed: 1998,
            out: None,
            trace_file: None,
            threads: 0,
            metrics_out: None,
            flat: false,
            bin: false,
            dag: None,
            data: 100_000,
            windows: 32,
            serve_socket: None,
            serve_tcp: None,
            serve_workers: 2,
            queue: 64,
            cache_mb: 256,
        }
    }
}

/// Error message for a bad invocation.
pub type ParseError = String;

/// Parse `WxH` grid syntax.
pub fn parse_grid(s: &str) -> Result<Grid, ParseError> {
    let (w, h) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("bad grid '{s}', expected WxH"))?;
    let w: u32 = w.parse().map_err(|_| format!("bad grid width '{w}'"))?;
    let h: u32 = h.parse().map_err(|_| format!("bad grid height '{h}'"))?;
    if w == 0 || h == 0 {
        return Err(format!("grid dimensions must be positive, got {s}"));
    }
    Ok(Grid::new(w, h))
}

/// Resolve a method name against the scheduler registry
/// (case-insensitive, aliases accepted), returning the canonical name.
pub fn parse_method(s: &str) -> Result<String, ParseError> {
    match pim_sched::registry().get(s) {
        Some(m) => Ok(m.name().to_string()),
        None => Err(format!(
            "unknown method '{s}' for --method (known: {}; see `pim-cli list-methods`)",
            pim_sched::registry().names().join(", ")
        )),
    }
}

/// Parse a memory policy: `unbounded`, `Nx` (scaled minimum) or a plain
/// integer capacity.
pub fn parse_memory(s: &str) -> Result<MemoryPolicy, ParseError> {
    if s.eq_ignore_ascii_case("unbounded") {
        return Ok(MemoryPolicy::Unbounded);
    }
    if let Some(f) = s.strip_suffix(['x', 'X']) {
        let factor: u32 = f.parse().map_err(|_| format!("bad memory factor '{s}'"))?;
        if factor == 0 {
            return Err("memory factor must be positive".to_string());
        }
        return Ok(MemoryPolicy::ScaledMinimum { factor });
    }
    let cap: u32 = s
        .parse()
        .map_err(|_| format!("bad memory capacity '{s}'"))?;
    Ok(MemoryPolicy::Capacity(cap))
}

/// Parse a full argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<ParsedArgs, ParseError> {
    let mut out = ParsedArgs::default();
    let mut it = argv.iter();
    let cmd = it.next().ok_or_else(usage)?;
    out.command = match cmd.as_str() {
        "run" => Command::Run,
        "compare" => Command::Compare,
        "stats" => Command::Stats,
        "simulate" => Command::Simulate,
        "refine" => Command::Refine,
        "replicate" => Command::Replicate,
        "windows" => Command::Windows,
        "export" => Command::Export,
        "explain" => Command::Explain,
        "list-methods" => Command::ListMethods,
        "scale" => Command::Scale,
        "serve" => Command::Serve,
        "pack" => Command::Pack,
        "unpack" => Command::Unpack,
        "-h" | "--help" | "help" => return Err(usage()),
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    };
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" => {
                let v = value()?;
                out.bench = Benchmark::parse(&v).ok_or_else(|| {
                    format!("unknown benchmark '{v}' (1-5, code, jacobi, transpose, sor)")
                })?;
            }
            "--size" => {
                let v = value()?;
                out.size = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --size, expected an integer"))?;
                if out.size == 0 {
                    return Err("--size must be positive".to_string());
                }
            }
            "--grid" => out.grid = parse_grid(&value()?)?,
            "--window" => {
                let v = value()?;
                out.window = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --window, expected an integer"))?;
                if out.window == 0 {
                    return Err("--window must be positive".to_string());
                }
            }
            "--method" => out.method = parse_method(&value()?)?,
            "--memory" => out.memory = parse_memory(&value()?)?,
            "--seed" => {
                let v = value()?;
                out.seed = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --seed, expected an integer"))?;
            }
            "--flat" => out.flat = true,
            "--bin" => out.bin = true,
            "--dag" => out.dag = Some(value()?),
            "--data" => {
                let v = value()?;
                out.data = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --data, expected an integer"))?;
                if out.data == 0 {
                    return Err("--data must be positive".to_string());
                }
            }
            "--windows" => {
                let v = value()?;
                out.windows = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --windows, expected an integer"))?;
                if out.windows == 0 {
                    return Err("--windows must be positive".to_string());
                }
            }
            "--stdin" => {} // serve's default transport; accepted for symmetry
            "--socket" => out.serve_socket = Some(value()?),
            "--tcp" => out.serve_tcp = Some(value()?),
            "--serve-workers" => {
                let v = value()?;
                out.serve_workers = v.parse().map_err(|_| {
                    format!("bad value '{v}' for --serve-workers, expected an integer")
                })?;
                if out.serve_workers == 0 {
                    return Err("--serve-workers must be positive".to_string());
                }
            }
            "--queue" => {
                let v = value()?;
                out.queue = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --queue, expected an integer"))?;
                if out.queue == 0 {
                    return Err("--queue must be positive".to_string());
                }
            }
            "--cache-mb" => {
                let v = value()?;
                out.cache_mb = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --cache-mb, expected an integer"))?;
                if out.cache_mb == 0 {
                    return Err("--cache-mb must be positive".to_string());
                }
            }
            "--out" => out.out = Some(value()?),
            "--metrics" => out.metrics_out = Some(value()?),
            "--trace" => out.trace_file = Some(value()?),
            "--threads" => {
                let v = value()?;
                out.threads = v
                    .parse()
                    .map_err(|_| format!("bad value '{v}' for --threads, expected an integer"))?;
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    if out.command == Command::Serve {
        if out.serve_socket.is_some() && out.serve_tcp.is_some() {
            return Err("--socket and --tcp are mutually exclusive".to_string());
        }
    } else if out.serve_socket.is_some()
        || out.serve_tcp.is_some()
        || argv.iter().any(|a| {
            matches!(
                a.as_str(),
                "--stdin" | "--serve-workers" | "--queue" | "--cache-mb"
            )
        })
    {
        return Err(
            "--stdin/--socket/--tcp/--serve-workers/--queue/--cache-mb are only \
             supported by `serve`"
                .to_string(),
        );
    }
    if out.metrics_out.is_some() && !matches!(out.command, Command::Run | Command::Compare) {
        return Err("--metrics is only supported by `run` and `compare`".to_string());
    }
    if out.flat && out.command != Command::Run {
        return Err(
            "--flat is only supported by `run` (use `scale` for synthetic instances)".to_string(),
        );
    }
    if out.bin {
        if !matches!(out.command, Command::Run | Command::Scale) {
            return Err("--bin is only supported by `run` and `scale`".to_string());
        }
        if out.flat {
            return Err("--bin already takes the flat fast path; drop --flat".to_string());
        }
        if out.command == Command::Run && out.trace_file.is_none() {
            return Err("run --bin needs --trace FILE.pimb".to_string());
        }
    }
    if out.command == Command::Pack && out.out.is_none() {
        return Err("pack needs --out FILE.pimb".to_string());
    }
    if out.command == Command::Unpack && (out.trace_file.is_none() || out.out.is_none()) {
        return Err("unpack needs --trace FILE.pimb and --out FILE".to_string());
    }
    if out.dag.is_some() {
        if !matches!(out.command, Command::Run | Command::Export) {
            return Err("--dag is only supported by `run` and `export`".to_string());
        }
        if out.flat {
            return Err(
                "--dag cannot be combined with --flat (the SoA fast path has no \
                        precedence context)"
                    .to_string(),
            );
        }
        if out.dag.as_deref() == Some("natural") && out.trace_file.is_some() {
            return Err(
                "--dag natural regenerates the benchmark; it cannot be combined \
                        with --trace"
                    .to_string(),
            );
        }
    }
    Ok(out)
}

/// The usage text.
pub fn usage() -> String {
    "usage: pim-cli <run|compare|stats|simulate|refine|replicate|windows|export|explain|list-methods|scale|serve|pack|unpack> \
     [--bench 1-5|code|jacobi|transpose|sor] [--size N] [--grid WxH] \
     [--window STEPS] [--method NAME (see `pim-cli list-methods`)] \
     [--memory unbounded|Nx|CAP] [--seed S] [--out FILE] [--trace FILE] \
     [--threads N (0 = sequential)] \
     [--metrics FILE (run/compare: write a JSON run report)] \
     [--flat (run: SoA fast path for scds/lomcds/gomcds)] \
     [--bin (run: --trace is a memory-mapped .pimb; scale: stream out-of-core)] \
     [--dag FILE|natural (run: precedence-gated simulation; export: write the DAG)] \
     [--data N] [--windows N (scale/pack: synthetic instance shape)] \
     [--stdin|--socket PATH|--tcp ADDR (serve: transport, default stdin)] \
     [--serve-workers N] [--queue N] [--cache-mb MB (serve: sizing)]\n\
     pack writes a flat trace (--trace text, or synthetic --grid/--data/--windows/--seed) \
     to the .pimb binary container at --out; unpack decodes a .pimb back to text; \
     export and scale write .pimb when --out ends in .pimb"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_invocation() {
        let a = parse(&v(&[
            "run",
            "--bench",
            "3",
            "--size",
            "16",
            "--grid",
            "8x4",
            "--window",
            "4",
            "--method",
            "lomcds",
            "--memory",
            "unbounded",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(a.command, Command::Run);
        assert_eq!(a.bench, Benchmark::LuCode);
        assert_eq!(a.size, 16);
        assert_eq!((a.grid.width(), a.grid.height()), (8, 4));
        assert_eq!(a.window, 4);
        assert_eq!(a.method, "LOMCDS");
        assert_eq!(a.memory, MemoryPolicy::Unbounded);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn defaults_applied() {
        let a = parse(&v(&["compare"])).unwrap();
        assert_eq!(a.command, Command::Compare);
        assert_eq!(a.size, 8);
        assert_eq!(a.memory, MemoryPolicy::ScaledMinimum { factor: 2 });
    }

    #[test]
    fn grid_syntax() {
        assert!(parse_grid("4x4").is_ok());
        assert!(parse_grid("16X2").is_ok());
        assert!(parse_grid("4").is_err());
        assert!(parse_grid("0x4").is_err());
        assert!(parse_grid("axb").is_err());
    }

    #[test]
    fn memory_syntax() {
        assert_eq!(parse_memory("unbounded"), Ok(MemoryPolicy::Unbounded));
        assert_eq!(
            parse_memory("2x"),
            Ok(MemoryPolicy::ScaledMinimum { factor: 2 })
        );
        assert_eq!(parse_memory("8"), Ok(MemoryPolicy::Capacity(8)));
        assert!(parse_memory("0x").is_err());
        assert!(parse_memory("zz").is_err());
    }

    #[test]
    fn method_names_resolve_via_registry() {
        assert_eq!(parse_method("gomcds").as_deref(), Ok("GOMCDS"));
        assert_eq!(parse_method("grouped").as_deref(), Ok("Grouped-LOMCDS"));
        // extensions outside the Method enum are first-class here
        assert_eq!(parse_method("online").as_deref(), Ok("online"));
        assert_eq!(parse_method("BASELINE").as_deref(), Ok("baseline"));
        let err = parse_method("magic").unwrap_err();
        assert!(err.contains("unknown method 'magic'"), "{err}");
        assert!(err.contains("GOMCDS"), "lists the known names: {err}");
    }

    #[test]
    fn list_methods_command() {
        let a = parse(&v(&["list-methods"])).unwrap();
        assert_eq!(a.command, Command::ListMethods);
    }

    #[test]
    fn threads_flag() {
        let a = parse(&v(&["run", "--threads", "4"])).unwrap();
        assert_eq!(a.threads, 4);
        // default is sequential
        assert_eq!(parse(&v(&["run"])).unwrap().threads, 0);
        let err = parse(&v(&["run", "--threads", "many"])).unwrap_err();
        assert!(err.contains("'many'") && err.contains("--threads"), "{err}");
    }

    #[test]
    fn metrics_flag() {
        let a = parse(&v(&["run", "--metrics", "m.json"])).unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(parse(&v(&["run"])).unwrap().metrics_out, None);
        let a = parse(&v(&["compare", "--metrics", "rows.json"])).unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("rows.json"));
        // only run/compare produce a run report
        let err = parse(&v(&["stats", "--metrics", "m.json"])).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
        let err = parse(&v(&["simulate", "--metrics", "m.json"])).unwrap_err();
        assert!(err.contains("run"), "{err}");
    }

    #[test]
    fn scale_and_flat_flags() {
        let a = parse(&v(&[
            "scale",
            "--grid",
            "64x64",
            "--data",
            "1000000",
            "--windows",
            "16",
        ]))
        .unwrap();
        assert_eq!(a.command, Command::Scale);
        assert_eq!(a.data, 1_000_000);
        assert_eq!(a.windows, 16);

        let a = parse(&v(&["run", "--flat", "--method", "scds"])).unwrap();
        assert!(a.flat);
        assert_eq!(a.method, "SCDS");
        assert!(!parse(&v(&["run"])).unwrap().flat);

        let err = parse(&v(&["compare", "--flat"])).unwrap_err();
        assert!(err.contains("--flat"), "{err}");
        let err = parse(&v(&["scale", "--data", "0"])).unwrap_err();
        assert!(err.contains("--data must be positive"), "{err}");
        let err = parse(&v(&["scale", "--windows", "none"])).unwrap_err();
        assert!(err.contains("'none'") && err.contains("--windows"), "{err}");
    }

    #[test]
    fn dag_flag() {
        let a = parse(&v(&["run", "--dag", "natural", "--bench", "1"])).unwrap();
        assert_eq!(a.dag.as_deref(), Some("natural"));
        let a = parse(&v(&["run", "--dag", "chain.json"])).unwrap();
        assert_eq!(a.dag.as_deref(), Some("chain.json"));
        let a = parse(&v(&["export", "--dag", "natural", "--out", "d.json"])).unwrap();
        assert_eq!(a.dag.as_deref(), Some("natural"));
        assert_eq!(parse(&v(&["run"])).unwrap().dag, None);
        let err = parse(&v(&["compare", "--dag", "natural"])).unwrap_err();
        assert!(err.contains("--dag"), "{err}");
        let err = parse(&v(&["run", "--flat", "--dag", "natural"])).unwrap_err();
        assert!(err.contains("--flat"), "{err}");
        let err = parse(&v(&["run", "--dag", "natural", "--trace", "t.bin"])).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
    }

    #[test]
    fn serve_flags() {
        let a = parse(&v(&["serve"])).unwrap();
        assert_eq!(a.command, Command::Serve);
        assert_eq!(a.serve_socket, None);
        assert_eq!(a.serve_tcp, None);
        assert_eq!((a.serve_workers, a.queue, a.cache_mb), (2, 64, 256));

        let a = parse(&v(&[
            "serve",
            "--tcp",
            "127.0.0.1:0",
            "--serve-workers",
            "4",
            "--queue",
            "128",
            "--cache-mb",
            "64",
        ]))
        .unwrap();
        assert_eq!(a.serve_tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!((a.serve_workers, a.queue, a.cache_mb), (4, 128, 64));

        let a = parse(&v(&["serve", "--socket", "/tmp/pim.sock"])).unwrap();
        assert_eq!(a.serve_socket.as_deref(), Some("/tmp/pim.sock"));

        let err = parse(&v(&["serve", "--socket", "s", "--tcp", "t"])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = parse(&v(&["run", "--queue", "8"])).unwrap_err();
        assert!(err.contains("serve"), "{err}");
        let err = parse(&v(&["serve", "--queue", "0"])).unwrap_err();
        assert!(err.contains("--queue must be positive"), "{err}");
        let err = parse(&v(&["serve", "--serve-workers", "0"])).unwrap_err();
        assert!(err.contains("--serve-workers must be positive"), "{err}");
    }

    #[test]
    fn pack_unpack_and_bin_flags() {
        let a = parse(&v(&[
            "pack", "--grid", "16x16", "--data", "1000", "--out", "t.pimb",
        ]))
        .unwrap();
        assert_eq!(a.command, Command::Pack);
        assert_eq!(a.out.as_deref(), Some("t.pimb"));

        let a = parse(&v(&["pack", "--trace", "t.txt", "--out", "t.pimb"])).unwrap();
        assert_eq!(a.trace_file.as_deref(), Some("t.txt"));

        let a = parse(&v(&["unpack", "--trace", "t.pimb", "--out", "t.txt"])).unwrap();
        assert_eq!(a.command, Command::Unpack);

        let a = parse(&v(&[
            "run", "--bin", "--trace", "t.pimb", "--method", "scds",
        ]))
        .unwrap();
        assert!(a.bin && !a.flat);
        let a = parse(&v(&["scale", "--bin", "--data", "5000"])).unwrap();
        assert!(a.bin);

        let err = parse(&v(&["pack", "--grid", "4x4"])).unwrap_err();
        assert!(err.contains("--out"), "{err}");
        let err = parse(&v(&["unpack", "--trace", "t.pimb"])).unwrap_err();
        assert!(err.contains("--out"), "{err}");
        let err = parse(&v(&["compare", "--bin"])).unwrap_err();
        assert!(err.contains("--bin"), "{err}");
        let err = parse(&v(&["run", "--bin"])).unwrap_err();
        assert!(err.contains("--trace"), "{err}");
        let err = parse(&v(&["run", "--bin", "--flat", "--trace", "t.pimb"])).unwrap_err();
        assert!(err.contains("--flat"), "{err}");
    }

    #[test]
    fn errors_reported() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--bench"])).is_err());
        assert!(parse(&v(&["run", "--window", "0"])).is_err());
        assert!(parse(&v(&["run", "--wat", "1"])).is_err());
    }

    #[test]
    fn errors_name_the_flag_and_value() {
        let err = parse(&v(&["run", "--size", "huge"])).unwrap_err();
        assert!(err.contains("'huge'") && err.contains("--size"), "{err}");
        let err = parse(&v(&["run", "--size", "0"])).unwrap_err();
        assert!(err.contains("--size must be positive"), "{err}");
        let err = parse(&v(&["run", "--window", "x"])).unwrap_err();
        assert!(err.contains("'x'") && err.contains("--window"), "{err}");
        let err = parse(&v(&["run", "--seed", "soon"])).unwrap_err();
        assert!(err.contains("'soon'") && err.contains("--seed"), "{err}");
        let err = parse(&v(&["run", "--method"])).unwrap_err();
        assert!(
            err.contains("--method") && err.contains("needs a value"),
            "{err}"
        );
    }
}
