//! Hand-rolled argument parsing (no external CLI crates, per the
//! dependency policy).

use pim_array::grid::Grid;
use pim_sched::{MemoryPolicy, Method};
use pim_workloads::Benchmark;

/// The CLI subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Run one method and print its cost breakdown.
    Run,
    /// Run every method and the baseline, print a comparison table.
    Compare,
    /// Print trace statistics.
    Stats,
    /// Run the message simulator and print the network report.
    Simulate,
    /// Hill-climb refinement on top of a method's schedule.
    Refine,
    /// Two-copy replication on top of GOMCDS primaries.
    Replicate,
    /// Report Algorithm 3 grouping decisions per datum.
    Windows,
    /// Write the generated windowed trace to a binary file (`--out`).
    Export,
    /// Narrate the costliest data items' schedules window by window.
    Explain,
}

/// Fully parsed CLI invocation.
#[derive(Debug, Clone)]
pub struct ParsedArgs {
    /// Selected subcommand.
    pub command: Command,
    /// Workload.
    pub bench: Benchmark,
    /// Data matrix dimension (`n × n`).
    pub size: u32,
    /// Processor grid.
    pub grid: Grid,
    /// Steps per execution window.
    pub window: usize,
    /// Scheduling method (for `run`/`simulate`).
    pub method: Method,
    /// Memory policy.
    pub memory: MemoryPolicy,
    /// Workload RNG seed.
    pub seed: u64,
    /// Output path for `export`.
    pub out: Option<String>,
    /// Load the trace from this file instead of generating it
    /// (`run`/`stats`/`simulate`/`windows` only — the baseline comparison
    /// needs the data-array shape, which the binary format does not carry).
    pub trace_file: Option<String>,
}

impl Default for ParsedArgs {
    fn default() -> Self {
        ParsedArgs {
            command: Command::Compare,
            bench: Benchmark::Lu,
            size: 8,
            grid: Grid::new(4, 4),
            window: 2,
            method: Method::Gomcds,
            memory: MemoryPolicy::ScaledMinimum { factor: 2 },
            seed: 1998,
            out: None,
            trace_file: None,
        }
    }
}

/// Error message for a bad invocation.
pub type ParseError = String;

/// Parse `WxH` grid syntax.
pub fn parse_grid(s: &str) -> Result<Grid, ParseError> {
    let (w, h) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| format!("bad grid '{s}', expected WxH"))?;
    let w: u32 = w.parse().map_err(|_| format!("bad grid width '{w}'"))?;
    let h: u32 = h.parse().map_err(|_| format!("bad grid height '{h}'"))?;
    if w == 0 || h == 0 {
        return Err(format!("grid dimensions must be positive, got {s}"));
    }
    Ok(Grid::new(w, h))
}

/// Parse a method name (case-insensitive).
pub fn parse_method(s: &str) -> Result<Method, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "scds" => Ok(Method::Scds),
        "lomcds" => Ok(Method::Lomcds),
        "gomcds" => Ok(Method::Gomcds),
        "gomcds-naive" | "gomcdsnaive" => Ok(Method::GomcdsNaive),
        "grouped" | "grouped-local" | "grouped-lomcds" => Ok(Method::GroupedLocal),
        "grouped-gomcds" => Ok(Method::GroupedGomcds),
        _ => Err(format!(
            "unknown method '{s}' (scds, lomcds, gomcds, gomcds-naive, grouped, grouped-gomcds)"
        )),
    }
}

/// Parse a memory policy: `unbounded`, `Nx` (scaled minimum) or a plain
/// integer capacity.
pub fn parse_memory(s: &str) -> Result<MemoryPolicy, ParseError> {
    if s.eq_ignore_ascii_case("unbounded") {
        return Ok(MemoryPolicy::Unbounded);
    }
    if let Some(f) = s.strip_suffix(['x', 'X']) {
        let factor: u32 = f
            .parse()
            .map_err(|_| format!("bad memory factor '{s}'"))?;
        if factor == 0 {
            return Err("memory factor must be positive".to_string());
        }
        return Ok(MemoryPolicy::ScaledMinimum { factor });
    }
    let cap: u32 = s
        .parse()
        .map_err(|_| format!("bad memory capacity '{s}'"))?;
    Ok(MemoryPolicy::Capacity(cap))
}

/// Parse a full argument vector (without the program name).
pub fn parse(argv: &[String]) -> Result<ParsedArgs, ParseError> {
    let mut out = ParsedArgs::default();
    let mut it = argv.iter();
    let cmd = it.next().ok_or_else(usage)?;
    out.command = match cmd.as_str() {
        "run" => Command::Run,
        "compare" => Command::Compare,
        "stats" => Command::Stats,
        "simulate" => Command::Simulate,
        "refine" => Command::Refine,
        "replicate" => Command::Replicate,
        "windows" => Command::Windows,
        "export" => Command::Export,
        "explain" => Command::Explain,
        "-h" | "--help" | "help" => return Err(usage()),
        other => return Err(format!("unknown command '{other}'\n{}", usage())),
    };
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" => {
                let v = value()?;
                out.bench = Benchmark::parse(&v)
                    .ok_or_else(|| format!("unknown benchmark '{v}' (1-5, code, jacobi, transpose, sor)"))?;
            }
            "--size" => {
                out.size = value()?
                    .parse()
                    .map_err(|_| "bad --size".to_string())?;
            }
            "--grid" => out.grid = parse_grid(&value()?)?,
            "--window" => {
                out.window = value()?
                    .parse()
                    .map_err(|_| "bad --window".to_string())?;
                if out.window == 0 {
                    return Err("--window must be positive".to_string());
                }
            }
            "--method" => out.method = parse_method(&value()?)?,
            "--memory" => out.memory = parse_memory(&value()?)?,
            "--seed" => {
                out.seed = value()?
                    .parse()
                    .map_err(|_| "bad --seed".to_string())?;
            }
            "--out" => out.out = Some(value()?),
            "--trace" => out.trace_file = Some(value()?),
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(out)
}

/// The usage text.
pub fn usage() -> String {
    "usage: pim-cli <run|compare|stats|simulate|refine|replicate|windows|export|explain> \
     [--bench 1-5|code|jacobi|transpose|sor] [--size N] [--grid WxH] \
     [--window STEPS] [--method scds|lomcds|gomcds|grouped] \
     [--memory unbounded|Nx|CAP] [--seed S] [--out FILE] [--trace FILE]"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_full_invocation() {
        let a = parse(&v(&[
            "run", "--bench", "3", "--size", "16", "--grid", "8x4", "--window", "4", "--method",
            "lomcds", "--memory", "unbounded", "--seed", "7",
        ]))
        .unwrap();
        assert_eq!(a.command, Command::Run);
        assert_eq!(a.bench, Benchmark::LuCode);
        assert_eq!(a.size, 16);
        assert_eq!((a.grid.width(), a.grid.height()), (8, 4));
        assert_eq!(a.window, 4);
        assert_eq!(a.method, pim_sched::Method::Lomcds);
        assert_eq!(a.memory, MemoryPolicy::Unbounded);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn defaults_applied() {
        let a = parse(&v(&["compare"])).unwrap();
        assert_eq!(a.command, Command::Compare);
        assert_eq!(a.size, 8);
        assert_eq!(a.memory, MemoryPolicy::ScaledMinimum { factor: 2 });
    }

    #[test]
    fn grid_syntax() {
        assert!(parse_grid("4x4").is_ok());
        assert!(parse_grid("16X2").is_ok());
        assert!(parse_grid("4").is_err());
        assert!(parse_grid("0x4").is_err());
        assert!(parse_grid("axb").is_err());
    }

    #[test]
    fn memory_syntax() {
        assert_eq!(parse_memory("unbounded"), Ok(MemoryPolicy::Unbounded));
        assert_eq!(
            parse_memory("2x"),
            Ok(MemoryPolicy::ScaledMinimum { factor: 2 })
        );
        assert_eq!(parse_memory("8"), Ok(MemoryPolicy::Capacity(8)));
        assert!(parse_memory("0x").is_err());
        assert!(parse_memory("zz").is_err());
    }

    #[test]
    fn method_names() {
        assert_eq!(parse_method("GOMCDS"), Ok(Method::Gomcds));
        assert_eq!(parse_method("grouped"), Ok(Method::GroupedLocal));
        assert!(parse_method("magic").is_err());
    }

    #[test]
    fn errors_reported() {
        assert!(parse(&v(&[])).is_err());
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--bench"])).is_err());
        assert!(parse(&v(&["run", "--window", "0"])).is_err());
        assert!(parse(&v(&["run", "--wat", "1"])).is_err());
    }
}
