#![warn(missing_docs)]
//! # pim-cli
//!
//! Library side of the command-line driver: argument parsing and text
//! rendering, kept out of `main.rs` so it can be unit-tested.
//!
//! ```text
//! pim-cli run      --bench 3 --size 16 --grid 4x4 --window 2 --method gomcds --memory 2x
//! pim-cli compare  --bench 1 --size 8            # all methods side by side
//! pim-cli stats    --bench 5 --size 16           # trace statistics
//! pim-cli simulate --bench 1 --size 8 --method lomcds
//! ```

pub mod args;
pub mod render;

pub use args::{Command, ParsedArgs};
