//! Property tests for the binary trace encoding: arbitrary traces
//! round-trip, arbitrary corruption never panics, and re-encoding is
//! canonical. The second half covers the two text decode paths the
//! serve daemon exposes to untrusted input — the flat-trace text format
//! and the `TraceDelta` JSON codec — which must return typed errors on
//! arbitrary corruption, truncation and out-of-range ids, never panic.

use pim_array::grid::{Grid, ProcId};
use pim_trace::edit::{EditableTrace, TraceDelta};
use pim_trace::encode::{decode_trace, encode_trace, encoded_size};
use pim_trace::flat::{FlatRecord, FlatTrace};
use pim_trace::ids::DataId;
use pim_trace::window::{WindowRefs, WindowedTrace};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = WindowedTrace> {
    (1u32..=6, 1u32..=6).prop_flat_map(|(w, h)| {
        let grid = Grid::new(w, h);
        let m = grid.num_procs() as u32;
        (1usize..=4, 1usize..=5).prop_flat_map(move |(nd, nw)| {
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec((0..m, 1u32..100), 0..5),
                    nw..=nw,
                ),
                nd..=nd,
            )
            .prop_map(move |data| {
                let per_data = data
                    .into_iter()
                    .map(|windows| {
                        windows
                            .into_iter()
                            .map(|pairs| {
                                WindowRefs::from_pairs(
                                    pairs.into_iter().map(|(p, n)| (ProcId(p), n)),
                                )
                            })
                            .collect()
                    })
                    .collect();
                WindowedTrace::from_parts(grid, per_data)
            })
        })
    })
}

proptest! {
    #[test]
    fn roundtrip(trace in arb_trace()) {
        let buf = encode_trace(&trace);
        prop_assert_eq!(buf.len(), encoded_size(&trace));
        let back = decode_trace(buf).expect("well-formed encoding decodes");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn reencoding_is_canonical(trace in arb_trace()) {
        let a = encode_trace(&trace);
        let b = encode_trace(&decode_trace(a.clone()).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn corruption_never_panics(trace in arb_trace(), byte in 0usize..4096, flip in 1u8..=255) {
        let buf = encode_trace(&trace);
        let mut raw = buf.to_vec();
        let idx = byte % raw.len();
        raw[idx] ^= flip;
        // decoding may succeed (if the flip hits a count) or fail — it must
        // never panic, and a success must still be structurally valid.
        if let Ok(t) = decode_trace(bytes::Bytes::from(raw)) {
            prop_assert!(pim_trace::validate::validate_windowed(&t).is_ok());
        }
    }

    #[test]
    fn truncation_always_detected(trace in arb_trace(), frac in 0u32..100) {
        let buf = encode_trace(&trace);
        if buf.len() <= 1 {
            return Ok(());
        }
        let cut = (buf.len() as u64 * frac as u64 / 100) as usize;
        let cut = cut.min(buf.len() - 1);
        prop_assert!(decode_trace(buf.slice(0..cut)).is_err());
    }
}

fn arb_flat() -> impl Strategy<Value = FlatTrace> {
    (1u32..=6, 1u32..=6, 1usize..=5, 1usize..=6).prop_flat_map(|(w, h, nw, nd)| {
        let m = w * h;
        proptest::collection::vec((0..nd as u32, 0..nw as u32, 0..m, 1u32..100), 0..12).prop_map(
            move |rows| {
                let records = rows.into_iter().map(|(d, win, p, n)| FlatRecord {
                    datum: DataId(d),
                    window: win,
                    proc: ProcId(p),
                    count: n,
                });
                FlatTrace::from_records(Grid::new(w, h), nw, nd, records)
                    .expect("in-range records build")
            },
        )
    })
}

fn arb_delta() -> impl Strategy<Value = TraceDelta> {
    let set_run = (
        0u32..50,
        0u32..50,
        proptest::collection::vec((0u32..50, 0u32..1000), 0..4),
    )
        .prop_map(|(d, w, refs)| (Some((d, w, refs)), None));
    let append = proptest::collection::vec((0u32..50, 0u32..50, 0u32..1000), 0..4)
        .prop_map(|rows| (None, Some(rows)));
    type OneOp = (
        Option<(u32, u32, Vec<(u32, u32)>)>,
        Option<Vec<(u32, u32, u32)>>,
    );
    proptest::collection::vec(prop_oneof![set_run, append], 0..5).prop_map(|ops: Vec<OneOp>| {
        let mut delta = TraceDelta::new();
        for (set, app) in ops {
            if let Some((d, w, refs)) = set {
                delta.set_run(DataId(d), w, refs.into_iter().map(|(p, n)| (ProcId(p), n)));
            }
            if let Some(rows) = app {
                delta.append_window(rows.into_iter().map(|(d, p, n)| (DataId(d), ProcId(p), n)));
            }
        }
        delta
    })
}

proptest! {
    // --- flat text decode path (serve `load` requests) ---

    #[test]
    fn flat_text_roundtrip(flat in arb_flat()) {
        let text = flat.to_text();
        let back = FlatTrace::from_reader(text.as_bytes())
            .expect("canonical text parses");
        prop_assert_eq!(back, flat);
    }

    #[test]
    fn flat_text_corruption_never_panics(
        flat in arb_flat(),
        byte in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut raw = flat.to_text().into_bytes();
        let idx = byte % raw.len();
        raw[idx] ^= flip;
        // Must return a Result — Ok when the flip lands on an equivalent
        // spelling, a typed Err otherwise — and never panic. (Invalid
        // UTF-8 surfaces as FlatTraceError::Io via the line reader.)
        let _ = FlatTrace::from_reader(&raw[..]);
    }

    #[test]
    fn flat_text_truncation_never_panics(flat in arb_flat(), frac in 0u32..100) {
        let text = flat.to_text();
        let cut = (text.len() as u64 * frac as u64 / 100) as usize;
        // Truncation may cut at a record boundary (still a valid, smaller
        // trace) or mid-record / mid-header (typed parse error); the
        // property is only that it never panics or misattributes.
        let _ = FlatTrace::from_reader(&text.as_bytes()[..cut.min(text.len())]);
    }

    // --- binary `.pimb` container (pack/unpack, mmap load path) ---

    #[test]
    fn binfmt_text_binary_text_is_bit_identical(flat in arb_flat()) {
        let bytes = pim_trace::binfmt::encode_flat(&flat);
        let back = pim_trace::binfmt::read_flat(&bytes)
            .expect("well-formed container decodes");
        prop_assert_eq!(&back, &flat);
        // The full loop text -> binary -> text reproduces the text
        // byte-for-byte, and re-encoding the decoded trace reproduces
        // the container byte-for-byte (canonical encoding).
        prop_assert_eq!(back.to_text(), flat.to_text());
        prop_assert_eq!(pim_trace::binfmt::encode_flat(&back), bytes);
    }

    #[test]
    fn binfmt_corruption_is_typed_never_panics(
        flat in arb_flat(),
        byte in 0usize..16384,
        flip in 1u8..=255,
    ) {
        let mut raw = pim_trace::binfmt::encode_flat(&flat);
        let idx = byte % raw.len();
        raw[idx] ^= flip;
        // Payload flips are caught by the checksum; count flips by the
        // exact-length check; magic/version/checksum flips by their own
        // header checks. Only the structurally-validated header fields —
        // grid dims (bytes 8..16) and the window count (16..24) — can
        // absorb a flip and still decode (e.g. widening the grid keeps
        // every ref in range). Never a panic or out-of-bounds read.
        match pim_trace::binfmt::read_flat(&raw) {
            Err(_) => {}
            Ok(_) => prop_assert!(
                (8..24).contains(&idx),
                "flip at byte {} decoded anyway", idx
            ),
        }
    }

    #[test]
    fn binfmt_truncation_is_typed(flat in arb_flat(), frac in 0u32..100) {
        let raw = pim_trace::binfmt::encode_flat(&flat);
        let cut = (raw.len() as u64 * frac as u64 / 100) as usize;
        let cut = cut.min(raw.len() - 1);
        // The container's exact-length contract makes any truncation a
        // typed error (short header or length mismatch), never a panic.
        prop_assert!(pim_trace::binfmt::read_flat(&raw[..cut]).is_err());
        // Trailing garbage is equally rejected: the total length must
        // match the header-declared counts exactly.
        let mut extended = raw.clone();
        extended.push(0);
        prop_assert!(pim_trace::binfmt::read_flat(&extended).is_err());
    }

    // --- TraceDelta JSON decode path (serve `edit` requests) ---

    #[test]
    fn delta_json_roundtrip(delta in arb_delta()) {
        let text = delta.to_json();
        let back = TraceDelta::from_json(&text).expect("canonical JSON parses");
        prop_assert_eq!(back, delta);
    }

    #[test]
    fn delta_json_corruption_never_panics(
        delta in arb_delta(),
        byte in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut raw = delta.to_json().into_bytes();
        let idx = byte % raw.len();
        raw[idx] ^= flip;
        if let Ok(text) = String::from_utf8(raw) {
            // Parse may succeed (flip hit a digit) or fail with a typed
            // DeltaJsonError — never panic.
            let _ = TraceDelta::from_json(&text);
        }
    }

    // --- range validation: check/apply agree and reject atomically ---

    #[test]
    fn delta_check_apply_agree_and_are_atomic(flat in arb_flat(), delta in arb_delta()) {
        let mut editable = EditableTrace::new(flat);
        let before = editable.materialize();
        let version = editable.version();
        let checked = editable.check(&delta).is_ok();
        match editable.apply(&delta) {
            Ok(()) => prop_assert!(checked, "apply succeeded but check rejected"),
            Err(_) => {
                // Typed error, and the trace is untouched (atomicity).
                prop_assert!(!checked, "check passed but apply failed");
                prop_assert_eq!(editable.version(), version);
                prop_assert_eq!(editable.materialize(), before);
            }
        }
    }
}
