//! Property tests for the binary trace encoding: arbitrary traces
//! round-trip, arbitrary corruption never panics, and re-encoding is
//! canonical.

use pim_array::grid::{Grid, ProcId};
use pim_trace::encode::{decode_trace, encode_trace, encoded_size};
use pim_trace::window::{WindowRefs, WindowedTrace};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = WindowedTrace> {
    (1u32..=6, 1u32..=6).prop_flat_map(|(w, h)| {
        let grid = Grid::new(w, h);
        let m = grid.num_procs() as u32;
        (1usize..=4, 1usize..=5).prop_flat_map(move |(nd, nw)| {
            proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec((0..m, 1u32..100), 0..5),
                    nw..=nw,
                ),
                nd..=nd,
            )
            .prop_map(move |data| {
                let per_data = data
                    .into_iter()
                    .map(|windows| {
                        windows
                            .into_iter()
                            .map(|pairs| {
                                WindowRefs::from_pairs(
                                    pairs.into_iter().map(|(p, n)| (ProcId(p), n)),
                                )
                            })
                            .collect()
                    })
                    .collect();
                WindowedTrace::from_parts(grid, per_data)
            })
        })
    })
}

proptest! {
    #[test]
    fn roundtrip(trace in arb_trace()) {
        let buf = encode_trace(&trace);
        prop_assert_eq!(buf.len(), encoded_size(&trace));
        let back = decode_trace(buf).expect("well-formed encoding decodes");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn reencoding_is_canonical(trace in arb_trace()) {
        let a = encode_trace(&trace);
        let b = encode_trace(&decode_trace(a.clone()).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn corruption_never_panics(trace in arb_trace(), byte in 0usize..4096, flip in 1u8..=255) {
        let buf = encode_trace(&trace);
        let mut raw = buf.to_vec();
        let idx = byte % raw.len();
        raw[idx] ^= flip;
        // decoding may succeed (if the flip hits a count) or fail — it must
        // never panic, and a success must still be structurally valid.
        if let Ok(t) = decode_trace(bytes::Bytes::from(raw)) {
            prop_assert!(pim_trace::validate::validate_windowed(&t).is_ok());
        }
    }

    #[test]
    fn truncation_always_detected(trace in arb_trace(), frac in 0u32..100) {
        let buf = encode_trace(&trace);
        if buf.len() <= 1 {
            return Ok(());
        }
        let cut = (buf.len() as u64 * frac as u64 / 100) as usize;
        let cut = cut.min(buf.len() - 1);
        prop_assert!(decode_trace(buf.slice(0..cut)).is_err());
    }
}
