//! Structural validation of traces at crate boundaries.
//!
//! Schedulers index flat vectors by processor and datum ids; a malformed
//! trace would turn into a panic deep inside a DP loop. Validating once at
//! the boundary gives a precise error instead.

use crate::step::StepTrace;
use crate::window::WindowedTrace;

/// A structural problem found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A processor id `≥ grid.num_procs()` appeared.
    ProcOutOfRange {
        /// Step index where it appeared (`None` for windowed traces).
        step: Option<usize>,
        /// The offending processor id.
        proc: u32,
    },
    /// A datum id `≥ num_data` appeared.
    DataOutOfRange {
        /// Step index where it appeared (`None` for windowed traces).
        step: Option<usize>,
        /// The offending datum id.
        data: u32,
    },
    /// The trace has no windows.
    NoWindows,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceError::ProcOutOfRange { step, proc } => match step {
                Some(s) => write!(f, "step {s}: processor P{proc} out of range"),
                None => write!(f, "processor P{proc} out of range"),
            },
            TraceError::DataOutOfRange { step, data } => match step {
                Some(s) => write!(f, "step {s}: datum D{data} out of range"),
                None => write!(f, "datum D{data} out of range"),
            },
            TraceError::NoWindows => write!(f, "trace has no execution windows"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Validate a raw step trace.
pub fn validate_steps(trace: &StepTrace) -> Result<(), TraceError> {
    let nprocs = trace.grid.num_procs();
    for (i, step) in trace.steps.iter().enumerate() {
        for a in &step.accesses {
            if a.proc.index() >= nprocs {
                return Err(TraceError::ProcOutOfRange {
                    step: Some(i),
                    proc: a.proc.0,
                });
            }
            if a.data.0 >= trace.num_data {
                return Err(TraceError::DataOutOfRange {
                    step: Some(i),
                    data: a.data.0,
                });
            }
        }
    }
    Ok(())
}

/// Validate a windowed trace.
pub fn validate_windowed(trace: &WindowedTrace) -> Result<(), TraceError> {
    if trace.num_windows() == 0 {
        return Err(TraceError::NoWindows);
    }
    let nprocs = trace.grid().num_procs();
    for (_, rs) in trace.iter_data() {
        for w in rs.windows() {
            for r in w.iter() {
                if r.proc.index() >= nprocs {
                    return Err(TraceError::ProcOutOfRange {
                        step: None,
                        proc: r.proc.0,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DataId;
    use crate::step::{Access, ExecStep};
    use crate::window::WindowRefs;
    use pim_array::grid::{Grid, ProcId};

    #[test]
    fn accepts_valid_step_trace() {
        let g = Grid::new(2, 2);
        let t = StepTrace {
            grid: g,
            num_data: 2,
            steps: vec![ExecStep {
                accesses: vec![Access {
                    proc: ProcId(3),
                    data: DataId(1),
                    count: 1,
                }],
            }],
        };
        assert_eq!(validate_steps(&t), Ok(()));
    }

    #[test]
    fn rejects_bad_proc_in_steps() {
        let g = Grid::new(2, 2);
        let t = StepTrace {
            grid: g,
            num_data: 2,
            steps: vec![ExecStep {
                accesses: vec![Access {
                    proc: ProcId(4),
                    data: DataId(0),
                    count: 1,
                }],
            }],
        };
        assert_eq!(
            validate_steps(&t),
            Err(TraceError::ProcOutOfRange {
                step: Some(0),
                proc: 4
            })
        );
    }

    #[test]
    fn rejects_bad_data_in_steps() {
        let g = Grid::new(2, 2);
        let t = StepTrace {
            grid: g,
            num_data: 1,
            steps: vec![ExecStep {
                accesses: vec![Access {
                    proc: ProcId(0),
                    data: DataId(3),
                    count: 1,
                }],
            }],
        };
        assert!(matches!(
            validate_steps(&t),
            Err(TraceError::DataOutOfRange { .. })
        ));
    }

    #[test]
    fn windowed_validation() {
        let g = Grid::new(2, 2);
        let ok = WindowedTrace::from_parts(g, vec![vec![WindowRefs::from_pairs([(ProcId(3), 1)])]]);
        assert_eq!(validate_windowed(&ok), Ok(()));
        let bad =
            WindowedTrace::from_parts(g, vec![vec![WindowRefs::from_pairs([(ProcId(9), 1)])]]);
        assert!(matches!(
            validate_windowed(&bad),
            Err(TraceError::ProcOutOfRange {
                step: None,
                proc: 9
            })
        ));
    }

    #[test]
    fn error_messages() {
        let e = TraceError::ProcOutOfRange {
            step: Some(3),
            proc: 7,
        };
        assert_eq!(e.to_string(), "step 3: processor P7 out of range");
        assert_eq!(
            TraceError::NoWindows.to_string(),
            "trace has no execution windows"
        );
    }
}
