//! Just-enough JSON for the workspace's hand-rolled documents.
//!
//! The vendored serde shim has no serializer or deserializer, so every
//! JSON surface in this workspace — DAG files ([`crate::dag::TaskDag`]),
//! churn deltas ([`crate::edit::TraceDelta`]), and the `pim-serve` request
//! protocol — is written and parsed by hand. This module is the one shared
//! parser those surfaces build on: a recursive-descent reader producing a
//! [`Value`] tree, plus the string-escaping helper the writers use.
//!
//! Design constraints, in order:
//!
//! * **Never panic.** Malformed input must come back as `Err(String)`;
//!   the serve daemon feeds this parser raw bytes off a socket
//!   (property-tested in `crates/trace/tests/encode_props.rs`).
//! * **Bounded recursion.** Nesting deeper than [`MAX_DEPTH`] is rejected
//!   so an adversarial `[[[[…` line cannot blow the stack.
//! * **Integers are exact.** Unsigned integers that fit `u64` parse as
//!   [`Value::Num`]; everything else numeric (signs, fractions,
//!   exponents) parses as [`Value::Float`]. Schema code that wants an id
//!   calls [`Value::as_u64`] and naturally rejects `1.5` or `-1`.

/// Maximum object/array nesting accepted by [`parse`].
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer that fits `u64` exactly.
    Num(u64),
    /// Any other number (negative, fractional, or exponent form).
    Float(f64),
    /// A string value.
    Str(String),
    /// An array of values.
    Arr(Vec<Value>),
    /// An object as ordered key/value pairs (duplicates preserved in
    /// input order; schema code decides whether to reject them).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as object pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// First value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

/// Append `s` to `out` with JSON string escaping (quotes not included).
/// The inverse of the parser's escape handling: control characters become
/// `\uXXXX`, quotes and backslashes are backslash-escaped.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use core::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh `String` (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = string(b, pos)?;
                expect(b, pos, b':')?;
                out.push((key, value(b, pos, depth + 1)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(out));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => string(b, pos).map(Value::Str),
        Some(b't') => literal(b, pos, "true", Value::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let s = core::str::from_utf8(&b[start..*pos]).expect("ascii digits are utf8");
    if s == "-" {
        return Err(format!("bad number at byte {start}"));
    }
    if !fractional && !s.starts_with('-') {
        return s
            .parse::<u64>()
            .map(Value::Num)
            .map_err(|_| format!("number {s} overflows u64"));
    }
    match s.parse::<f64>() {
        Ok(f) if f.is_finite() => Ok(Value::Float(f)),
        _ => Err(format!("bad number {s:?} at byte {start}")),
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let start = *pos;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate halves are not paired up; reject them
                        // rather than emit invalid scalars.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("bad \\u scalar at byte {}", *pos))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("unsupported escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            _ => {
                // Multi-byte UTF-8: take the full scalar from the source
                // (the input is a &str, so the bytes are valid UTF-8).
                let rest = core::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid utf8 inside string starting at byte {start}"))?;
                let c = rest.chars().next().expect("non-empty by loop guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("42").unwrap(), Value::Num(42));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
        assert_eq!(parse("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(parse("2e3").unwrap(), Value::Float(2000.0));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse(r#"{"op":"load","n":3,"flag":true,"arr":[1,2]}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("load"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("flag").and_then(Value::as_bool), Some(true));
        assert_eq!(
            v.get("arr").and_then(Value::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\r\u{0001}é—";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::Str(nasty.to_string()));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Value::Str("Aé".into()));
        assert!(parse(r#""\ud800""#).is_err()); // lone surrogate
        assert!(parse(r#""\u00g1""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{",
            "[",
            "\"",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "tru",
            "nul",
            "-",
            "1..2",
            "1e",
            "{\"a\":1} x",
            "[1 2]",
            "\"\\q\"",
            "\"\\u12\"",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_integer_rejected() {
        assert!(parse("99999999999999999999999").is_err());
    }
}
