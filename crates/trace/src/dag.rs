//! Task precedence DAGs attached to a windowed trace.
//!
//! The 1998 paper assumes every reference in an execution window is ready
//! the instant the window opens. Real PIM workloads are dependence graphs:
//! an LU pivot's scaling step must finish before the trailing update that
//! consumes it may start. [`TaskDag`] makes that structure a first-class,
//! *optional* layer on top of [`WindowedTrace`]:
//!
//! * every [`Task`] lives in one execution window and **owns** a slice of
//!   that window's references — the set of data whose window-`w` reference
//!   strings belong to the task;
//! * edges connect tasks with `pred.window <= succ.window` (cross-window
//!   edges are legal; the window barrier already orders them, but they
//!   still contribute to critical-path lengths);
//! * within a window the ownership sets are disjoint, and
//!   [`TaskDag::validate_cover`] checks the partition is *complete* against
//!   a concrete trace: every `(window, datum)` pair with a non-empty
//!   reference string is owned by exactly one task, and no task owns a pair
//!   the trace never references.
//!
//! Schedulers read the DAG through [`TaskDag::topo_order`] /
//! [`TaskDag::preds`] / [`TaskDag::owner`]; the cycle simulator uses the
//! intra-window edges to gate message release. A trace with no DAG (or an
//! edge-free DAG) must behave exactly as before — that conformance is
//! pinned by proptests in `tests/cache_equivalence.rs`.
//!
//! The on-disk form is a small, self-contained JSON document
//! ([`TaskDag::to_json`] / [`TaskDag::from_json`]) so DAGs can ride next to
//! the binary trace encoding without a new container format.

use crate::ids::DataId;
use crate::json;
use crate::window::WindowedTrace;

/// One node of the precedence graph: a task in execution window `window`
/// owning the window-`window` reference strings of every datum in `data`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// The execution window the task runs in.
    pub window: u32,
    /// The data whose references in `window` this task owns.
    pub data: Vec<DataId>,
    /// Worst-case execution time (abstract units; used by priority
    /// heuristics, not by the cycle simulator).
    pub wcet: u64,
}

/// Why a [`TaskDag`] could not be built or did not match a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A task named a window `>= num_windows`.
    WindowOutOfRange {
        /// Index of the offending task.
        task: usize,
        /// Its out-of-range window.
        window: u32,
        /// Number of windows the DAG declares.
        num_windows: usize,
    },
    /// An edge endpoint named a task `>= num_tasks`.
    TaskOutOfRange {
        /// The offending task index.
        task: u32,
        /// Number of tasks in the DAG.
        num_tasks: usize,
    },
    /// An edge connected a task to itself.
    SelfEdge {
        /// The task with the self loop.
        task: u32,
    },
    /// An edge ran backwards in window order (`pred.window > succ.window`).
    BackwardEdge {
        /// Predecessor endpoint.
        pred: u32,
        /// Successor endpoint.
        succ: u32,
    },
    /// The edges form a cycle.
    Cycle,
    /// Two tasks in the same window both claimed a datum.
    DuplicateOwner {
        /// The contested window.
        window: u32,
        /// The contested datum.
        datum: DataId,
        /// The two claiming tasks.
        tasks: (u32, u32),
    },
    /// The trace references a `(window, datum)` pair no task owns.
    Unowned {
        /// Window of the orphaned references.
        window: u32,
        /// The orphaned datum.
        datum: DataId,
    },
    /// A task owns a `(window, datum)` pair the trace never references,
    /// or a datum outside the trace's population.
    OwnsUnreferenced {
        /// Index of the offending task.
        task: usize,
        /// Its window.
        window: u32,
        /// The never-referenced datum.
        datum: DataId,
    },
    /// The DAG and the trace disagree on the window count.
    WindowCountMismatch {
        /// Windows the DAG declares.
        dag: usize,
        /// Windows the trace has.
        trace: usize,
    },
    /// The JSON input did not parse or had the wrong shape.
    Json(String),
}

impl core::fmt::Display for DagError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DagError::WindowOutOfRange {
                task,
                window,
                num_windows,
            } => write!(
                f,
                "task {task}: window {window} out of range (dag declares {num_windows})"
            ),
            DagError::TaskOutOfRange { task, num_tasks } => {
                write!(f, "edge endpoint {task} out of range (dag has {num_tasks} tasks)")
            }
            DagError::SelfEdge { task } => write!(f, "task {task} depends on itself"),
            DagError::BackwardEdge { pred, succ } => write!(
                f,
                "edge {pred} -> {succ} runs backwards in window order"
            ),
            DagError::Cycle => write!(f, "precedence edges form a cycle"),
            DagError::DuplicateOwner {
                window,
                datum,
                tasks,
            } => write!(
                f,
                "datum {} in window {window} owned by both task {} and task {}",
                datum.0, tasks.0, tasks.1
            ),
            DagError::Unowned { window, datum } => write!(
                f,
                "datum {} is referenced in window {window} but no task owns it",
                datum.0
            ),
            DagError::OwnsUnreferenced {
                task,
                window,
                datum,
            } => write!(
                f,
                "task {task} owns datum {} in window {window} but the trace never references it there",
                datum.0
            ),
            DagError::WindowCountMismatch { dag, trace } => write!(
                f,
                "dag declares {dag} windows but the trace has {trace}"
            ),
            DagError::Json(msg) => write!(f, "bad dag json: {msg}"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated task precedence DAG over a trace's execution windows.
///
/// Construction ([`TaskDag::new`]) checks windows are in range, edges are
/// forward-in-window, self-loop free and acyclic, and per-window ownership
/// is disjoint; [`TaskDag::validate_cover`] additionally checks the
/// partition exactly covers a concrete trace's non-empty reference
/// strings. Adjacency is stored CSR both ways, and a topological order is
/// precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDag {
    num_windows: usize,
    tasks: Vec<Task>,
    edges: Vec<(u32, u32)>,
    succ_off: Vec<usize>,
    succ_adj: Vec<u32>,
    pred_off: Vec<usize>,
    pred_adj: Vec<u32>,
    /// Task ids grouped by window, ascending.
    window_tasks: Vec<Vec<u32>>,
    /// Sorted `(window, datum) -> owning task` lookup.
    owners: Vec<(u32, u32, u32)>,
    topo: Vec<u32>,
}

impl TaskDag {
    /// Build and validate a DAG. `edges` are `(pred, succ)` task-index
    /// pairs; duplicates are tolerated (deduplicated in the adjacency).
    pub fn new(
        num_windows: usize,
        tasks: Vec<Task>,
        mut edges: Vec<(u32, u32)>,
    ) -> Result<TaskDag, DagError> {
        let num_windows = num_windows.max(1);
        let n = tasks.len();
        for (i, t) in tasks.iter().enumerate() {
            if t.window as usize >= num_windows {
                return Err(DagError::WindowOutOfRange {
                    task: i,
                    window: t.window,
                    num_windows,
                });
            }
        }
        edges.sort_unstable();
        edges.dedup();
        for &(a, b) in &edges {
            for &e in &[a, b] {
                if e as usize >= n {
                    return Err(DagError::TaskOutOfRange {
                        task: e,
                        num_tasks: n,
                    });
                }
            }
            if a == b {
                return Err(DagError::SelfEdge { task: a });
            }
            if tasks[a as usize].window > tasks[b as usize].window {
                return Err(DagError::BackwardEdge { pred: a, succ: b });
            }
        }
        // Ownership: disjoint per window.
        let mut owners: Vec<(u32, u32, u32)> = Vec::new();
        for (i, t) in tasks.iter().enumerate() {
            for &d in &t.data {
                owners.push((t.window, d.0, i as u32));
            }
        }
        owners.sort_unstable();
        for pair in owners.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].1 == pair[1].1 {
                return Err(DagError::DuplicateOwner {
                    window: pair[0].0,
                    datum: DataId(pair[0].1),
                    tasks: (pair[0].2, pair[1].2),
                });
            }
        }
        // CSR adjacency both ways.
        let (succ_off, succ_adj) = csr(n, edges.iter().map(|&(a, b)| (a, b)));
        let (pred_off, pred_adj) = csr(n, edges.iter().map(|&(a, b)| (b, a)));
        // Kahn's algorithm: detects cycles and yields the topo order used
        // by priority passes. Ready tasks pop in ascending id order so the
        // order is deterministic.
        let mut indeg: Vec<usize> = (0..n).map(|t| pred_off[t + 1] - pred_off[t]).collect();
        let mut ready: std::collections::BinaryHeap<core::cmp::Reverse<u32>> = (0..n as u32)
            .filter(|&t| indeg[t as usize] == 0)
            .map(core::cmp::Reverse)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(core::cmp::Reverse(t)) = ready.pop() {
            topo.push(t);
            for &s in &succ_adj[succ_off[t as usize]..succ_off[t as usize + 1]] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    ready.push(core::cmp::Reverse(s));
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cycle);
        }
        let mut window_tasks = vec![Vec::new(); num_windows];
        for (i, t) in tasks.iter().enumerate() {
            window_tasks[t.window as usize].push(i as u32);
        }
        Ok(TaskDag {
            num_windows,
            tasks,
            edges,
            succ_off,
            succ_adj,
            pred_off,
            pred_adj,
            window_tasks,
            owners,
            topo,
        })
    }

    /// Check the ownership partition exactly covers `trace`: every
    /// `(window, datum)` with a non-empty reference string is owned, and
    /// nothing owned is unreferenced.
    pub fn validate_cover(&self, trace: &WindowedTrace) -> Result<(), DagError> {
        if self.num_windows != trace.num_windows() {
            return Err(DagError::WindowCountMismatch {
                dag: self.num_windows,
                trace: trace.num_windows(),
            });
        }
        for (d, rs) in trace.iter_data() {
            for (w, refs) in rs.windows().enumerate() {
                if !refs.is_empty() && self.owner(w as u32, d).is_none() {
                    return Err(DagError::Unowned {
                        window: w as u32,
                        datum: d,
                    });
                }
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            for &d in &t.data {
                let referenced = d.index() < trace.num_data()
                    && !trace.refs(d).window(t.window as usize).is_empty();
                if !referenced {
                    return Err(DagError::OwnsUnreferenced {
                        task: i,
                        window: t.window,
                        datum: d,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of execution windows the DAG spans.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The task with index `t`.
    pub fn task(&self, t: u32) -> &Task {
        &self.tasks[t as usize]
    }

    /// All tasks, in index order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The deduplicated `(pred, succ)` edge list, sorted.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Direct predecessors of task `t`.
    pub fn preds(&self, t: u32) -> &[u32] {
        &self.pred_adj[self.pred_off[t as usize]..self.pred_off[t as usize + 1]]
    }

    /// Direct successors of task `t`.
    pub fn succs(&self, t: u32) -> &[u32] {
        &self.succ_adj[self.succ_off[t as usize]..self.succ_off[t as usize + 1]]
    }

    /// Tasks assigned to window `w`, ascending by task index.
    pub fn tasks_in_window(&self, w: u32) -> &[u32] {
        &self.window_tasks[w as usize]
    }

    /// The task owning datum `d`'s references in window `w`, if any.
    pub fn owner(&self, w: u32, d: DataId) -> Option<u32> {
        self.owners
            .binary_search_by_key(&(w, d.0), |&(ow, od, _)| (ow, od))
            .ok()
            .map(|i| self.owners[i].2)
    }

    /// A topological order of the task indices (deterministic: ready tasks
    /// are emitted in ascending id order).
    pub fn topo_order(&self) -> &[u32] {
        &self.topo
    }

    /// Serialize to the JSON document [`TaskDag::from_json`] accepts:
    ///
    /// ```json
    /// {"version":1,"num_windows":2,
    ///  "tasks":[{"window":0,"data":[0,1],"wcet":3}],
    ///  "edges":[[0,1]]}
    /// ```
    pub fn to_json(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\":1,\"num_windows\":{},\"tasks\":[",
            self.num_windows
        );
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"window\":{},\"data\":[", t.window);
            for (j, d) in t.data.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", d.0);
            }
            let _ = write!(out, "],\"wcet\":{}}}", t.wcet);
        }
        out.push_str("],\"edges\":[");
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{a},{b}]");
        }
        out.push_str("]}");
        out
    }

    /// Parse and validate the JSON document produced by
    /// [`TaskDag::to_json`]. Keys may appear in any order; unknown keys
    /// are rejected so typos fail loudly.
    pub fn from_json(text: &str) -> Result<TaskDag, DagError> {
        let v = json::parse(text).map_err(DagError::Json)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| err("top level must be an object"))?;
        let mut version = None;
        let mut num_windows = None;
        let mut tasks: Option<Vec<Task>> = None;
        let mut edges: Option<Vec<(u32, u32)>> = None;
        for (k, val) in obj {
            match k.as_str() {
                "version" => version = Some(val.as_u64().ok_or_else(|| err("version"))?),
                "num_windows" => {
                    num_windows = Some(val.as_u64().ok_or_else(|| err("num_windows"))? as usize)
                }
                "tasks" => {
                    let arr = val.as_arr().ok_or_else(|| err("tasks must be an array"))?;
                    let mut ts = Vec::with_capacity(arr.len());
                    for tv in arr {
                        ts.push(parse_task(tv)?);
                    }
                    tasks = Some(ts);
                }
                "edges" => {
                    let arr = val.as_arr().ok_or_else(|| err("edges must be an array"))?;
                    let mut es = Vec::with_capacity(arr.len());
                    for ev in arr {
                        let pair = ev.as_arr().ok_or_else(|| err("edge must be a pair"))?;
                        if pair.len() != 2 {
                            return Err(err("edge must be a pair"));
                        }
                        let a = pair[0].as_u64().ok_or_else(|| err("edge endpoint"))?;
                        let b = pair[1].as_u64().ok_or_else(|| err("edge endpoint"))?;
                        es.push((narrow(a, "edge endpoint")?, narrow(b, "edge endpoint")?));
                    }
                    edges = Some(es);
                }
                other => return Err(err(&format!("unknown key {other:?}"))),
            }
        }
        match version {
            Some(1) => {}
            Some(v) => return Err(err(&format!("unsupported version {v}"))),
            None => return Err(err("missing version")),
        }
        let num_windows = num_windows.ok_or_else(|| err("missing num_windows"))?;
        TaskDag::new(
            num_windows,
            tasks.ok_or_else(|| err("missing tasks"))?,
            edges.ok_or_else(|| err("missing edges"))?,
        )
    }
}

fn err(msg: &str) -> DagError {
    DagError::Json(msg.to_string())
}

fn narrow(v: u64, what: &str) -> Result<u32, DagError> {
    u32::try_from(v).map_err(|_| err(&format!("{what} {v} overflows u32")))
}

fn parse_task(v: &json::Value) -> Result<Task, DagError> {
    let obj = v.as_obj().ok_or_else(|| err("task must be an object"))?;
    let mut window = None;
    let mut data = None;
    let mut wcet = None;
    for (k, val) in obj {
        match k.as_str() {
            "window" => {
                window = Some(narrow(
                    val.as_u64().ok_or_else(|| err("task window"))?,
                    "window",
                )?)
            }
            "wcet" => wcet = Some(val.as_u64().ok_or_else(|| err("task wcet"))?),
            "data" => {
                let arr = val
                    .as_arr()
                    .ok_or_else(|| err("task data must be an array"))?;
                let mut ds = Vec::with_capacity(arr.len());
                for dv in arr {
                    let d = dv.as_u64().ok_or_else(|| err("datum id"))?;
                    ds.push(DataId(narrow(d, "datum id")?));
                }
                data = Some(ds);
            }
            other => return Err(err(&format!("unknown task key {other:?}"))),
        }
    }
    Ok(Task {
        window: window.ok_or_else(|| err("task missing window"))?,
        data: data.ok_or_else(|| err("task missing data"))?,
        wcet: wcet.unwrap_or(0),
    })
}

/// Build a CSR adjacency from `(from, to)` pairs over `n` nodes.
fn csr(n: usize, pairs: impl Iterator<Item = (u32, u32)> + Clone) -> (Vec<usize>, Vec<u32>) {
    let mut off = vec![0usize; n + 1];
    for (from, _) in pairs.clone() {
        off[from as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut adj = vec![0u32; off[n]];
    let mut cursor = off.clone();
    for (from, to) in pairs {
        adj[cursor[from as usize]] = to;
        cursor[from as usize] += 1;
    }
    // Each node's neighbor run ascending, for deterministic iteration.
    for i in 0..n {
        adj[off[i]..off[i + 1]].sort_unstable();
    }
    (off, adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowRefs;
    use pim_array::grid::Grid;

    fn task(window: u32, data: &[u32], wcet: u64) -> Task {
        Task {
            window,
            data: data.iter().map(|&d| DataId(d)).collect(),
            wcet,
        }
    }

    fn sample_dag() -> TaskDag {
        // w0: t0 {d0}, t1 {d1};  w1: t2 {d0, d1}
        // edges: t0 -> t1 (intra-window), t0 -> t2, t1 -> t2 (cross-window)
        TaskDag::new(
            2,
            vec![task(0, &[0], 3), task(0, &[1], 1), task(1, &[0, 1], 2)],
            vec![(0, 1), (0, 2), (1, 2)],
        )
        .unwrap()
    }

    fn sample_trace() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 1), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 2), 4)]),
                ],
            ],
        )
    }

    #[test]
    fn adjacency_and_lookup() {
        let dag = sample_dag();
        assert_eq!(dag.num_tasks(), 3);
        assert_eq!(dag.preds(0), &[] as &[u32]);
        assert_eq!(dag.succs(0), &[1, 2]);
        assert_eq!(dag.preds(2), &[0, 1]);
        assert_eq!(dag.tasks_in_window(0), &[0, 1]);
        assert_eq!(dag.tasks_in_window(1), &[2]);
        assert_eq!(dag.owner(0, DataId(0)), Some(0));
        assert_eq!(dag.owner(0, DataId(1)), Some(1));
        assert_eq!(dag.owner(1, DataId(0)), Some(2));
        assert_eq!(dag.owner(1, DataId(2)), None);
        assert_eq!(dag.topo_order(), &[0, 1, 2]);
    }

    #[test]
    fn cover_validation() {
        let dag = sample_dag();
        dag.validate_cover(&sample_trace()).unwrap();

        // A trace referencing a datum the dag does not own.
        let grid = Grid::new(4, 4);
        let extra = WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2)]),
                    WindowRefs::new(),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(1, 1), 1)]),
                    WindowRefs::new(),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 0), 1)]),
                    WindowRefs::new(),
                ],
            ],
        );
        assert!(matches!(
            sample_dag().validate_cover(&extra),
            Err(DagError::Unowned {
                window: 0,
                datum: DataId(2)
            })
        ));

        // A dag owning a (window, datum) the trace never touches.
        let trace = sample_trace();
        let over = TaskDag::new(
            2,
            vec![
                task(0, &[0, 1], 1),
                task(1, &[0, 1, 2], 1), // datum 2 never referenced
            ],
            vec![(0, 1)],
        )
        .unwrap();
        assert!(matches!(
            over.validate_cover(&trace),
            Err(DagError::OwnsUnreferenced {
                datum: DataId(2),
                ..
            })
        ));

        // Window count mismatch.
        let one = TaskDag::new(1, vec![task(0, &[0], 1)], vec![]).unwrap();
        assert!(matches!(
            one.validate_cover(&trace),
            Err(DagError::WindowCountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_bad_structure() {
        assert!(matches!(
            TaskDag::new(1, vec![task(1, &[0], 1)], vec![]),
            Err(DagError::WindowOutOfRange { .. })
        ));
        assert!(matches!(
            TaskDag::new(1, vec![task(0, &[0], 1)], vec![(0, 5)]),
            Err(DagError::TaskOutOfRange { task: 5, .. })
        ));
        assert!(matches!(
            TaskDag::new(1, vec![task(0, &[0], 1)], vec![(0, 0)]),
            Err(DagError::SelfEdge { task: 0 })
        ));
        assert!(matches!(
            TaskDag::new(2, vec![task(1, &[0], 1), task(0, &[0], 1)], vec![(0, 1)]),
            Err(DagError::BackwardEdge { pred: 0, succ: 1 })
        ));
        assert!(matches!(
            TaskDag::new(
                1,
                vec![task(0, &[0], 1), task(0, &[1], 1), task(0, &[2], 1)],
                vec![(0, 1), (1, 2), (2, 0)]
            ),
            Err(DagError::Cycle)
        ));
        assert!(matches!(
            TaskDag::new(1, vec![task(0, &[0], 1), task(0, &[0], 1)], vec![]),
            Err(DagError::DuplicateOwner { tasks: (0, 1), .. })
        ));
    }

    #[test]
    fn empty_dag_is_fine() {
        let dag = TaskDag::new(3, vec![], vec![]).unwrap();
        assert_eq!(dag.num_tasks(), 0);
        assert_eq!(dag.topo_order(), &[] as &[u32]);
        // ...but covers only an unreferenced trace.
        let grid = Grid::new(2, 2);
        let empty = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::new(),
                WindowRefs::new(),
                WindowRefs::new(),
            ]],
        );
        dag.validate_cover(&empty).unwrap();
    }

    #[test]
    fn json_round_trip() {
        let dag = sample_dag();
        let text = dag.to_json();
        assert!(text.starts_with("{\"version\":1,"));
        let back = TaskDag::from_json(&text).unwrap();
        assert_eq!(back, dag);

        // Empty dag round-trips too.
        let empty = TaskDag::new(1, vec![], vec![]).unwrap();
        assert_eq!(TaskDag::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn json_accepts_reordered_keys_and_whitespace() {
        let text = r#"
            { "edges": [[0, 1]],
              "tasks": [ {"data": [0], "window": 0},
                         {"wcet": 7, "window": 1, "data": [0, 1]} ],
              "num_windows": 2, "version": 1 }
        "#;
        let dag = TaskDag::from_json(text).unwrap();
        assert_eq!(dag.num_tasks(), 2);
        assert_eq!(dag.task(0).wcet, 0); // wcet optional, defaults 0
        assert_eq!(dag.task(1).wcet, 7);
        assert_eq!(dag.edges(), &[(0, 1)]);
    }

    #[test]
    fn json_rejects_malformed_input() {
        for bad in [
            "",
            "[]",
            "{\"version\":2,\"num_windows\":1,\"tasks\":[],\"edges\":[]}",
            "{\"version\":1,\"tasks\":[],\"edges\":[]}",
            "{\"version\":1,\"num_windows\":1,\"tasks\":[],\"edges\":[[0]]}",
            "{\"version\":1,\"num_windows\":1,\"tasks\":[],\"edges\":[],\"bogus\":3}",
            "{\"version\":1,\"num_windows\":1,\"tasks\":[{\"window\":0}],\"edges\":[]}",
            "{\"version\":1,\"num_windows\":1,\"tasks\":[],\"edges\":[]} trailing",
        ] {
            assert!(TaskDag::from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
