//! Datum identifiers.

use serde::{Deserialize, Serialize};

/// Dense identifier of one datum (one array element in the paper's model).
///
/// Data ids are dense (`0..num_data`) so schedulers can keep per-datum state
/// in flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataId(pub u32);

impl DataId {
    /// The raw index, usable directly into per-datum `Vec`s.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a container index. Million-datum traces fit
    /// comfortably (`u32::MAX` ≈ 4.3 G data); anything wider is a caller
    /// bug surfaced as a typed error instead of a silent `as u32` wrap.
    #[inline]
    pub fn try_from_index(index: usize) -> Result<DataId, IdOverflow> {
        u32::try_from(index)
            .map(DataId)
            .map_err(|_| IdOverflow { index })
    }
}

/// A container index did not fit the dense 32-bit id space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdOverflow {
    /// The offending index.
    pub index: usize,
}

impl core::fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "index {} overflows the 32-bit datum id space",
            self.index
        )
    }
}

impl std::error::Error for IdOverflow {}

impl core::fmt::Display for DataId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Map a 2-D data array element `(row, col)` of a `rows × cols` matrix to
/// its dense [`DataId`] (row-major). The workload kernels all address
/// matrix elements this way.
#[inline]
pub fn matrix_elem(rows: u32, cols: u32, row: u32, col: u32) -> DataId {
    debug_assert!(row < rows && col < cols);
    let _ = rows;
    DataId(row * cols + col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(DataId(7).to_string(), "D7");
        assert_eq!(DataId(7).index(), 7);
    }

    #[test]
    fn checked_index_conversion() {
        assert_eq!(DataId::try_from_index(70_000), Ok(DataId(70_000)));
        assert_eq!(
            DataId::try_from_index(u32::MAX as usize),
            Ok(DataId(u32::MAX))
        );
        let err = DataId::try_from_index(u32::MAX as usize + 1).unwrap_err();
        assert_eq!(err.index, u32::MAX as usize + 1);
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn matrix_layout_row_major() {
        assert_eq!(matrix_elem(4, 4, 0, 0), DataId(0));
        assert_eq!(matrix_elem(4, 4, 0, 3), DataId(3));
        assert_eq!(matrix_elem(4, 4, 1, 0), DataId(4));
        assert_eq!(matrix_elem(4, 4, 3, 3), DataId(15));
        assert_eq!(matrix_elem(2, 5, 1, 2), DataId(7));
    }
}
