//! Flat structure-of-arrays (SoA) trace layout for big instances.
//!
//! [`crate::window::WindowedTrace`] is a `Vec`-of-`Vec`s: every datum owns
//! one heap-allocated [`crate::window::WindowRefs`] per window, so a
//! million-datum trace scatters tens of millions of tiny allocations across
//! the heap and every scheduler walk chases two levels of pointers per
//! window. [`FlatTrace`] stores the same reference strings datum-major in
//! **one** contiguous `refs` array (CSR layout): per datum an
//! `(offset, len)` span of [`FlatRef`] records carrying the window id, the
//! axis-projected processor coordinates, and the access count. Schedulers
//! iterate a datum's whole reference run as a plain slice — no per-window
//! allocation, no pointer chasing, and the axis projections the L1 cost
//! machinery wants are precomputed in the record.
//!
//! Invariants (established by every constructor):
//!
//! * a datum's records are sorted by `(window, y, x)` — window-major, then
//!   ascending processor id (`id = y·width + x`), matching the iteration
//!   order of [`crate::window::WindowRefs::iter`];
//! * at most one record per `(datum, window, processor)` triple (duplicate
//!   input records aggregate their counts);
//! * every record's window is `< num_windows` and its coordinates are on
//!   the grid.
//!
//! Round trip: [`FlatTrace::from_trace`] / [`FlatTrace::to_windowed`]
//! convert losslessly in both directions (property-tested in
//! `tests/cache_equivalence.rs`). [`FlatTrace::from_reader`] streams a
//! simple line-oriented text format so big traces never need the nested
//! representation at all.

use crate::ids::DataId;
use crate::window::{WindowRefs, WindowedTrace};
use pim_array::grid::{Grid, ProcId};
use std::io::BufRead;

/// One reference in the flat layout: "in `window`, the processor at
/// `(x, y)` touched this datum `count` times".
///
/// `#[repr(C)]` pins the field order so the record has a guaranteed
/// 16-byte layout (four `u32`s, no padding, every bit pattern valid) —
/// [`crate::binfmt`] relies on this to reinterpret mapped file bytes as
/// `&[FlatRef]` without copying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct FlatRef {
    /// Execution window of the reference.
    pub window: u32,
    /// Column of the referencing processor (x axis projection).
    pub x: u32,
    /// Row of the referencing processor (y axis projection).
    pub y: u32,
    /// Access count (reference volume).
    pub count: u32,
}

impl FlatRef {
    /// The referencing processor's dense id on `grid`.
    #[inline]
    pub fn proc(&self, grid: &Grid) -> ProcId {
        grid.proc_xy(self.x, self.y)
    }
}

/// One raw `(datum, window, proc, count)` record fed to
/// [`FlatTrace::from_records`]. Records may arrive in any order and may
/// repeat a `(datum, window, proc)` triple (counts aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatRecord {
    /// The referenced datum.
    pub datum: DataId,
    /// Execution window of the access.
    pub window: u32,
    /// Referencing processor.
    pub proc: ProcId,
    /// Access count.
    pub count: u32,
}

/// Why a flat trace could not be built or parsed.
#[derive(Debug)]
pub enum FlatTraceError {
    /// A record referenced a window `>= num_windows`.
    WindowOutOfRange {
        /// The offending window id.
        window: u32,
        /// Number of windows the trace declares.
        num_windows: usize,
    },
    /// A record referenced a processor outside the grid.
    ProcOutOfRange {
        /// The offending processor id.
        proc: u32,
        /// Number of processors on the grid.
        num_procs: usize,
    },
    /// A record referenced a datum `>= num_data` (header-declared count).
    DatumOutOfRange {
        /// The offending datum id.
        datum: u32,
        /// Number of data the trace declares.
        num_data: usize,
    },
    /// The datum population does not fit the dense 32-bit id space.
    IdOverflow(crate::ids::IdOverflow),
    /// A line of the text format did not parse.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The underlying reader failed.
    Io(std::io::Error),
}

impl core::fmt::Display for FlatTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlatTraceError::WindowOutOfRange {
                window,
                num_windows,
            } => write!(f, "window {window} out of range (trace has {num_windows})"),
            FlatTraceError::ProcOutOfRange { proc, num_procs } => {
                write!(f, "processor {proc} out of range (grid has {num_procs})")
            }
            FlatTraceError::DatumOutOfRange { datum, num_data } => {
                write!(f, "datum {datum} out of range (trace declares {num_data})")
            }
            FlatTraceError::IdOverflow(e) => write!(f, "{e}"),
            FlatTraceError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            FlatTraceError::Io(e) => write!(f, "read error: {e}"),
        }
    }
}

impl std::error::Error for FlatTraceError {}

impl From<std::io::Error> for FlatTraceError {
    fn from(e: std::io::Error) -> Self {
        FlatTraceError::Io(e)
    }
}

impl From<crate::ids::IdOverflow> for FlatTraceError {
    fn from(e: crate::ids::IdOverflow) -> Self {
        FlatTraceError::IdOverflow(e)
    }
}

/// Read-only accessor surface of a datum-major CSR trace.
///
/// Everything `pim_sched`'s flat schedulers consume is behind this trait,
/// so they run unchanged against an owned in-memory [`FlatTrace`] or a
/// zero-copy [`crate::binfmt::BinTrace`] borrowing memory-mapped file
/// bytes. Implementations must uphold the CSR invariants documented in
/// the [module docs](self): spans sorted by `(window, y, x)`, duplicates
/// aggregated, windows and coordinates in range.
///
/// The `Sync` bound lets schedulers shard spans across the worker pool by
/// shared reference.
pub trait FlatView: Sync {
    /// The processor grid.
    fn grid(&self) -> Grid;
    /// Number of execution windows.
    fn num_windows(&self) -> usize;
    /// Number of data items.
    fn num_data(&self) -> usize;
    /// Total number of (aggregated) reference records.
    fn num_refs(&self) -> usize;
    /// Datum `d`'s whole reference run, window-major.
    fn span(&self, d: DataId) -> &[FlatRef];

    /// Sum of every record's count.
    fn total_volume(&self) -> u64 {
        (0..self.num_data())
            .map(|d| {
                self.span(DataId(d as u32))
                    .iter()
                    .map(|r| r.count as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Datum `d`'s references in window `w` (possibly empty), found by
    /// binary search within the span.
    fn window_run(&self, d: DataId, w: usize) -> &[FlatRef] {
        let span = self.span(d);
        let lo = span.partition_point(|r| (r.window as usize) < w);
        let hi = span.partition_point(|r| (r.window as usize) <= w);
        &span[lo..hi]
    }

    /// A contiguous chunk size for sharding per-datum work over `threads`
    /// workers — see [`FlatTrace::suggested_chunk`].
    fn suggested_chunk(&self, threads: usize) -> usize {
        let nd = self.num_data();
        if nd == 0 {
            return 1;
        }
        let per_thread = nd.div_ceil(threads.max(1));
        per_thread.div_ceil(8).clamp(1, per_thread.max(1))
    }
}

/// Iterate a span's non-empty windows as `(window, run)` pairs in
/// ascending window order. Works for any [`FlatView`] span; this is the
/// free-function form of [`FlatTrace::window_runs`].
pub fn span_window_runs(span: &[FlatRef]) -> impl Iterator<Item = (u32, &[FlatRef])> {
    span.chunk_by(|a, b| a.window == b.window)
        .map(|run| (run[0].window, run))
}

/// Datum-major CSR view of a whole windowed trace (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatTrace {
    grid: Grid,
    num_windows: usize,
    /// `offsets[d]..offsets[d + 1]` is datum `d`'s span in `refs`.
    offsets: Vec<usize>,
    refs: Vec<FlatRef>,
}

impl FlatTrace {
    /// Flatten an existing windowed trace. One pass; the nested trace
    /// stays untouched and both views describe identical reference strings.
    pub fn from_trace(trace: &WindowedTrace) -> FlatTrace {
        let grid = trace.grid();
        let mut offsets = Vec::with_capacity(trace.num_data() + 1);
        offsets.push(0usize);
        let mut refs = Vec::new();
        for (_, rs) in trace.iter_data() {
            for (w, window) in rs.windows().enumerate() {
                for r in window.iter() {
                    let p = grid.point_of(r.proc);
                    refs.push(FlatRef {
                        window: w as u32,
                        x: p.x,
                        y: p.y,
                        count: r.count,
                    });
                }
            }
            offsets.push(refs.len());
        }
        FlatTrace {
            grid,
            num_windows: trace.num_windows(),
            offsets,
            refs,
        }
    }

    /// Build from raw records in any order. `num_data` fixes the datum
    /// population (trailing never-referenced data are legal, exactly as in
    /// [`WindowedTrace`]); duplicate `(datum, window, proc)` records
    /// aggregate their counts. Beyond the output arrays, peak memory is one
    /// `(DataId, FlatRef)` pair per input record.
    pub fn from_records(
        grid: Grid,
        num_windows: usize,
        num_data: usize,
        records: impl IntoIterator<Item = FlatRecord>,
    ) -> Result<FlatTrace, FlatTraceError> {
        let num_windows = num_windows.max(1);
        let _ = DataId::try_from_index(num_data.saturating_sub(1))?;
        let mut tagged: Vec<(u32, FlatRef)> = Vec::new();
        for r in records {
            if r.datum.index() >= num_data {
                return Err(FlatTraceError::DatumOutOfRange {
                    datum: r.datum.0,
                    num_data,
                });
            }
            if r.window as usize >= num_windows {
                return Err(FlatTraceError::WindowOutOfRange {
                    window: r.window,
                    num_windows,
                });
            }
            if r.proc.index() >= grid.num_procs() {
                return Err(FlatTraceError::ProcOutOfRange {
                    proc: r.proc.0,
                    num_procs: grid.num_procs(),
                });
            }
            let p = grid.point_of(r.proc);
            tagged.push((
                r.datum.0,
                FlatRef {
                    window: r.window,
                    x: p.x,
                    y: p.y,
                    count: r.count,
                },
            ));
        }
        // Sort into the canonical (datum, window, proc) order, then
        // aggregate duplicates in place.
        tagged.sort_unstable_by_key(|&(d, r)| (d, r.window, r.y, r.x));
        let mut offsets = vec![0usize; num_data + 1];
        let mut refs: Vec<FlatRef> = Vec::with_capacity(tagged.len());
        let mut cursor = 0usize; // next datum whose offset is unset
        for (d, r) in tagged {
            let same_key = refs.last().is_some_and(|last| {
                cursor == d as usize + 1
                    && last.window == r.window
                    && last.y == r.y
                    && last.x == r.x
            });
            if same_key {
                let last = refs.last_mut().expect("checked non-empty");
                last.count = last.count.saturating_add(r.count);
                continue;
            }
            while cursor <= d as usize {
                offsets[cursor] = refs.len();
                cursor += 1;
            }
            refs.push(r);
        }
        while cursor <= num_data {
            offsets[cursor] = refs.len();
            cursor += 1;
        }
        Ok(FlatTrace {
            grid,
            num_windows,
            offsets,
            refs,
        })
    }

    /// Assemble from already-canonical CSR parts: `offsets[d]..offsets[d+1]`
    /// spans `refs`, every span sorted by `(window, y, x)` with duplicates
    /// pre-aggregated. Used by [`crate::edit::EditableTrace::materialize`],
    /// whose overlay spans uphold the invariants by construction; debug
    /// builds re-check the ordering.
    pub(crate) fn from_sorted_parts(
        grid: Grid,
        num_windows: usize,
        offsets: Vec<usize>,
        refs: Vec<FlatRef>,
    ) -> FlatTrace {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().expect("non-empty"), refs.len());
        debug_assert!(offsets.windows(2).all(|w| {
            refs[w[0]..w[1]]
                .windows(2)
                .all(|p| (p[0].window, p[0].y, p[0].x) < (p[1].window, p[1].y, p[1].x))
        }));
        debug_assert!(refs.iter().all(|r| (r.window as usize) < num_windows.max(1)
            && r.x < grid.width()
            && r.y < grid.height()));
        FlatTrace {
            grid,
            num_windows: num_windows.max(1),
            offsets,
            refs,
        }
    }

    /// Stream the line-oriented text format (see [`FlatTrace::to_text`]):
    ///
    /// ```text
    /// flat v1 <width> <height> <num_windows> <num_data>
    /// <datum> <window> <proc> <count>
    /// ...
    /// ```
    ///
    /// Blank lines and `#` comments are skipped. Records may arrive in any
    /// order; the loader never materializes a nested trace.
    pub fn from_reader(reader: impl BufRead) -> Result<FlatTrace, FlatTraceError> {
        let parse = |line: usize, field: &str, what: &str| -> Result<u64, FlatTraceError> {
            field.parse::<u64>().map_err(|_| FlatTraceError::Parse {
                line,
                msg: format!("bad {what}: {field:?}"),
            })
        };
        let mut header: Option<(Grid, usize, usize)> = None;
        let mut records: Vec<FlatRecord> = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let lineno = i + 1;
            let body = line.split('#').next().unwrap_or("").trim();
            if body.is_empty() {
                continue;
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            if header.is_none() {
                if fields.len() != 6 || fields[0] != "flat" || fields[1] != "v1" {
                    return Err(FlatTraceError::Parse {
                        line: lineno,
                        msg: "expected header: flat v1 <width> <height> <windows> <data>"
                            .to_string(),
                    });
                }
                let w = parse(lineno, fields[2], "width")? as u32;
                let h = parse(lineno, fields[3], "height")? as u32;
                if w == 0 || h == 0 || w.checked_mul(h).is_none() {
                    return Err(FlatTraceError::Parse {
                        line: lineno,
                        msg: format!("bad grid {w}x{h}"),
                    });
                }
                let nw = parse(lineno, fields[4], "window count")? as usize;
                let nd = parse(lineno, fields[5], "data count")? as usize;
                header = Some((Grid::new(w, h), nw, nd));
                continue;
            }
            if fields.len() != 4 {
                return Err(FlatTraceError::Parse {
                    line: lineno,
                    msg: format!("expected 4 fields, got {}", fields.len()),
                });
            }
            let datum = parse(lineno, fields[0], "datum")?;
            let window = parse(lineno, fields[1], "window")?;
            let proc = parse(lineno, fields[2], "proc")?;
            let count = parse(lineno, fields[3], "count")?;
            let narrow = |v: u64, what: &str| -> Result<u32, FlatTraceError> {
                u32::try_from(v).map_err(|_| FlatTraceError::Parse {
                    line: lineno,
                    msg: format!("{what} {v} overflows u32"),
                })
            };
            records.push(FlatRecord {
                datum: DataId(narrow(datum, "datum")?),
                window: narrow(window, "window")?,
                proc: ProcId(narrow(proc, "proc")?),
                count: narrow(count, "count")?,
            });
        }
        let (grid, nw, nd) = header.ok_or(FlatTraceError::Parse {
            line: 0,
            msg: "empty input: missing flat v1 header".to_string(),
        })?;
        FlatTrace::from_records(grid, nw, nd, records)
    }

    /// Serialize to the text format [`FlatTrace::from_reader`] accepts.
    pub fn to_text(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flat v1 {} {} {} {}",
            self.grid.width(),
            self.grid.height(),
            self.num_windows,
            self.num_data()
        );
        for d in 0..self.num_data() {
            for r in self.span(DataId(d as u32)) {
                let proc = self.grid.proc_xy(r.x, r.y).0;
                let _ = writeln!(out, "{} {} {} {}", d, r.window, proc, r.count);
            }
        }
        out
    }

    /// Expand back into the nested per-window representation (tests and
    /// small instances; defeats the point at scale).
    pub fn to_windowed(&self) -> WindowedTrace {
        let data = (0..self.num_data())
            .map(|d| {
                let mut windows = vec![WindowRefs::new(); self.num_windows];
                for (w, run) in self.window_runs(DataId(d as u32)) {
                    windows[w as usize] = WindowRefs::from_pairs(
                        run.iter().map(|r| (self.grid.proc_xy(r.x, r.y), r.count)),
                    );
                }
                windows
            })
            .collect();
        WindowedTrace::from_parts(self.grid, data)
    }

    /// The processor grid.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of data items.
    #[inline]
    pub fn num_data(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of execution windows.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Total number of (aggregated) reference records.
    #[inline]
    pub fn num_refs(&self) -> usize {
        self.refs.len()
    }

    /// Sum of every record's count.
    pub fn total_volume(&self) -> u64 {
        self.refs.iter().map(|r| r.count as u64).sum()
    }

    /// Datum `d`'s whole reference run, window-major.
    #[inline]
    pub fn span(&self, d: DataId) -> &[FlatRef] {
        &self.refs[self.offsets[d.index()]..self.offsets[d.index() + 1]]
    }

    /// Datum `d`'s references in window `w` (possibly empty), found by
    /// binary search within the span.
    pub fn window_run(&self, d: DataId, w: usize) -> &[FlatRef] {
        let span = self.span(d);
        let lo = span.partition_point(|r| (r.window as usize) < w);
        let hi = span.partition_point(|r| (r.window as usize) <= w);
        &span[lo..hi]
    }

    /// Iterate datum `d`'s non-empty windows as `(window, run)` pairs, in
    /// ascending window order.
    pub fn window_runs(&self, d: DataId) -> impl Iterator<Item = (u32, &[FlatRef])> {
        span_window_runs(self.span(d))
    }

    /// The raw CSR offset array (`num_data + 1` entries, first `0`, last
    /// `num_refs`). Used by [`crate::binfmt`]'s writer.
    pub(crate) fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw aggregated-reference array, all spans concatenated.
    /// Used by [`crate::binfmt`]'s writer.
    pub(crate) fn refs(&self) -> &[FlatRef] {
        &self.refs
    }

    /// A contiguous chunk size for sharding per-datum work over `threads`
    /// workers: targets several chunks per worker (for load balancing)
    /// while keeping each chunk's reference footprint large enough that
    /// workers stream cache-friendly runs of `refs` instead of ping-ponging
    /// over single data.
    pub fn suggested_chunk(&self, threads: usize) -> usize {
        let nd = self.num_data();
        if nd == 0 {
            return 1;
        }
        let per_thread = nd.div_ceil(threads.max(1));
        // ~8 chunks per worker, each at least one datum.
        per_thread.div_ceil(8).clamp(1, per_thread.max(1))
    }
}

// Shared-ownership wrappers view exactly what they point at, so call
// sites that hold an `Arc<FlatTrace>` (e.g. the serve store) pass it to
// generic schedulers directly.
impl<V: FlatView + Send + ?Sized> FlatView for std::sync::Arc<V> {
    fn grid(&self) -> Grid {
        (**self).grid()
    }
    fn num_windows(&self) -> usize {
        (**self).num_windows()
    }
    fn num_data(&self) -> usize {
        (**self).num_data()
    }
    fn num_refs(&self) -> usize {
        (**self).num_refs()
    }
    fn span(&self, d: DataId) -> &[FlatRef] {
        (**self).span(d)
    }
    fn total_volume(&self) -> u64 {
        (**self).total_volume()
    }
}

impl FlatView for FlatTrace {
    fn grid(&self) -> Grid {
        FlatTrace::grid(self)
    }
    fn num_windows(&self) -> usize {
        FlatTrace::num_windows(self)
    }
    fn num_data(&self) -> usize {
        FlatTrace::num_data(self)
    }
    fn num_refs(&self) -> usize {
        FlatTrace::num_refs(self)
    }
    fn span(&self, d: DataId) -> &[FlatRef] {
        FlatTrace::span(self, d)
    }
    fn total_volume(&self) -> u64 {
        FlatTrace::total_volume(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> WindowedTrace {
        let grid = Grid::new(4, 3);
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3), (grid.proc_xy(3, 2), 1)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 1), 5)]),
                ],
                vec![
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 2), 2)]),
                    WindowRefs::new(),
                ],
                vec![WindowRefs::new(), WindowRefs::new(), WindowRefs::new()],
            ],
        )
    }

    #[test]
    fn round_trips_through_windowed() {
        let trace = sample_trace();
        let flat = FlatTrace::from_trace(&trace);
        assert_eq!(flat.num_data(), 3);
        assert_eq!(flat.num_windows(), 3);
        assert_eq!(flat.num_refs(), 4);
        assert_eq!(flat.total_volume(), trace.total_volume());
        assert_eq!(flat.to_windowed(), trace);
    }

    #[test]
    fn spans_and_window_runs() {
        let flat = FlatTrace::from_trace(&sample_trace());
        assert_eq!(flat.span(DataId(0)).len(), 3);
        assert_eq!(flat.span(DataId(2)).len(), 0);
        assert_eq!(flat.window_run(DataId(0), 0).len(), 2);
        assert_eq!(flat.window_run(DataId(0), 1).len(), 0);
        assert_eq!(flat.window_run(DataId(0), 2).len(), 1);
        let runs: Vec<(u32, usize)> = flat
            .window_runs(DataId(0))
            .map(|(w, run)| (w, run.len()))
            .collect();
        assert_eq!(runs, vec![(0, 2), (2, 1)]);
        assert!(flat.window_runs(DataId(2)).next().is_none());
    }

    #[test]
    fn records_aggregate_and_sort() {
        let grid = Grid::new(4, 4);
        let rec = |d: u32, w: u32, p: u32, c: u32| FlatRecord {
            datum: DataId(d),
            window: w,
            proc: ProcId(p),
            count: c,
        };
        // shuffled, with a duplicate (1, 0, 5)
        let flat = FlatTrace::from_records(
            grid,
            2,
            3,
            vec![
                rec(1, 0, 5, 2),
                rec(0, 1, 3, 1),
                rec(1, 0, 5, 4),
                rec(0, 0, 9, 7),
            ],
        )
        .unwrap();
        assert_eq!(flat.num_refs(), 3);
        assert_eq!(flat.window_run(DataId(1), 0)[0].count, 6);
        let d0: Vec<u32> = flat.span(DataId(0)).iter().map(|r| r.window).collect();
        assert_eq!(d0, vec![0, 1]);
        assert_eq!(flat.span(DataId(2)).len(), 0);
        // equivalent nested trace agrees
        let trace = flat.to_windowed();
        assert_eq!(FlatTrace::from_trace(&trace), flat);
    }

    #[test]
    fn record_validation() {
        let grid = Grid::new(2, 2);
        let rec = |d: u32, w: u32, p: u32| FlatRecord {
            datum: DataId(d),
            window: w,
            proc: ProcId(p),
            count: 1,
        };
        assert!(matches!(
            FlatTrace::from_records(grid, 1, 1, vec![rec(1, 0, 0)]),
            Err(FlatTraceError::DatumOutOfRange { datum: 1, .. })
        ));
        assert!(matches!(
            FlatTrace::from_records(grid, 1, 1, vec![rec(0, 1, 0)]),
            Err(FlatTraceError::WindowOutOfRange { window: 1, .. })
        ));
        assert!(matches!(
            FlatTrace::from_records(grid, 1, 1, vec![rec(0, 0, 4)]),
            Err(FlatTraceError::ProcOutOfRange { proc: 4, .. })
        ));
    }

    #[test]
    fn text_round_trip() {
        let flat = FlatTrace::from_trace(&sample_trace());
        let text = flat.to_text();
        let back = FlatTrace::from_reader(text.as_bytes()).unwrap();
        assert_eq!(back, flat);
    }

    #[test]
    fn reader_skips_comments_and_reports_errors() {
        let ok = "# big trace\nflat v1 4 4 2 2\n\n0 0 3 2 # inline comment\n1 1 15 1\n";
        let flat = FlatTrace::from_reader(ok.as_bytes()).unwrap();
        assert_eq!(flat.num_refs(), 2);
        assert_eq!(flat.grid(), Grid::new(4, 4));

        let bad_header = "flat v2 4 4 2 2\n";
        assert!(matches!(
            FlatTrace::from_reader(bad_header.as_bytes()),
            Err(FlatTraceError::Parse { line: 1, .. })
        ));
        let bad_row = "flat v1 4 4 2 2\n0 0 three 1\n";
        let err = FlatTrace::from_reader(bad_row.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let empty = "";
        assert!(FlatTrace::from_reader(empty.as_bytes()).is_err());
    }

    #[test]
    fn suggested_chunk_shapes() {
        let flat = FlatTrace::from_trace(&sample_trace());
        assert_eq!(flat.suggested_chunk(8), 1);
        let grid = Grid::new(2, 2);
        let many = FlatTrace::from_records(grid, 1, 100_000, vec![]).unwrap();
        let chunk = many.suggested_chunk(4);
        assert!(chunk >= 1 && chunk * 4 * 8 >= 100_000 - 4 * 8 * chunk);
        assert!(chunk <= 100_000usize.div_ceil(4));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Traces biased toward the degenerate corners: windows are empty
        /// more often than not, so zero-reference datums, all-empty
        /// windows and single-window traces (`nw == 1`) all occur.
        fn arb_degenerate_trace() -> impl Strategy<Value = WindowedTrace> {
            (2u32..5, 2u32..5, 1usize..4, 1usize..5).prop_flat_map(|(wd, ht, nw, nd)| {
                let grid = Grid::new(wd, ht);
                let m = grid.num_procs() as u32;
                let window = proptest::collection::vec((0..m, 1u32..6), 0..3);
                proptest::collection::vec(proptest::collection::vec(window, nw..=nw), nd..=nd)
                    .prop_map(move |data| {
                        WindowedTrace::from_parts(
                            grid,
                            data.into_iter()
                                .map(|ws| {
                                    ws.into_iter()
                                        .map(|pairs| {
                                            WindowRefs::from_pairs(
                                                pairs.into_iter().map(|(p, c)| (ProcId(p), c)),
                                            )
                                        })
                                        .collect()
                                })
                                .collect(),
                        )
                    })
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn degenerate_traces_round_trip(trace in arb_degenerate_trace()) {
                let flat = FlatTrace::from_trace(&trace);
                prop_assert_eq!(flat.num_windows(), trace.num_windows());
                prop_assert_eq!(flat.total_volume(), trace.total_volume());
                prop_assert_eq!(&flat.to_windowed(), &trace);
                prop_assert_eq!(FlatTrace::from_trace(&flat.to_windowed()), flat);
            }

            #[test]
            fn from_records_agrees_with_from_trace(trace in arb_degenerate_trace()) {
                let flat = FlatTrace::from_trace(&trace);
                // Re-feed the flattened refs as raw records, reversed so
                // the canonical sort actually has work to do.
                let grid = flat.grid();
                let mut records = Vec::new();
                for d in 0..flat.num_data() {
                    for r in flat.span(DataId(d as u32)) {
                        records.push(FlatRecord {
                            datum: DataId(d as u32),
                            window: r.window,
                            proc: grid.proc_xy(r.x, r.y),
                            count: r.count,
                        });
                    }
                }
                records.reverse();
                let rebuilt = FlatTrace::from_records(
                    grid,
                    flat.num_windows(),
                    flat.num_data(),
                    records,
                )
                .expect("records came from a valid trace");
                prop_assert_eq!(rebuilt, flat);
            }
        }
    }
}
