//! Ergonomic construction of [`StepTrace`]s.
//!
//! Workload kernels in `pim-workloads` drive this builder: open a step,
//! record accesses, repeat, then `finish()`.

use crate::ids::DataId;
use crate::step::{Access, ExecStep, StepTrace};
use pim_array::grid::{Grid, ProcId};

/// Incremental builder for a [`StepTrace`].
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    grid: Grid,
    num_data: u32,
    steps: Vec<ExecStep>,
}

/// Handle to the step currently being recorded; accesses append to it.
#[derive(Debug)]
pub struct StepHandle<'a> {
    grid: Grid,
    num_data: u32,
    step: &'a mut ExecStep,
}

impl TraceBuilder {
    /// Start a trace over `num_data` data items on `grid`.
    pub fn new(grid: Grid, num_data: u32) -> Self {
        TraceBuilder {
            grid,
            num_data,
            steps: Vec::new(),
        }
    }

    /// Open a new execution step.
    pub fn step(&mut self) -> StepHandle<'_> {
        self.steps.push(ExecStep::default());
        StepHandle {
            grid: self.grid,
            num_data: self.num_data,
            step: self.steps.last_mut().expect("just pushed"),
        }
    }

    /// Number of steps recorded so far.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Finish, dropping any trailing empty steps.
    pub fn finish(mut self) -> StepTrace {
        while self.steps.last().is_some_and(|s| s.accesses.is_empty()) {
            self.steps.pop();
        }
        StepTrace {
            grid: self.grid,
            num_data: self.num_data,
            steps: self.steps,
        }
    }
}

impl StepHandle<'_> {
    /// Record one reference of `data` by `proc`.
    ///
    /// # Panics
    /// Panics if the processor or datum is out of range.
    pub fn access(&mut self, proc: ProcId, data: DataId) -> &mut Self {
        self.access_n(proc, data, 1)
    }

    /// Record `count` references of `data` by `proc` (no-op if zero).
    ///
    /// # Panics
    /// Panics if the processor or datum is out of range.
    pub fn access_n(&mut self, proc: ProcId, data: DataId, count: u32) -> &mut Self {
        assert!(
            proc.index() < self.grid.num_procs(),
            "{proc} out of range for {}",
            self.grid
        );
        assert!(
            data.0 < self.num_data,
            "{data} out of range (num_data={})",
            self.num_data
        );
        if count > 0 {
            self.step.accesses.push(Access { proc, data, count });
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_steps_in_order() {
        let g = Grid::new(4, 4);
        let mut b = TraceBuilder::new(g, 3);
        b.step()
            .access(ProcId(0), DataId(0))
            .access(ProcId(1), DataId(1));
        b.step().access_n(ProcId(2), DataId(2), 5);
        let t = b.finish();
        assert_eq!(t.num_steps(), 2);
        assert_eq!(t.steps[0].accesses.len(), 2);
        assert_eq!(t.steps[1].accesses[0].count, 5);
        assert_eq!(t.total_refs(), 7);
    }

    #[test]
    fn trailing_empty_steps_dropped() {
        let g = Grid::new(2, 2);
        let mut b = TraceBuilder::new(g, 1);
        b.step().access(ProcId(0), DataId(0));
        b.step();
        b.step();
        assert_eq!(b.num_steps(), 3);
        let t = b.finish();
        assert_eq!(t.num_steps(), 1);
    }

    #[test]
    fn zero_count_ignored() {
        let g = Grid::new(2, 2);
        let mut b = TraceBuilder::new(g, 1);
        b.step().access_n(ProcId(0), DataId(0), 0);
        assert_eq!(b.finish().num_steps(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_proc() {
        let g = Grid::new(2, 2);
        let mut b = TraceBuilder::new(g, 1);
        b.step().access(ProcId(4), DataId(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_data() {
        let g = Grid::new(2, 2);
        let mut b = TraceBuilder::new(g, 1);
        b.step().access(ProcId(0), DataId(1));
    }
}
