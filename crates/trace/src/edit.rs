//! Editable traces: churn deltas over a [`FlatTrace`] with dirty tracking.
//!
//! The flat CSR layout is immutable by design — one contiguous `refs`
//! array is exactly what makes the big-instance schedulers fast, and
//! exactly what makes in-place edits awkward. [`EditableTrace`] therefore
//! layers a *per-datum overlay* on top of a shared base trace: the base
//! stays behind an `Arc` (so long-lived cost caches can keep reading it),
//! and every edited datum gets a freshly assembled span stored as its own
//! `Arc<[FlatRef]>`. Reads fall through to the base for untouched data, so
//! a 1% churn tick clones 1% of the reference volume and shares the rest.
//!
//! Edits arrive as a [`TraceDelta`] — an ordered list of [`EditOp`]s:
//!
//! * [`EditOp::SetRun`] rewrites one datum's references in one window
//!   (empty = remove the run; a previously empty window = insert one);
//! * [`EditOp::AppendWindow`] grows the trace by one trailing window with
//!   the given reference rows.
//!
//! Applying a delta bumps the trace [version](EditableTrace::version) once
//! per op and maintains a dirty set at per-datum granularity: each touched
//! datum is classified [`DirtyKind::Appended`] (only gained references in
//! appended windows — its existing prefix is intact, so prefix-sum caches
//! may *extend* instead of rebuild) or [`DirtyKind::Rewritten`] (an
//! existing window changed — caches must invalidate). The incremental
//! scheduling engine drains this set with
//! [`take_dirty`](EditableTrace::take_dirty).
//!
//! Overlay spans uphold the `FlatTrace` invariants by construction
//! (window-major `(window, y, x)` order, duplicates aggregated with
//! saturating adds, zero counts kept — byte-for-byte what
//! [`FlatTrace::from_records`] would produce), so
//! [`materialize`](EditableTrace::materialize) can assemble a standalone
//! flat trace by concatenation, without re-sorting. The round trip
//! `apply(delta); materialize()` equals building a fresh trace from the
//! edited records — property-tested below and in `tests/churn_props.rs`.

use crate::flat::{FlatRef, FlatTrace, FlatTraceError};
use crate::ids::DataId;
use pim_array::grid::{Grid, ProcId};
use std::sync::Arc;

/// One edit against an [`EditableTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// Replace datum `datum`'s references in window `window` with `refs`
    /// (processor, count) pairs. An empty list removes the run; duplicate
    /// processors aggregate their counts.
    SetRun {
        /// The datum whose run is rewritten.
        datum: DataId,
        /// The window being rewritten.
        window: u32,
        /// The new references, in any order.
        refs: Vec<(ProcId, u32)>,
    },
    /// Append one window after the current last one, holding the given
    /// `(datum, processor, count)` reference rows (possibly empty).
    AppendWindow {
        /// References inside the new window, in any order.
        rows: Vec<(DataId, ProcId, u32)>,
    },
}

/// An ordered batch of [`EditOp`]s, built fluently and applied atomically
/// (validation happens up front; a bad op leaves the trace untouched).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDelta {
    ops: Vec<EditOp>,
}

impl TraceDelta {
    /// An empty delta (applying it is a no-op that dirties nothing).
    pub fn new() -> Self {
        TraceDelta::default()
    }

    /// Queue a [`EditOp::SetRun`] rewriting `datum`'s run in `window`.
    pub fn set_run(
        &mut self,
        datum: DataId,
        window: u32,
        refs: impl IntoIterator<Item = (ProcId, u32)>,
    ) -> &mut Self {
        self.ops.push(EditOp::SetRun {
            datum,
            window,
            refs: refs.into_iter().collect(),
        });
        self
    }

    /// Queue a run removal (a [`EditOp::SetRun`] with no references).
    pub fn remove_run(&mut self, datum: DataId, window: u32) -> &mut Self {
        self.set_run(datum, window, [])
    }

    /// Queue a [`EditOp::AppendWindow`] with the given reference rows.
    pub fn append_window(
        &mut self,
        rows: impl IntoIterator<Item = (DataId, ProcId, u32)>,
    ) -> &mut Self {
        self.ops.push(EditOp::AppendWindow {
            rows: rows.into_iter().collect(),
        });
        self
    }

    /// The queued ops, in application order.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Whether the delta holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Serialize to the JSON document [`TraceDelta::from_json`] accepts:
    ///
    /// ```json
    /// {"version":1,"ops":[
    ///   {"op":"set_run","datum":3,"window":1,"refs":[[5,2],[6,1]]},
    ///   {"op":"append_window","rows":[[0,5,2]]}
    /// ]}
    /// ```
    ///
    /// `refs` pairs are `[processor, count]`, `rows` triples are
    /// `[datum, processor, count]`.
    pub fn to_json(&self) -> String {
        use core::fmt::Write;
        let mut out = String::from("{\"version\":1,\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match op {
                EditOp::SetRun {
                    datum,
                    window,
                    refs,
                } => {
                    let _ = write!(
                        out,
                        "{{\"op\":\"set_run\",\"datum\":{},\"window\":{},\"refs\":[",
                        datum.0, window
                    );
                    for (j, (p, n)) in refs.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{},{}]", p.0, n);
                    }
                    out.push_str("]}");
                }
                EditOp::AppendWindow { rows } => {
                    out.push_str("{\"op\":\"append_window\",\"rows\":[");
                    for (j, (d, p, n)) in rows.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{},{},{}]", d.0, p.0, n);
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Parse the document produced by [`TraceDelta::to_json`]. Shape
    /// errors (wrong types, unknown keys, id overflow) come back as
    /// [`DeltaJsonError`]; range validation against a concrete trace
    /// happens later in [`EditableTrace::check`].
    pub fn from_json(text: &str) -> Result<TraceDelta, DeltaJsonError> {
        let v = crate::json::parse(text).map_err(DeltaJsonError)?;
        TraceDelta::from_json_value(&v)
    }

    /// [`TraceDelta::from_json`] over an already-parsed [`crate::json::Value`]
    /// (the serve protocol embeds deltas inside request objects).
    pub fn from_json_value(v: &crate::json::Value) -> Result<TraceDelta, DeltaJsonError> {
        let err = |msg: &str| DeltaJsonError(msg.to_string());
        let narrow = |v: u64, what: &str| {
            u32::try_from(v).map_err(|_| DeltaJsonError(format!("{what} {v} overflows u32")))
        };
        let obj = v.as_obj().ok_or_else(|| err("delta must be an object"))?;
        let mut version = None;
        let mut ops: Option<Vec<EditOp>> = None;
        for (k, val) in obj {
            match k.as_str() {
                "version" => version = Some(val.as_u64().ok_or_else(|| err("version"))?),
                "ops" => {
                    let arr = val.as_arr().ok_or_else(|| err("ops must be an array"))?;
                    let mut out = Vec::with_capacity(arr.len());
                    for opv in arr {
                        let op = opv.as_obj().ok_or_else(|| err("op must be an object"))?;
                        let kind = opv
                            .get("op")
                            .and_then(crate::json::Value::as_str)
                            .ok_or_else(|| err("op missing \"op\" kind"))?;
                        match kind {
                            "set_run" => {
                                let mut datum = None;
                                let mut window = None;
                                let mut refs = None;
                                for (k, val) in op {
                                    match k.as_str() {
                                        "op" => {}
                                        "datum" => {
                                            datum = Some(narrow(
                                                val.as_u64().ok_or_else(|| err("datum"))?,
                                                "datum",
                                            )?)
                                        }
                                        "window" => {
                                            window = Some(narrow(
                                                val.as_u64().ok_or_else(|| err("window"))?,
                                                "window",
                                            )?)
                                        }
                                        "refs" => {
                                            let arr = val
                                                .as_arr()
                                                .ok_or_else(|| err("refs must be an array"))?;
                                            let mut rs = Vec::with_capacity(arr.len());
                                            for rv in arr {
                                                let pair = rv
                                                    .as_arr()
                                                    .filter(|p| p.len() == 2)
                                                    .ok_or_else(|| {
                                                        err("ref must be a [proc, count] pair")
                                                    })?;
                                                let p = pair[0]
                                                    .as_u64()
                                                    .ok_or_else(|| err("ref proc"))?;
                                                let n = pair[1]
                                                    .as_u64()
                                                    .ok_or_else(|| err("ref count"))?;
                                                rs.push((
                                                    ProcId(narrow(p, "proc")?),
                                                    narrow(n, "count")?,
                                                ));
                                            }
                                            refs = Some(rs);
                                        }
                                        other => {
                                            return Err(DeltaJsonError(format!(
                                                "unknown set_run key {other:?}"
                                            )))
                                        }
                                    }
                                }
                                out.push(EditOp::SetRun {
                                    datum: DataId(
                                        datum.ok_or_else(|| err("set_run missing datum"))?,
                                    ),
                                    window: window.ok_or_else(|| err("set_run missing window"))?,
                                    refs: refs.ok_or_else(|| err("set_run missing refs"))?,
                                });
                            }
                            "append_window" => {
                                let mut rows = None;
                                for (k, val) in op {
                                    match k.as_str() {
                                        "op" => {}
                                        "rows" => {
                                            let arr = val
                                                .as_arr()
                                                .ok_or_else(|| err("rows must be an array"))?;
                                            let mut rs = Vec::with_capacity(arr.len());
                                            for rv in arr {
                                                let t = rv
                                                    .as_arr()
                                                    .filter(|t| t.len() == 3)
                                                    .ok_or_else(|| {
                                                        err("row must be a [datum, proc, count] triple")
                                                    })?;
                                                let d = t[0]
                                                    .as_u64()
                                                    .ok_or_else(|| err("row datum"))?;
                                                let p =
                                                    t[1].as_u64().ok_or_else(|| err("row proc"))?;
                                                let n = t[2]
                                                    .as_u64()
                                                    .ok_or_else(|| err("row count"))?;
                                                rs.push((
                                                    DataId(narrow(d, "datum")?),
                                                    ProcId(narrow(p, "proc")?),
                                                    narrow(n, "count")?,
                                                ));
                                            }
                                            rows = Some(rs);
                                        }
                                        other => {
                                            return Err(DeltaJsonError(format!(
                                                "unknown append_window key {other:?}"
                                            )))
                                        }
                                    }
                                }
                                out.push(EditOp::AppendWindow {
                                    rows: rows.ok_or_else(|| err("append_window missing rows"))?,
                                });
                            }
                            other => {
                                return Err(DeltaJsonError(format!("unknown op kind {other:?}")))
                            }
                        }
                    }
                    ops = Some(out);
                }
                other => return Err(DeltaJsonError(format!("unknown delta key {other:?}"))),
            }
        }
        match version {
            Some(1) => {}
            Some(v) => return Err(DeltaJsonError(format!("unsupported delta version {v}"))),
            None => return Err(err("missing version")),
        }
        Ok(TraceDelta {
            ops: ops.ok_or_else(|| err("missing ops"))?,
        })
    }
}

/// A [`TraceDelta`] JSON document failed to parse or had the wrong shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaJsonError(pub String);

impl core::fmt::Display for DeltaJsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "bad delta JSON: {}", self.0)
    }
}

impl std::error::Error for DeltaJsonError {}

/// How an edited datum is dirty, deciding what downstream caches may keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DirtyKind {
    /// The datum only gained references in appended windows; its span for
    /// the pre-existing windows is unchanged, so prefix structures can be
    /// extended in place.
    Appended = 1,
    /// An existing window's run changed; per-datum caches must rebuild.
    Rewritten = 2,
}

/// Everything that changed since the last [`EditableTrace::take_dirty`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirtySummary {
    /// Touched data with their dirty kind, in first-touched order (each
    /// datum listed once; `Rewritten` wins over `Appended`).
    pub data: Vec<(DataId, DirtyKind)>,
    /// Windows appended since the last drain.
    pub appended_windows: usize,
    /// The window count before those appends (clean data's spans are
    /// untouched up to here).
    pub old_num_windows: usize,
}

impl DirtySummary {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty() && self.appended_windows == 0
    }
}

const CLEAN: u8 = 0;

/// A [`FlatTrace`] plus an overlay of edited per-datum spans, dirty
/// tracking, and a monotonically increasing version (see module docs).
#[derive(Debug, Clone)]
pub struct EditableTrace {
    base: Arc<FlatTrace>,
    /// `overrides[d]` shadows the base span of datum `d` when set.
    overrides: Vec<Option<Arc<[FlatRef]>>>,
    num_windows: usize,
    version: u64,
    /// Per-datum `CLEAN` / `DirtyKind as u8`.
    dirty_kinds: Vec<u8>,
    /// Dirty data in first-touched order (unique).
    dirty_order: Vec<DataId>,
    appended_since_drain: usize,
    windows_at_drain: usize,
    /// Reusable buffers for [`set_run_unchecked`](Self::apply_op): churn
    /// applies thousands of single-run rewrites per tick, and building
    /// each new span in a scratch that survives across ops halves the
    /// allocations on that hot path.
    run_scratch: Vec<FlatRef>,
    span_scratch: Vec<FlatRef>,
}

impl EditableTrace {
    /// Wrap a flat trace for editing. The base moves behind an `Arc` so
    /// readers (cost caches, scratch solvers) can share it.
    pub fn new(base: FlatTrace) -> EditableTrace {
        EditableTrace::from_arc(Arc::new(base))
    }

    /// Wrap an already-shared flat trace for editing.
    pub fn from_arc(base: Arc<FlatTrace>) -> EditableTrace {
        let nd = base.num_data();
        let nw = base.num_windows();
        EditableTrace {
            base,
            overrides: vec![None; nd],
            num_windows: nw,
            version: 0,
            dirty_kinds: vec![CLEAN; nd],
            dirty_order: Vec::new(),
            appended_since_drain: 0,
            windows_at_drain: nw,
            run_scratch: Vec::new(),
            span_scratch: Vec::new(),
        }
    }

    /// The processor grid.
    #[inline]
    pub fn grid(&self) -> Grid {
        self.base.grid()
    }

    /// Number of data items (fixed; edits never add data).
    #[inline]
    pub fn num_data(&self) -> usize {
        self.overrides.len()
    }

    /// Number of execution windows (grows under [`EditOp::AppendWindow`]).
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Edit counter: bumped once per applied op, never by reads.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The shared base trace (reference strings as of construction).
    pub fn base(&self) -> &Arc<FlatTrace> {
        &self.base
    }

    /// Datum `d`'s current reference run, window-major (overlay if edited,
    /// base otherwise).
    #[inline]
    pub fn span(&self, d: DataId) -> &[FlatRef] {
        match &self.overrides[d.index()] {
            Some(span) => span,
            None => self.base.span(d),
        }
    }

    /// Datum `d`'s edited span, if any (shared, cheap to clone).
    pub fn override_span(&self, d: DataId) -> Option<&Arc<[FlatRef]>> {
        self.overrides[d.index()].as_ref()
    }

    /// Hint the CPU to pull the head of datum `d`'s span into cache —
    /// a one-op lookahead in an edit loop overlaps the DRAM latency of
    /// the next random span with the current op's work. No-op on
    /// non-x86_64 targets.
    #[inline]
    pub fn prefetch_span(&self, d: DataId) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch reads nothing and faults on nothing; the
        // wrapping pointer math never asserts in-bounds provenance.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if let Some(first) = self.span(d).first() {
                let p = first as *const FlatRef as *const i8;
                _mm_prefetch(p, _MM_HINT_T0);
                _mm_prefetch(p.wrapping_add(64), _MM_HINT_T0);
                _mm_prefetch(p.wrapping_add(128), _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = d;
    }

    /// Datum `d`'s current span as a shared slice: the overlay `Arc` when
    /// edited, a fresh copy of the base span otherwise.
    pub fn shared_span(&self, d: DataId) -> Arc<[FlatRef]> {
        match &self.overrides[d.index()] {
            Some(span) => Arc::clone(span),
            None => Arc::from(self.base.span(d)),
        }
    }

    /// Datum `d`'s current references in window `w` (possibly empty).
    pub fn window_run(&self, d: DataId, w: usize) -> &[FlatRef] {
        let span = self.span(d);
        let lo = span.partition_point(|r| (r.window as usize) < w);
        let hi = span.partition_point(|r| (r.window as usize) <= w);
        &span[lo..hi]
    }

    /// Whether any edits are pending a [`take_dirty`](Self::take_dirty).
    pub fn is_dirty(&self) -> bool {
        !self.dirty_order.is_empty() || self.appended_since_drain > 0
    }

    /// Drain the dirty set, resetting all tracking to clean.
    pub fn take_dirty(&mut self) -> DirtySummary {
        let data = self
            .dirty_order
            .drain(..)
            .map(|d| {
                let kind = match self.dirty_kinds[d.index()] {
                    1 => DirtyKind::Appended,
                    _ => DirtyKind::Rewritten,
                };
                self.dirty_kinds[d.index()] = CLEAN;
                (d, kind)
            })
            .collect();
        let summary = DirtySummary {
            data,
            appended_windows: self.appended_since_drain,
            old_num_windows: self.windows_at_drain,
        };
        self.appended_since_drain = 0;
        self.windows_at_drain = self.num_windows;
        summary
    }

    /// Validate a delta against the current trace without applying it.
    /// Window bounds account for windows the delta itself appends.
    pub fn check(&self, delta: &TraceDelta) -> Result<(), FlatTraceError> {
        let mut nw = self.num_windows;
        for op in delta.ops() {
            self.check_op(op, &mut nw)?;
        }
        Ok(())
    }

    /// Validate one op against the current trace, with `nw` the live
    /// window count (bumped in place on appends so a batch caller sees
    /// windows earlier ops in the same delta added).
    fn check_op(&self, op: &EditOp, nw: &mut usize) -> Result<(), FlatTraceError> {
        let grid = self.grid();
        let nd = self.num_data();
        let check_datum = |d: DataId| -> Result<(), FlatTraceError> {
            if d.index() >= nd {
                return Err(FlatTraceError::DatumOutOfRange {
                    datum: d.0,
                    num_data: nd,
                });
            }
            Ok(())
        };
        let check_proc = |p: ProcId| -> Result<(), FlatTraceError> {
            if p.index() >= grid.num_procs() {
                return Err(FlatTraceError::ProcOutOfRange {
                    proc: p.0,
                    num_procs: grid.num_procs(),
                });
            }
            Ok(())
        };
        match op {
            EditOp::SetRun {
                datum,
                window,
                refs,
            } => {
                check_datum(*datum)?;
                if *window as usize >= *nw {
                    return Err(FlatTraceError::WindowOutOfRange {
                        window: *window,
                        num_windows: *nw,
                    });
                }
                for &(p, _) in refs {
                    check_proc(p)?;
                }
            }
            EditOp::AppendWindow { rows } => {
                for &(d, p, _) in rows {
                    check_datum(d)?;
                    check_proc(p)?;
                }
                *nw += 1;
            }
        }
        Ok(())
    }

    /// Apply a whole delta atomically: every op is validated first, so an
    /// invalid delta leaves the trace (and its version) untouched.
    pub fn apply(&mut self, delta: &TraceDelta) -> Result<(), FlatTraceError> {
        self.check(delta)?;
        for op in delta.ops() {
            self.apply_op(op).expect("delta pre-validated by check");
        }
        Ok(())
    }

    /// Apply a single op, validating it against the current state. Prefer
    /// [`apply`](Self::apply) for whole deltas (atomic validation); this
    /// entry point exists for engines that interleave their own
    /// bookkeeping with the trace mutation op by op.
    pub fn apply_op(&mut self, op: &EditOp) -> Result<(), FlatTraceError> {
        let mut nw = self.num_windows;
        self.check_op(op, &mut nw)?;
        match op {
            EditOp::SetRun {
                datum,
                window,
                refs,
            } => self.set_run_unchecked(*datum, *window, refs),
            EditOp::AppendWindow { rows } => self.append_window_unchecked(rows),
        }
        self.version += 1;
        Ok(())
    }

    fn mark(&mut self, d: DataId, kind: DirtyKind) {
        let cur = &mut self.dirty_kinds[d.index()];
        if *cur == CLEAN {
            self.dirty_order.push(d);
        }
        *cur = (*cur).max(kind as u8);
    }

    fn set_run_unchecked(&mut self, d: DataId, w: u32, refs: &[(ProcId, u32)]) {
        let grid = self.grid();
        let mut run = std::mem::take(&mut self.run_scratch);
        let mut next = std::mem::take(&mut self.span_scratch);
        aggregate_run_into(&grid, w, refs, &mut run);
        let span = self.span(d);
        let lo = span.partition_point(|r| r.window < w);
        let hi = span.partition_point(|r| r.window <= w);
        next.clear();
        next.reserve(span.len() - (hi - lo) + run.len());
        next.extend_from_slice(&span[..lo]);
        next.extend_from_slice(&run);
        next.extend_from_slice(&span[hi..]);
        self.overrides[d.index()] = Some(Arc::from(&next[..]));
        self.run_scratch = run;
        self.span_scratch = next;
        self.mark(d, DirtyKind::Rewritten);
    }

    fn append_window_unchecked(&mut self, rows: &[(DataId, ProcId, u32)]) {
        let grid = self.grid();
        let w = self.num_windows as u32;
        self.num_windows += 1;
        self.appended_since_drain += 1;
        // Canonicalize rows exactly as `from_records` would: sort by
        // (datum, y, x), aggregate duplicates with saturating adds.
        let mut tagged: Vec<(u32, FlatRef)> = rows
            .iter()
            .map(|&(d, p, c)| {
                let pt = grid.point_of(p);
                (
                    d.0,
                    FlatRef {
                        window: w,
                        x: pt.x,
                        y: pt.y,
                        count: c,
                    },
                )
            })
            .collect();
        tagged.sort_unstable_by_key(|&(d, r)| (d, r.y, r.x));
        let mut i = 0;
        while i < tagged.len() {
            let d = tagged[i].0;
            let mut run: Vec<FlatRef> = Vec::new();
            while i < tagged.len() && tagged[i].0 == d {
                let r = tagged[i].1;
                match run.last_mut() {
                    Some(last) if last.y == r.y && last.x == r.x => {
                        last.count = last.count.saturating_add(r.count);
                    }
                    _ => run.push(r),
                }
                i += 1;
            }
            let datum = DataId(d);
            let span = self.span(datum);
            let mut next = Vec::with_capacity(span.len() + run.len());
            next.extend_from_slice(span);
            next.extend_from_slice(&run);
            self.overrides[datum.index()] = Some(Arc::from(next));
            self.mark(datum, DirtyKind::Appended);
        }
    }

    /// Assemble a standalone [`FlatTrace`] of the current contents. The
    /// overlay spans are already canonical, so this is pure concatenation —
    /// `O(total refs)`, no sorting.
    pub fn materialize(&self) -> FlatTrace {
        let nd = self.num_data();
        let mut offsets = Vec::with_capacity(nd + 1);
        offsets.push(0usize);
        let total: usize = (0..nd).map(|d| self.span(DataId(d as u32)).len()).sum();
        let mut refs = Vec::with_capacity(total);
        for d in 0..nd {
            refs.extend_from_slice(self.span(DataId(d as u32)));
            offsets.push(refs.len());
        }
        FlatTrace::from_sorted_parts(self.grid(), self.num_windows, offsets, refs)
    }
}

/// Canonicalize one window's (processor, count) pairs into a sorted,
/// aggregated run of [`FlatRef`]s — the same normal form
/// [`FlatTrace::from_records`] produces (zero counts kept) — written
/// into `run` (cleared first) so hot callers can reuse the buffer.
fn aggregate_run_into(grid: &Grid, w: u32, refs: &[(ProcId, u32)], run: &mut Vec<FlatRef>) {
    run.clear();
    run.extend(refs.iter().map(|&(p, c)| {
        let pt = grid.point_of(p);
        FlatRef {
            window: w,
            x: pt.x,
            y: pt.y,
            count: c,
        }
    }));
    run.sort_unstable_by_key(|r| (r.y, r.x));
    run.dedup_by(|b, a| {
        if a.y == b.y && a.x == b.x {
            a.count = a.count.saturating_add(b.count);
            true
        } else {
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatRecord;

    fn base_trace() -> FlatTrace {
        let grid = Grid::new(4, 3);
        let rec = |d: u32, w: u32, p: u32, c: u32| FlatRecord {
            datum: DataId(d),
            window: w,
            proc: ProcId(p),
            count: c,
        };
        FlatTrace::from_records(
            grid,
            3,
            3,
            vec![
                rec(0, 0, 0, 3),
                rec(0, 0, 11, 1),
                rec(0, 2, 6, 5),
                rec(1, 1, 9, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn set_run_rewrites_only_the_target_window() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.set_run(DataId(0), 0, [(ProcId(5), 7)]);
        t.apply(&delta).unwrap();
        assert_eq!(t.version(), 1);
        assert_eq!(t.window_run(DataId(0), 0).len(), 1);
        assert_eq!(t.window_run(DataId(0), 0)[0].count, 7);
        // window 2 untouched, datum 1 untouched (still reads the base)
        assert_eq!(t.window_run(DataId(0), 2)[0].count, 5);
        assert!(t.override_span(DataId(1)).is_none());
        let dirty = t.take_dirty();
        assert_eq!(dirty.data, vec![(DataId(0), DirtyKind::Rewritten)]);
        assert_eq!(dirty.appended_windows, 0);
        assert!(!t.is_dirty());
    }

    #[test]
    fn remove_and_insert_runs() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.remove_run(DataId(0), 0);
        delta.set_run(DataId(2), 1, [(ProcId(3), 4)]); // previously empty
        t.apply(&delta).unwrap();
        assert!(t.window_run(DataId(0), 0).is_empty());
        assert_eq!(t.window_run(DataId(2), 1)[0].count, 4);
        assert_eq!(t.version(), 2);
    }

    #[test]
    fn append_window_marks_only_referenced_data() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.append_window([(DataId(1), ProcId(2), 1), (DataId(1), ProcId(2), 2)]);
        t.apply(&delta).unwrap();
        assert_eq!(t.num_windows(), 4);
        let run = t.window_run(DataId(1), 3);
        assert_eq!(run.len(), 1);
        assert_eq!(run[0].count, 3); // duplicate rows aggregated
        let dirty = t.take_dirty();
        assert_eq!(dirty.data, vec![(DataId(1), DirtyKind::Appended)]);
        assert_eq!(dirty.appended_windows, 1);
        assert_eq!(dirty.old_num_windows, 3);
    }

    #[test]
    fn rewritten_wins_over_appended() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.append_window([(DataId(0), ProcId(1), 1)]);
        delta.set_run(DataId(0), 0, [(ProcId(1), 1)]);
        t.apply(&delta).unwrap();
        let dirty = t.take_dirty();
        assert_eq!(dirty.data, vec![(DataId(0), DirtyKind::Rewritten)]);
    }

    #[test]
    fn set_run_may_target_a_window_the_delta_appends() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.append_window([]);
        delta.set_run(DataId(2), 3, [(ProcId(0), 9)]);
        t.apply(&delta).unwrap();
        assert_eq!(t.window_run(DataId(2), 3)[0].count, 9);
    }

    #[test]
    fn invalid_deltas_leave_the_trace_untouched() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.set_run(DataId(0), 0, [(ProcId(1), 1)]);
        delta.set_run(DataId(0), 99, [(ProcId(1), 1)]); // out of range
        assert!(matches!(
            t.apply(&delta),
            Err(FlatTraceError::WindowOutOfRange { window: 99, .. })
        ));
        assert_eq!(t.version(), 0);
        assert!(!t.is_dirty());
        assert_eq!(t.window_run(DataId(0), 0).len(), 2);

        let mut bad_datum = TraceDelta::new();
        bad_datum.set_run(DataId(7), 0, []);
        assert!(matches!(
            t.apply(&bad_datum),
            Err(FlatTraceError::DatumOutOfRange { datum: 7, .. })
        ));
        let mut bad_proc = TraceDelta::new();
        bad_proc.append_window([(DataId(0), ProcId(99), 1)]);
        assert!(matches!(
            t.apply(&bad_proc),
            Err(FlatTraceError::ProcOutOfRange { proc: 99, .. })
        ));
        assert_eq!(t.num_windows(), 3);
    }

    #[test]
    fn empty_delta_is_a_clean_no_op() {
        let mut t = EditableTrace::new(base_trace());
        t.apply(&TraceDelta::new()).unwrap();
        assert_eq!(t.version(), 0);
        assert!(!t.is_dirty());
        assert_eq!(t.materialize(), base_trace());
    }

    #[test]
    fn materialize_matches_from_records_oracle() {
        let mut t = EditableTrace::new(base_trace());
        let mut delta = TraceDelta::new();
        delta.set_run(
            DataId(0),
            0,
            [(ProcId(7), 2), (ProcId(1), 1), (ProcId(7), 3)],
        );
        delta.append_window([(DataId(2), ProcId(0), 1)]);
        t.apply(&delta).unwrap();

        // Oracle: rebuild from the edited record set from scratch.
        let grid = t.grid();
        let mut records = Vec::new();
        for d in 0..t.num_data() {
            for r in t.span(DataId(d as u32)) {
                records.push(FlatRecord {
                    datum: DataId(d as u32),
                    window: r.window,
                    proc: grid.proc_xy(r.x, r.y),
                    count: r.count,
                });
            }
        }
        let oracle = FlatTrace::from_records(grid, t.num_windows(), t.num_data(), records).unwrap();
        assert_eq!(t.materialize(), oracle);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Small base traces built from raw records (degenerate corners
        /// included: empty data, single window).
        fn arb_base() -> impl Strategy<Value = FlatTrace> {
            (2u32..5, 2u32..5, 1usize..4, 1usize..5).prop_flat_map(|(wd, ht, nw, nd)| {
                let grid = Grid::new(wd, ht);
                let m = grid.num_procs() as u32;
                proptest::collection::vec((0..nd as u32, 0..nw as u32, 0..m, 0u32..6), 0..12)
                    .prop_map(move |rows| {
                        FlatTrace::from_records(
                            grid,
                            nw,
                            nd,
                            rows.into_iter().map(|(d, w, p, c)| FlatRecord {
                                datum: DataId(d),
                                window: w,
                                proc: ProcId(p),
                                count: c,
                            }),
                        )
                        .expect("generated records are in range")
                    })
            })
        }

        /// Random deltas against a trace of `nd` data, `nw` windows, `m`
        /// procs. Ops may repeat a datum (duplicate-datum edits), rewrite
        /// every datum (full-trace deltas), set zero counts, and append.
        fn arb_delta(nd: u32, nw: u32, m: u32) -> impl Strategy<Value = TraceDelta> {
            let set_run = (
                0..nd,
                0..nw,
                proptest::collection::vec((0..m, 0u32..5), 0..3),
            )
                .prop_map(|(d, w, refs)| EditOp::SetRun {
                    datum: DataId(d),
                    window: w,
                    refs: refs.into_iter().map(|(p, c)| (ProcId(p), c)).collect(),
                });
            let append = proptest::collection::vec((0..nd, 0..m, 1u32..5), 0..4).prop_map(|rows| {
                EditOp::AppendWindow {
                    rows: rows
                        .into_iter()
                        .map(|(d, p, c)| (DataId(d), ProcId(p), c))
                        .collect(),
                }
            });
            proptest::collection::vec(prop_oneof![set_run, append], 0..6)
                .prop_map(|ops| TraceDelta { ops })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// apply(delta); materialize() == from_records(edited records):
            /// the overlay's normal form is exactly `from_records`'s.
            #[test]
            fn edited_traces_round_trip_through_records(
                (base, delta) in arb_base().prop_flat_map(|base| {
                    let nd = base.num_data() as u32;
                    let nw = base.num_windows() as u32;
                    let m = base.grid().num_procs() as u32;
                    arb_delta(nd, nw, m).prop_map(move |d| (base.clone(), d))
                })
            ) {
                let mut t = EditableTrace::new(base);
                t.apply(&delta).unwrap();
                let grid = t.grid();
                let mut records = Vec::new();
                for d in 0..t.num_data() {
                    for r in t.span(DataId(d as u32)) {
                        records.push(FlatRecord {
                            datum: DataId(d as u32),
                            window: r.window,
                            proc: grid.proc_xy(r.x, r.y),
                            count: r.count,
                        });
                    }
                }
                let oracle = FlatTrace::from_records(
                    grid,
                    t.num_windows(),
                    t.num_data(),
                    records,
                )
                .expect("edited records stay in range");
                prop_assert_eq!(t.materialize(), oracle);
            }

            /// Dirty tracking: exactly the edited data are reported, and a
            /// drained trace is clean.
            #[test]
            fn dirty_set_is_exactly_the_touched_data(
                (base, delta) in arb_base().prop_flat_map(|base| {
                    let nd = base.num_data() as u32;
                    let nw = base.num_windows() as u32;
                    let m = base.grid().num_procs() as u32;
                    arb_delta(nd, nw, m).prop_map(move |d| (base.clone(), d))
                })
            ) {
                let mut t = EditableTrace::new(base);
                t.apply(&delta).unwrap();
                let mut expect: Vec<u32> = Vec::new();
                for op in delta.ops() {
                    match op {
                        EditOp::SetRun { datum, .. } => {
                            if !expect.contains(&datum.0) { expect.push(datum.0); }
                        }
                        EditOp::AppendWindow { rows } => {
                            for &(d, _, _) in rows {
                                if !expect.contains(&d.0) { expect.push(d.0); }
                            }
                        }
                    }
                }
                let dirty = t.take_dirty();
                let mut got: Vec<u32> = dirty.data.iter().map(|(d, _)| d.0).collect();
                got.sort_unstable();
                expect.sort_unstable();
                prop_assert_eq!(got, expect);
                prop_assert!(!t.is_dirty());
                prop_assert_eq!(t.version(), delta.len() as u64);
            }
        }
    }
    #[test]
    fn delta_json_round_trips() {
        let mut d = TraceDelta::new();
        d.set_run(DataId(3), 1, [(ProcId(5), 2), (ProcId(6), 1)])
            .remove_run(DataId(0), 0)
            .append_window([(DataId(1), ProcId(2), 7)])
            .append_window([]);
        let text = d.to_json();
        let back = TraceDelta::from_json(&text).unwrap();
        assert_eq!(back, d);
        let empty = TraceDelta::new();
        assert_eq!(TraceDelta::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn delta_json_rejects_malformed_input() {
        for bad in [
            "",
            "[]",
            "{\"version\":2,\"ops\":[]}",
            "{\"ops\":[]}",
            "{\"version\":1}",
            "{\"version\":1,\"ops\":[{}]}",
            "{\"version\":1,\"ops\":[{\"op\":\"bogus\"}]}",
            "{\"version\":1,\"ops\":[{\"op\":\"set_run\",\"datum\":0,\"window\":0}]}",
            "{\"version\":1,\"ops\":[{\"op\":\"set_run\",\"datum\":0,\"window\":0,\"refs\":[[1]]}]}",
            "{\"version\":1,\"ops\":[{\"op\":\"append_window\",\"rows\":[[1,2]]}]}",
            "{\"version\":1,\"ops\":[],\"bogus\":3}",
            "{\"version\":1,\"ops\":[{\"op\":\"set_run\",\"datum\":4294967296,\"window\":0,\"refs\":[]}]}",
        ] {
            assert!(TraceDelta::from_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
