//! Adaptive windowing.
//!
//! Fixed `steps_per_window` bucketing (the paper's setup) is oblivious to
//! what the steps actually reference; Algorithm 3 then re-merges windows
//! per datum after the fact. This module attacks the same problem from the
//! front: cut a window boundary only when the *application-wide* reference
//! pattern moves — specifically, when the volume-weighted centroid of a
//! step's references drifts more than `drift_threshold` Manhattan units
//! from the centroid of the window accumulated so far, or the window
//! reaches `max_steps`.
//!
//! The `sweep_adaptive` experiment compares fixed and adaptive windowing
//! at equal window counts; adaptive windows track phase changes (e.g. the
//! LU → CODE seam in benchmark 3) instead of splitting them mid-phase.

use crate::step::StepTrace;
use crate::window::WindowedTrace;
use pim_array::grid::Grid;

/// Parameters for adaptive windowing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveParams {
    /// Cut when the new step's centroid is farther than this from the
    /// running window centroid (in Manhattan grid units).
    pub drift_threshold: f64,
    /// Hard cap on steps per window (keeps windows bounded on stationary
    /// phases).
    pub max_steps: usize,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            drift_threshold: 1.0,
            max_steps: 16,
        }
    }
}

/// Volume-weighted centroid of one step's accesses, or `None` for an idle
/// step.
fn step_centroid(grid: &Grid, step: &crate::step::ExecStep) -> Option<(f64, f64)> {
    let mut vol = 0u64;
    let (mut sx, mut sy) = (0f64, 0f64);
    for a in &step.accesses {
        let p = grid.point_of(a.proc);
        vol += a.count as u64;
        sx += a.count as f64 * p.x as f64;
        sy += a.count as f64 * p.y as f64;
    }
    (vol > 0).then(|| (sx / vol as f64, sy / vol as f64))
}

/// Bucket steps into windows adaptively. Returns the windowed trace and
/// the chosen boundaries (start step index of each window).
pub fn window_adaptive(trace: &StepTrace, params: AdaptiveParams) -> (WindowedTrace, Vec<usize>) {
    assert!(params.max_steps > 0, "max_steps must be positive");
    let grid = trace.grid;
    let mut boundaries = vec![0usize];
    let mut acc: Option<(f64, f64, u64)> = None; // running centroid (x, y, volume)
    let mut len = 0usize;

    for (i, step) in trace.steps.iter().enumerate() {
        let sc = step_centroid(&grid, step);
        let cut = if i == 0 {
            false
        } else if len >= params.max_steps {
            true
        } else {
            match (acc, sc) {
                (Some((ax, ay, _)), Some((sx, sy))) => {
                    (ax - sx).abs() + (ay - sy).abs() > params.drift_threshold
                }
                _ => false, // idle steps never force a cut
            }
        };
        if cut {
            boundaries.push(i);
            acc = None;
            len = 0;
        }
        if let Some((sx, sy)) = sc {
            let vol = step.total_refs();
            acc = Some(match acc {
                None => (sx, sy, vol),
                Some((ax, ay, av)) => {
                    let total = av + vol;
                    (
                        (ax * av as f64 + sx * vol as f64) / total as f64,
                        (ay * av as f64 + sy * vol as f64) / total as f64,
                        total,
                    )
                }
            });
        }
        len += 1;
    }

    let num_windows = boundaries.len();
    let bounds = boundaries.clone();
    let windowed = trace.window_by(
        move |step_idx| match bounds.binary_search(&step_idx) {
            Ok(w) => w,
            Err(w) => w - 1,
        },
        num_windows,
    );
    (windowed, boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::ids::DataId;
    use pim_array::grid::Grid;

    fn two_phase_trace() -> StepTrace {
        // 4 steps at (0,0), then 4 steps at (3,3)
        let g = Grid::new(4, 4);
        let mut b = TraceBuilder::new(g, 1);
        for _ in 0..4 {
            b.step().access_n(g.proc_xy(0, 0), DataId(0), 3);
        }
        for _ in 0..4 {
            b.step().access_n(g.proc_xy(3, 3), DataId(0), 3);
        }
        b.finish()
    }

    #[test]
    fn cuts_exactly_at_the_phase_change() {
        let t = two_phase_trace();
        let (w, bounds) = window_adaptive(
            &t,
            AdaptiveParams {
                drift_threshold: 1.0,
                max_steps: 100,
            },
        );
        assert_eq!(bounds, vec![0, 4]);
        assert_eq!(w.num_windows(), 2);
        assert_eq!(w.refs(DataId(0)).window(0).total_volume(), 12);
        assert_eq!(w.refs(DataId(0)).window(1).total_volume(), 12);
    }

    #[test]
    fn max_steps_caps_stationary_phases() {
        let t = two_phase_trace();
        let (w, bounds) = window_adaptive(
            &t,
            AdaptiveParams {
                drift_threshold: 100.0, // never drift-cut
                max_steps: 3,
            },
        );
        assert_eq!(bounds, vec![0, 3, 6]);
        assert_eq!(w.num_windows(), 3);
    }

    #[test]
    fn huge_threshold_single_window() {
        let t = two_phase_trace();
        let (w, bounds) = window_adaptive(
            &t,
            AdaptiveParams {
                drift_threshold: 1e9,
                max_steps: 1000,
            },
        );
        assert_eq!(bounds, vec![0]);
        assert_eq!(w.num_windows(), 1);
    }

    #[test]
    fn idle_steps_do_not_cut() {
        let g = Grid::new(4, 4);
        let mut b = TraceBuilder::new(g, 1);
        b.step().access(g.proc_xy(0, 0), DataId(0));
        b.step(); // idle
        b.step().access(g.proc_xy(0, 0), DataId(0));
        let t = {
            // keep the idle step: builder drops only *trailing* empties
            let mut t = b.finish();
            assert_eq!(t.num_steps(), 3);
            t.steps[1].accesses.clear();
            t
        };
        let (w, bounds) = window_adaptive(&t, AdaptiveParams::default());
        assert_eq!(bounds, vec![0]);
        assert_eq!(w.num_windows(), 1);
    }

    #[test]
    fn volume_is_preserved() {
        let t = two_phase_trace();
        for threshold in [0.5, 1.0, 3.0, 1e9] {
            let (w, _) = window_adaptive(
                &t,
                AdaptiveParams {
                    drift_threshold: threshold,
                    max_steps: 5,
                },
            );
            assert_eq!(w.total_volume(), t.total_refs());
        }
    }
}
