//! Versioned little-endian binary container for [`FlatTrace`] (`.pimb`).
//!
//! The text format ([`FlatTrace::from_reader`]) is convenient but at 10M+
//! data the parse dominates wall-clock and the decoded trace has to be
//! materialized whole. This module defines a binary layout that is exactly
//! the CSR arrays a [`FlatTrace`] already holds, so loading is a bounds
//! check away from free:
//!
//! ```text
//! offset  size  field
//! ------  ----  ---------------------------------------------------
//!      0     4  magic  b"PIMB"
//!      4     4  version            u32 LE  (currently 1)
//!      8     4  grid width         u32 LE
//!     12     4  grid height        u32 LE
//!     16     8  num_windows        u64 LE
//!     24     8  num_data           u64 LE
//!     32     8  num_refs           u64 LE
//!     40     8  checksum           u64 LE  (FNV-1a over payload words)
//!     48   (num_data + 1) * 8      CSR offsets, u64 LE each
//!      +   num_refs * 16           FlatRef records: window, x, y, count
//!                                  (four u32 LE each)
//! ```
//!
//! The payload is 8-byte aligned end to end (offsets are 8 bytes, records
//! 16), so a memory-mapped file can be reinterpreted in place:
//! [`BinTrace::open`] maps the file, validates header + checksum + CSR
//! invariants once, and then serves `&[FlatRef]` spans straight out of the
//! mapping — zero copies, zero allocation proportional to trace size.
//! [`FlatRef`] is `#[repr(C)]` (four `u32`s, no padding, every bit pattern
//! valid), which is what makes the reinterpretation sound; the open-time
//! validation (offsets monotone and bounded, spans sorted with in-range
//! windows/coordinates) is what makes every later [`FlatView`] access
//! panic- and OOB-free even for adversarial files.
//!
//! Failure is always a typed [`BinError`]: wrong magic, unsupported
//! version, truncated or oversized input, checksum mismatch, or a
//! structural violation. Property tests in `tests/encode_props.rs` fuzz
//! corrupted and truncated buffers against this contract.
//!
//! On non-Unix or big-endian targets [`BinTrace::open`] transparently
//! falls back to decoding the file into an owned [`FlatTrace`]; the format
//! on disk is little-endian everywhere.

use crate::flat::{FlatRef, FlatTrace, FlatView};
use crate::ids::DataId;
use pim_array::grid::Grid;
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes opening every `.pimb` file.
pub const MAGIC: [u8; 4] = *b"PIMB";
/// Current format version.
pub const VERSION: u32 = 1;
/// Size of the fixed header in bytes.
pub const HEADER_LEN: usize = 48;
/// Size of one CSR offset entry in bytes.
pub const OFFSET_BYTES: usize = 8;
/// Size of one encoded [`FlatRef`] record in bytes.
pub const REF_BYTES: usize = 16;

/// Why a binary trace could not be decoded or mapped.
#[derive(Debug)]
pub enum BinError {
    /// The input does not start with the `PIMB` magic bytes.
    BadMagic,
    /// The container version is not supported by this build.
    BadVersion(u32),
    /// The input length does not match the header-declared layout
    /// (truncated file, mid-array cut, or trailing garbage).
    Length {
        /// Bytes the header-declared layout requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The payload checksum did not match the header.
    Checksum {
        /// Checksum stored in the header.
        expected: u64,
        /// Checksum recomputed over the payload.
        actual: u64,
    },
    /// A structural invariant of the CSR arrays is violated.
    Corrupt(String),
    /// The underlying file could not be read or mapped.
    Io(std::io::Error),
}

impl core::fmt::Display for BinError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BinError::BadMagic => write!(f, "not a PIMB binary trace (bad magic)"),
            BinError::BadVersion(v) => write!(f, "unsupported PIMB version {v}"),
            BinError::Length { expected, actual } => {
                write!(f, "expected {expected} bytes, got {actual}")
            }
            BinError::Checksum { expected, actual } => write!(
                f,
                "checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
            ),
            BinError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            BinError::Io(e) => write!(f, "trace file error: {e}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Incremental FNV-1a checksum over little-endian 64-bit payload words.
///
/// Both payload arrays are multiples of 8 bytes, so feeding them through
/// [`Checksum::update`] in any chunking that preserves 8-byte boundaries
/// (e.g. the streaming pipeline's per-chunk reads) yields the same value
/// as one pass over the concatenated payload.
#[derive(Debug, Clone, Copy)]
pub struct Checksum(u64);

impl Checksum {
    /// FNV-1a 64-bit offset basis.
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a 64-bit prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh accumulator.
    pub fn new() -> Checksum {
        Checksum(Self::SEED)
    }

    /// Fold `bytes` (length must be a multiple of 8) into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        debug_assert_eq!(bytes.len() % 8, 0, "payload chunks are 8-byte aligned");
        for chunk in bytes.chunks_exact(8) {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
            self.0 = (self.0 ^ word).wrapping_mul(Self::PRIME);
        }
    }

    /// The accumulated checksum.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Checksum::new()
    }
}

/// Parsed and validated fixed header of a `.pimb` container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// The processor grid.
    pub grid: Grid,
    /// Number of execution windows (always >= 1).
    pub num_windows: usize,
    /// Number of data items.
    pub num_data: usize,
    /// Number of aggregated reference records.
    pub num_refs: usize,
    /// FNV-1a checksum over the payload words.
    pub checksum: u64,
}

impl Header {
    /// Parse and sanity-check the first [`HEADER_LEN`] bytes: magic,
    /// version, positive grid dims that fit the dense `u32` processor id
    /// space, window/datum counts that fit their 32-bit id types, and a
    /// total layout size that fits in `u64`.
    pub fn parse(bytes: &[u8]) -> Result<Header, BinError> {
        if bytes.len() < HEADER_LEN {
            return Err(BinError::Length {
                expected: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        if bytes[0..4] != MAGIC {
            return Err(BinError::BadMagic);
        }
        let version = u32_at(4);
        if version != VERSION {
            return Err(BinError::BadVersion(version));
        }
        let width = u32_at(8);
        let height = u32_at(12);
        if width == 0 || height == 0 || width.checked_mul(height).is_none() {
            return Err(BinError::Corrupt(format!("bad grid {width}x{height}")));
        }
        let num_windows = u64_at(16);
        let num_data = u64_at(24);
        let num_refs = u64_at(32);
        let checksum = u64_at(40);
        if num_windows == 0 || num_windows > u32::MAX as u64 {
            return Err(BinError::Corrupt(format!("bad window count {num_windows}")));
        }
        if num_data > u32::MAX as u64 {
            return Err(BinError::Corrupt(format!(
                "datum count {num_data} overflows the 32-bit id space"
            )));
        }
        let header = Header {
            grid: Grid::new(width, height),
            num_windows: num_windows as usize,
            num_data: num_data as usize,
            num_refs: usize::try_from(num_refs)
                .map_err(|_| BinError::Corrupt(format!("reference count {num_refs} too large")))?,
            checksum,
        };
        // Reject layouts whose byte size cannot be represented; every
        // plausible-length check downstream then uses total_len() safely.
        header
            .checked_total_len()
            .ok_or_else(|| BinError::Corrupt("declared layout size overflows u64".to_string()))?;
        Ok(header)
    }

    /// Byte length of the CSR offsets array.
    pub fn offsets_bytes(&self) -> usize {
        (self.num_data + 1) * OFFSET_BYTES
    }

    /// Byte length of the reference records array.
    pub fn refs_bytes(&self) -> usize {
        self.num_refs * REF_BYTES
    }

    /// Total container length in bytes (header + payload).
    pub fn total_len(&self) -> u64 {
        self.checked_total_len().expect("validated at parse")
    }

    fn checked_total_len(&self) -> Option<u64> {
        let offsets = (self.num_data as u64).checked_add(1)?.checked_mul(8)?;
        let refs = (self.num_refs as u64).checked_mul(16)?;
        (HEADER_LEN as u64).checked_add(offsets)?.checked_add(refs)
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&VERSION.to_le_bytes());
        out[8..12].copy_from_slice(&self.grid.width().to_le_bytes());
        out[12..16].copy_from_slice(&self.grid.height().to_le_bytes());
        out[16..24].copy_from_slice(&(self.num_windows as u64).to_le_bytes());
        out[24..32].copy_from_slice(&(self.num_data as u64).to_le_bytes());
        out[32..40].copy_from_slice(&(self.num_refs as u64).to_le_bytes());
        out[40..48].copy_from_slice(&self.checksum.to_le_bytes());
        out
    }
}

/// Validate a CSR offsets array against the header: first entry 0,
/// monotone non-decreasing, last entry exactly `num_refs`.
pub fn validate_offsets(offsets: &[u64], num_refs: u64) -> Result<(), BinError> {
    let Some((&first, rest)) = offsets.split_first() else {
        return Err(BinError::Corrupt("empty offsets array".to_string()));
    };
    if first != 0 {
        return Err(BinError::Corrupt(format!("offsets[0] = {first}, want 0")));
    }
    let mut prev = 0u64;
    for (i, &o) in rest.iter().enumerate() {
        if o < prev || o > num_refs {
            return Err(BinError::Corrupt(format!(
                "offsets[{}] = {o} breaks monotonicity (prev {prev}, refs {num_refs})",
                i + 1
            )));
        }
        prev = o;
    }
    if prev != num_refs {
        return Err(BinError::Corrupt(format!(
            "offsets end at {prev}, want num_refs = {num_refs}"
        )));
    }
    Ok(())
}

/// Validate one datum's span: every record's window/coordinates in range
/// and the span strictly sorted by `(window, y, x)` (duplicates would
/// have been aggregated by every legitimate writer).
pub fn validate_span(grid: &Grid, num_windows: usize, span: &[FlatRef]) -> Result<(), BinError> {
    for r in span {
        if r.window as usize >= num_windows || r.x >= grid.width() || r.y >= grid.height() {
            return Err(BinError::Corrupt(format!(
                "reference (window {}, x {}, y {}) outside {}x{} / {} windows",
                r.window,
                r.x,
                r.y,
                grid.width(),
                grid.height(),
                num_windows
            )));
        }
    }
    let sorted = span
        .windows(2)
        .all(|p| (p[0].window, p[0].y, p[0].x) < (p[1].window, p[1].y, p[1].x));
    if !sorted {
        return Err(BinError::Corrupt(
            "span not strictly sorted by (window, y, x)".to_string(),
        ));
    }
    Ok(())
}

/// Decode a little-endian record region (length must be a multiple of
/// [`REF_BYTES`]) into `out`, appending. Portable — used by the owned
/// decode path and the chunk-streaming reader.
pub fn decode_refs(bytes: &[u8], out: &mut Vec<FlatRef>) {
    debug_assert_eq!(bytes.len() % REF_BYTES, 0);
    let n = bytes.len() / REF_BYTES;
    out.reserve(n);
    #[cfg(target_endian = "little")]
    {
        // `FlatRef` is `#[repr(C)]` with four `u32` fields, so on a
        // little-endian target the wire image is the in-memory layout:
        // append with one bulk byte copy. The destination pointer comes
        // from the `Vec`'s own (aligned) allocation; the source may be
        // unaligned, which a byte copy permits.
        let start = out.len();
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().add(start).cast::<u8>(),
                bytes.len(),
            );
            out.set_len(start + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    for rec in bytes.chunks_exact(REF_BYTES) {
        let u32_at = |o: usize| u32::from_le_bytes(rec[o..o + 4].try_into().expect("4 bytes"));
        out.push(FlatRef {
            window: u32_at(0),
            x: u32_at(4),
            y: u32_at(8),
            count: u32_at(12),
        });
    }
}

/// Decode a little-endian offsets region (length must be a multiple of
/// [`OFFSET_BYTES`]) into `out`, appending.
pub fn decode_offsets(bytes: &[u8], out: &mut Vec<u64>) {
    debug_assert_eq!(bytes.len() % OFFSET_BYTES, 0);
    let n = bytes.len() / OFFSET_BYTES;
    out.reserve(n);
    #[cfg(target_endian = "little")]
    {
        // Same bulk-copy shortcut as `decode_refs`: LE wire `u64`s are
        // the in-memory representation.
        let start = out.len();
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                out.as_mut_ptr().add(start).cast::<u8>(),
                bytes.len(),
            );
            out.set_len(start + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    for rec in bytes.chunks_exact(OFFSET_BYTES) {
        out.push(u64::from_le_bytes(rec.try_into().expect("8 bytes")));
    }
}

fn encode_ref(r: &FlatRef) -> [u8; REF_BYTES] {
    let mut out = [0u8; REF_BYTES];
    out[0..4].copy_from_slice(&r.window.to_le_bytes());
    out[4..8].copy_from_slice(&r.x.to_le_bytes());
    out[8..12].copy_from_slice(&r.y.to_le_bytes());
    out[12..16].copy_from_slice(&r.count.to_le_bytes());
    out
}

/// Serialize `flat` into the binary container. Two passes over the CSR
/// arrays (checksum, then write) so nothing is buffered beyond `w`'s own
/// buffering — wrap files in a `BufWriter`.
pub fn write_flat(flat: &FlatTrace, w: &mut impl Write) -> io::Result<()> {
    let mut sum = Checksum::new();
    for &o in flat.offsets() {
        sum.update(&(o as u64).to_le_bytes());
    }
    for r in flat.refs() {
        sum.update(&encode_ref(r));
    }
    let header = Header {
        grid: flat.grid(),
        num_windows: flat.num_windows(),
        num_data: flat.num_data(),
        num_refs: flat.num_refs(),
        checksum: sum.finish(),
    };
    w.write_all(&header.encode())?;
    for &o in flat.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for r in flat.refs() {
        w.write_all(&encode_ref(r))?;
    }
    Ok(())
}

/// Serialize `flat` into an in-memory buffer (tests and small traces).
pub fn encode_flat(flat: &FlatTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        HEADER_LEN + flat.num_data() * OFFSET_BYTES + OFFSET_BYTES + flat.num_refs() * REF_BYTES,
    );
    write_flat(flat, &mut out).expect("Vec writer is infallible");
    out
}

/// Write `flat` to `path` as a binary container, returning the file size
/// in bytes.
pub fn pack_file(flat: &FlatTrace, path: impl AsRef<Path>) -> Result<u64, BinError> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_flat(flat, &mut w)?;
    w.flush()?;
    let header = Header {
        grid: flat.grid(),
        num_windows: flat.num_windows(),
        num_data: flat.num_data(),
        num_refs: flat.num_refs(),
        checksum: 0,
    };
    Ok(header.total_len())
}

/// Decode a whole in-memory buffer into an owned [`FlatTrace`].
///
/// Validates everything — length, checksum, CSR invariants — and never
/// panics on malformed input.
pub fn read_flat(bytes: &[u8]) -> Result<FlatTrace, BinError> {
    let header = Header::parse(bytes)?;
    if bytes.len() as u64 != header.total_len() {
        return Err(BinError::Length {
            expected: header.total_len(),
            actual: bytes.len() as u64,
        });
    }
    let mut sum = Checksum::new();
    sum.update(&bytes[HEADER_LEN..]);
    if sum.finish() != header.checksum {
        return Err(BinError::Checksum {
            expected: header.checksum,
            actual: sum.finish(),
        });
    }
    let offsets_end = HEADER_LEN + header.offsets_bytes();
    let mut offsets64 = Vec::new();
    decode_offsets(&bytes[HEADER_LEN..offsets_end], &mut offsets64);
    validate_offsets(&offsets64, header.num_refs as u64)?;
    let mut refs = Vec::new();
    decode_refs(&bytes[offsets_end..], &mut refs);
    let offsets: Vec<usize> = offsets64.iter().map(|&o| o as usize).collect();
    for w in offsets.windows(2) {
        validate_span(&header.grid, header.num_windows, &refs[w[0]..w[1]])?;
    }
    Ok(FlatTrace::from_sorted_parts(
        header.grid,
        header.num_windows,
        offsets,
        refs,
    ))
}

/// Read the file at `path` whole and decode it into an owned
/// [`FlatTrace`].
pub fn load_flat(path: impl AsRef<Path>) -> Result<FlatTrace, BinError> {
    let mut file = std::fs::File::open(path)?;
    // Pre-size from the file length so `read_to_end` doesn't grow-and-copy
    // its way through a gigabyte container (+1 so the final EOF probe
    // doesn't trigger one last doubling).
    let mut bytes = Vec::with_capacity(file.metadata().map_or(0, |m| m.len() as usize + 1));
    file.read_to_end(&mut bytes)?;
    read_flat(&bytes)
}

#[cfg(all(unix, target_endian = "little"))]
mod map {
    //! Minimal read-only `mmap` wrapper. The workspace vendors no `libc`
    //! crate, so the two syscalls are declared directly; `std` already
    //! links the C library on every Unix target.

    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    /// A read-only private mapping of a whole file.
    pub struct Mmap {
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    // SAFETY: the mapping is PROT_READ-only and owned for the struct's
    // lifetime; concurrent shared reads are safe.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl core::fmt::Debug for Mmap {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "Mmap({} bytes)", self.len)
        }
    }

    impl Mmap {
        /// Map `len` bytes of `file` read-only. `len` must be non-zero.
        pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
            debug_assert!(len > 0, "callers reject empty files first");
            // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of a file we
            // hold open; the kernel picks the address.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // self; the slice's lifetime is tied to &self.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region map() returned.
            let _ = unsafe { munmap(self.ptr, self.len) };
        }
    }
}

#[derive(Debug)]
enum Backing {
    /// Zero-copy: spans are served straight out of the mapped file.
    #[cfg(all(unix, target_endian = "little"))]
    Mapped(map::Mmap),
    /// Portable fallback (non-Unix or big-endian hosts): the file was
    /// decoded into an owned trace at open.
    Owned(FlatTrace),
}

/// A validated binary trace opened from disk, implementing [`FlatView`].
///
/// On little-endian Unix the file is memory-mapped and every accessor
/// borrows the mapping directly (zero copies); elsewhere the file is
/// decoded into an owned [`FlatTrace`] behind the same type. Either way
/// [`BinTrace::open`] fully validates the container first, so accessors
/// never panic and never read out of bounds.
#[derive(Debug)]
pub struct BinTrace {
    header: Header,
    backing: Backing,
}

impl BinTrace {
    /// Open and validate the `.pimb` file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<BinTrace, BinError> {
        #[cfg(all(unix, target_endian = "little"))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len < HEADER_LEN as u64 {
                return Err(BinError::Length {
                    expected: HEADER_LEN as u64,
                    actual: len,
                });
            }
            let mapped = map::Mmap::map(&file, len as usize)?;
            let header = Header::parse(mapped.bytes())?;
            if len != header.total_len() {
                return Err(BinError::Length {
                    expected: header.total_len(),
                    actual: len,
                });
            }
            let mut sum = Checksum::new();
            sum.update(&mapped.bytes()[HEADER_LEN..]);
            if sum.finish() != header.checksum {
                return Err(BinError::Checksum {
                    expected: header.checksum,
                    actual: sum.finish(),
                });
            }
            let trace = BinTrace {
                header,
                backing: Backing::Mapped(mapped),
            };
            let offsets = trace.mapped_offsets()?;
            validate_offsets(offsets, header.num_refs as u64)?;
            let refs = trace.mapped_refs()?;
            for w in offsets.windows(2) {
                validate_span(
                    &header.grid,
                    header.num_windows,
                    &refs[w[0] as usize..w[1] as usize],
                )?;
            }
            Ok(trace)
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            let flat = load_flat(path)?;
            let header = Header {
                grid: flat.grid(),
                num_windows: flat.num_windows(),
                num_data: flat.num_data(),
                num_refs: flat.num_refs(),
                checksum: 0,
            };
            Ok(BinTrace {
                header,
                backing: Backing::Owned(flat),
            })
        }
    }

    /// Wrap an owned in-memory trace behind the same type, so code that
    /// schedules from a [`BinTrace`] also accepts traces that never
    /// touched disk.
    pub fn from_flat(flat: FlatTrace) -> BinTrace {
        let header = Header {
            grid: flat.grid(),
            num_windows: flat.num_windows(),
            num_data: flat.num_data(),
            num_refs: flat.num_refs(),
            checksum: 0,
        };
        BinTrace {
            header,
            backing: Backing::Owned(flat),
        }
    }

    /// The validated container header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// Whether spans borrow a memory mapping (as opposed to the owned
    /// fallback decode).
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_endian = "little"))]
        {
            matches!(self.backing, Backing::Mapped(_))
        }
        #[cfg(not(all(unix, target_endian = "little")))]
        {
            false
        }
    }

    /// Materialize an owned [`FlatTrace`] (one copy of the CSR arrays).
    pub fn to_flat(&self) -> FlatTrace {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(_) => {
                let offsets = self
                    .mapped_offsets()
                    .expect("validated at open")
                    .iter()
                    .map(|&o| o as usize)
                    .collect();
                let refs = self.mapped_refs().expect("validated at open").to_vec();
                FlatTrace::from_sorted_parts(
                    self.header.grid,
                    self.header.num_windows,
                    offsets,
                    refs,
                )
            }
            Backing::Owned(flat) => flat.clone(),
        }
    }

    #[cfg(all(unix, target_endian = "little"))]
    fn mapped_offsets(&self) -> Result<&[u64], BinError> {
        let Backing::Mapped(m) = &self.backing else {
            unreachable!("mapped accessors are only reached from the mapped arm");
        };
        let bytes = &m.bytes()[HEADER_LEN..HEADER_LEN + self.header.offsets_bytes()];
        // SAFETY: any initialized bytes are a valid [u64]; alignment is
        // checked below (mappings are page-aligned and HEADER_LEN is a
        // multiple of 8, so the prefix/suffix are always empty).
        let (pre, mid, post) = unsafe { bytes.align_to::<u64>() };
        if !pre.is_empty() || !post.is_empty() {
            return Err(BinError::Corrupt("offsets region misaligned".to_string()));
        }
        Ok(mid)
    }

    #[cfg(all(unix, target_endian = "little"))]
    fn mapped_refs(&self) -> Result<&[FlatRef], BinError> {
        let Backing::Mapped(m) = &self.backing else {
            unreachable!("mapped accessors are only reached from the mapped arm");
        };
        let start = HEADER_LEN + self.header.offsets_bytes();
        let bytes = &m.bytes()[start..start + self.header.refs_bytes()];
        // SAFETY: FlatRef is #[repr(C)], four u32s with no padding, and
        // every bit pattern is a valid value; on a little-endian host the
        // on-disk encoding equals the in-memory representation. Alignment
        // (4) is checked by align_to below.
        let (pre, mid, post) = unsafe { bytes.align_to::<FlatRef>() };
        if !pre.is_empty() || !post.is_empty() {
            return Err(BinError::Corrupt("records region misaligned".to_string()));
        }
        Ok(mid)
    }
}

impl FlatView for BinTrace {
    fn grid(&self) -> Grid {
        self.header.grid
    }
    fn num_windows(&self) -> usize {
        self.header.num_windows
    }
    fn num_data(&self) -> usize {
        self.header.num_data
    }
    fn num_refs(&self) -> usize {
        self.header.num_refs
    }
    fn span(&self, d: DataId) -> &[FlatRef] {
        match &self.backing {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped(_) => {
                let offsets = self.mapped_offsets().expect("validated at open");
                let refs = self.mapped_refs().expect("validated at open");
                &refs[offsets[d.index()] as usize..offsets[d.index() + 1] as usize]
            }
            Backing::Owned(flat) => flat.span(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatRecord;
    use pim_array::grid::ProcId;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sample_flat() -> FlatTrace {
        let grid = Grid::new(4, 3);
        let rec = |d: u32, w: u32, p: u32, c: u32| FlatRecord {
            datum: DataId(d),
            window: w,
            proc: ProcId(p),
            count: c,
        };
        FlatTrace::from_records(
            grid,
            3,
            4,
            vec![
                rec(0, 0, 0, 3),
                rec(0, 0, 11, 1),
                rec(0, 2, 6, 5),
                rec(1, 1, 9, 2),
                rec(3, 0, 5, 7),
            ],
        )
        .unwrap()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "pimb-test-{}-{}-{tag}.pimb",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn encode_decode_round_trip() {
        let flat = sample_flat();
        let bytes = encode_flat(&flat);
        assert_eq!(bytes.len() as u64, {
            let h = Header::parse(&bytes).unwrap();
            h.total_len()
        });
        let back = read_flat(&bytes).unwrap();
        assert_eq!(back, flat);
        // canonical: re-encoding is bit-identical
        assert_eq!(encode_flat(&back), bytes);
    }

    #[test]
    fn header_rejections() {
        let flat = sample_flat();
        let bytes = encode_flat(&flat);

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_flat(&bad), Err(BinError::BadMagic)));

        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(read_flat(&bad), Err(BinError::BadVersion(9))));

        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_flat(&bad), Err(BinError::Corrupt(_))));

        assert!(matches!(
            read_flat(&bytes[..HEADER_LEN - 1]),
            Err(BinError::Length { .. })
        ));
        assert!(matches!(
            read_flat(&bytes[..bytes.len() - 1]),
            Err(BinError::Length { .. })
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(read_flat(&long), Err(BinError::Length { .. })));
    }

    #[test]
    fn checksum_detects_payload_flips() {
        let flat = sample_flat();
        let bytes = encode_flat(&flat);
        for at in [HEADER_LEN, HEADER_LEN + 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(
                matches!(read_flat(&bad), Err(BinError::Checksum { .. })),
                "flip at {at} undetected"
            );
        }
    }

    #[test]
    fn structural_validation_catches_valid_checksum_lies() {
        // Hand-build a container whose checksum is honest but whose
        // offsets are non-monotone.
        let flat = sample_flat();
        let mut bytes = encode_flat(&flat);
        // offsets[1] <-> offsets[2]: swap two middle offsets
        let o1 = HEADER_LEN + OFFSET_BYTES;
        let o2 = o1 + OFFSET_BYTES;
        let a: [u8; 8] = bytes[o1..o1 + 8].try_into().unwrap();
        let b: [u8; 8] = bytes[o2..o2 + 8].try_into().unwrap();
        bytes[o1..o1 + 8].copy_from_slice(&b);
        bytes[o2..o2 + 8].copy_from_slice(&a);
        // re-stamp the checksum so only the structural check can object
        let mut sum = Checksum::new();
        sum.update(&bytes[HEADER_LEN..]);
        let s = sum.finish();
        bytes[40..48].copy_from_slice(&s.to_le_bytes());
        assert!(matches!(read_flat(&bytes), Err(BinError::Corrupt(_))));
    }

    #[test]
    fn mapped_open_matches_owned_decode() {
        let flat = sample_flat();
        let path = temp_path("map");
        pack_file(&flat, &path).unwrap();
        let bin = BinTrace::open(&path).unwrap();
        assert_eq!(bin.grid(), flat.grid());
        assert_eq!(FlatView::num_windows(&bin), flat.num_windows());
        assert_eq!(FlatView::num_data(&bin), flat.num_data());
        assert_eq!(FlatView::num_refs(&bin), flat.num_refs());
        assert_eq!(FlatView::total_volume(&bin), flat.total_volume());
        for d in 0..flat.num_data() {
            let d = DataId(d as u32);
            assert_eq!(FlatView::span(&bin, d), flat.span(d));
        }
        assert_eq!(bin.to_flat(), flat);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(bin.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_corrupt_files() {
        let flat = sample_flat();
        let path = temp_path("bad");
        let mut bytes = encode_flat(&flat);
        bytes[HEADER_LEN + 3] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            BinTrace::open(&path),
            Err(BinError::Checksum { .. })
        ));
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            BinTrace::open(&path),
            Err(BinError::Length { .. })
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(BinTrace::open(&path), Err(BinError::Io(_))));
    }

    #[test]
    fn incremental_checksum_is_chunking_independent() {
        let flat = sample_flat();
        let bytes = encode_flat(&flat);
        let payload = &bytes[HEADER_LEN..];
        let mut whole = Checksum::new();
        whole.update(payload);
        let mut pieces = Checksum::new();
        let mid = (payload.len() / 2) & !7; // keep 8-byte boundaries
        pieces.update(&payload[..mid]);
        pieces.update(&payload[mid..]);
        assert_eq!(whole.finish(), pieces.finish());
    }
}
