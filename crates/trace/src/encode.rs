//! Compact binary encoding of windowed traces.
//!
//! Traces for the larger experiments (32×32 data arrays over hundreds of
//! windows) are regenerated cheaply, but the CLI supports caching them on
//! disk; this module defines the format: a `PIMT` magic, a format version,
//! then little-endian u32/u64 fields. Decoding validates structure and
//! bounds, so a corrupt file produces an error instead of a bogus trace.

use crate::ids::DataId;
use crate::window::{WindowRefs, WindowedTrace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pim_array::grid::{Grid, ProcId};

const MAGIC: &[u8; 4] = b"PIMT";
const VERSION: u32 = 1;

/// Errors produced when decoding a trace buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not begin with the `PIMT` magic.
    BadMagic,
    /// The format version is unsupported.
    BadVersion(u32),
    /// The buffer ended before the structure was complete.
    Truncated,
    /// A field was structurally invalid (out-of-range id, zero dimension…).
    Invalid(&'static str),
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a PIM trace (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            DecodeError::Truncated => write!(f, "trace buffer truncated"),
            DecodeError::Invalid(what) => write!(f, "invalid trace field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a windowed trace into a fresh buffer.
pub fn encode_trace(trace: &WindowedTrace) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + trace.num_data() * 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(trace.grid().width());
    buf.put_u32_le(trace.grid().height());
    buf.put_u32_le(trace.num_data() as u32);
    buf.put_u32_le(trace.num_windows() as u32);
    for (_, rs) in trace.iter_data() {
        for w in rs.windows() {
            buf.put_u32_le(w.num_procs() as u32);
            for r in w.iter() {
                buf.put_u32_le(r.proc.0);
                buf.put_u32_le(r.count);
            }
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

/// Decode a trace previously produced by [`encode_trace`].
pub fn decode_trace(mut buf: impl Buf) -> Result<WindowedTrace, DecodeError> {
    need(&buf, 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    need(&buf, 20)?;
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let width = buf.get_u32_le();
    let height = buf.get_u32_le();
    if width == 0 || height == 0 {
        return Err(DecodeError::Invalid("zero grid dimension"));
    }
    if width.checked_mul(height).is_none() {
        return Err(DecodeError::Invalid("grid dimensions overflow"));
    }
    let grid = Grid::new(width, height);
    let num_data = buf.get_u32_le() as usize;
    let num_windows = buf.get_u32_le() as usize;
    if num_windows == 0 {
        return Err(DecodeError::Invalid("zero windows"));
    }
    // Guard against decode bombs: every (datum, window) cell needs at
    // least a 4-byte length, so a header promising more cells than the
    // buffer could possibly hold is corrupt. This must run *before* any
    // size-derived allocation.
    let min_bytes = (num_data as u128) * (num_windows as u128) * 4;
    if min_bytes > buf.remaining() as u128 {
        return Err(DecodeError::Truncated);
    }

    let mut per_data = Vec::with_capacity(num_data);
    for _ in 0..num_data {
        let mut windows = Vec::with_capacity(num_windows);
        for _ in 0..num_windows {
            need(&buf, 4)?;
            let n = buf.get_u32_le() as usize;
            let mut w = WindowRefs::new();
            for _ in 0..n {
                need(&buf, 8)?;
                let proc = ProcId(buf.get_u32_le());
                let count = buf.get_u32_le();
                if proc.index() >= grid.num_procs() {
                    return Err(DecodeError::Invalid("processor id out of range"));
                }
                if count == 0 {
                    return Err(DecodeError::Invalid("zero reference count"));
                }
                w.add(proc, count);
            }
            windows.push(w);
        }
        per_data.push(windows);
    }
    Ok(WindowedTrace::from_parts(grid, per_data))
}

/// Convenience: size in bytes of the encoding of `trace`.
pub fn encoded_size(trace: &WindowedTrace) -> usize {
    let mut refs = 0usize;
    let mut windows = 0usize;
    for d in 0..trace.num_data() {
        let rs = trace.refs(DataId(d as u32));
        windows += rs.num_windows();
        refs += rs.windows().map(WindowRefs::num_procs).sum::<usize>();
    }
    4 + 4 + 16 + windows * 4 + refs * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowedTrace {
        let g = Grid::new(4, 4);
        WindowedTrace::from_parts(
            g,
            vec![
                vec![
                    WindowRefs::from_pairs([(ProcId(0), 2), (ProcId(7), 1)]),
                    WindowRefs::new(),
                ],
                vec![WindowRefs::new(), WindowRefs::from_pairs([(ProcId(15), 9)])],
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = encode_trace(&t);
        assert_eq!(bytes.len(), encoded_size(&t));
        let back = decode_trace(bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = BytesMut::from(&encode_trace(&sample())[..]);
        bytes[0] = b'X';
        assert_eq!(decode_trace(bytes.freeze()), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = BytesMut::from(&encode_trace(&sample())[..]);
        bytes[4] = 99;
        assert_eq!(
            decode_trace(bytes.freeze()),
            Err(DecodeError::BadVersion(99))
        );
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode_trace(&sample());
        for cut in [0, 3, 7, 12, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert_eq!(
                decode_trace(sliced),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_proc() {
        let g = Grid::new(2, 2);
        let t = WindowedTrace::from_parts(g, vec![vec![WindowRefs::from_pairs([(ProcId(3), 1)])]]);
        let mut raw = BytesMut::from(&encode_trace(&t)[..]);
        // patch the proc id (last 8 bytes are proc,count)
        let n = raw.len();
        raw[n - 8..n - 4].copy_from_slice(&20u32.to_le_bytes());
        assert_eq!(
            decode_trace(raw.freeze()),
            Err(DecodeError::Invalid("processor id out of range"))
        );
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DecodeError::BadMagic.to_string(),
            "not a PIM trace (bad magic)"
        );
        assert_eq!(DecodeError::Truncated.to_string(), "trace buffer truncated");
    }
}
