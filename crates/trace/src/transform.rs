//! Trace transformations.
//!
//! Utilities that derive new traces from existing ones without touching the
//! generators: scaling reference volumes (used by the movement-cost
//! ablation), restricting to a data subset (drill-down debugging),
//! remapping processors (evaluating a trace "as if" the iteration partition
//! had been different), and reversing window order.

use crate::ids::DataId;
use crate::window::{WindowRefs, WindowedTrace};
use pim_array::grid::ProcId;

/// Multiply every reference count by `k` (`k ≥ 1`). Scheduling costs scale
/// by exactly `k` on the reference side while movement stays constant —
/// the inverse knob to `move_weight`.
///
/// ```
/// use pim_array::grid::{Grid, ProcId};
/// use pim_trace::window::{WindowRefs, WindowedTrace};
/// use pim_trace::transform::scale_volumes;
///
/// let grid = Grid::new(2, 2);
/// let t = WindowedTrace::from_parts(
///     grid,
///     vec![vec![WindowRefs::from_pairs([(ProcId(1), 3)])]],
/// );
/// assert_eq!(scale_volumes(&t, 4).total_volume(), 12);
/// ```
///
/// # Panics
/// Panics when `k == 0` (would erase the trace).
pub fn scale_volumes(trace: &WindowedTrace, k: u32) -> WindowedTrace {
    assert!(k > 0, "scale factor must be positive");
    map_refs(trace, |proc, count| Some((proc, count * k)))
}

/// Keep only the data in `keep` (others become never-referenced so ids and
/// shapes stay stable).
pub fn restrict_data(trace: &WindowedTrace, keep: impl Fn(DataId) -> bool) -> WindowedTrace {
    let per_data = trace
        .iter_data()
        .map(|(d, rs)| {
            rs.windows()
                .map(|w| {
                    if keep(d) {
                        w.clone()
                    } else {
                        WindowRefs::new()
                    }
                })
                .collect()
        })
        .collect();
    WindowedTrace::from_parts(trace.grid(), per_data)
}

/// Remap every referencing processor through `f` (must stay in range).
pub fn remap_procs(trace: &WindowedTrace, f: impl Fn(ProcId) -> ProcId) -> WindowedTrace {
    map_refs(trace, |proc, count| Some((f(proc), count)))
}

/// Reverse the window order of the whole trace (the paper's benchmark 5
/// applies this at the step level; this is the windowed analogue).
pub fn reverse_windows(trace: &WindowedTrace) -> WindowedTrace {
    let per_data = trace
        .iter_data()
        .map(|(_, rs)| {
            let mut ws: Vec<WindowRefs> = rs.windows().cloned().collect();
            ws.reverse();
            ws
        })
        .collect();
    WindowedTrace::from_parts(trace.grid(), per_data)
}

/// Core plumbing: rebuild the trace mapping each `(proc, count)` pair.
fn map_refs(
    trace: &WindowedTrace,
    f: impl Fn(ProcId, u32) -> Option<(ProcId, u32)>,
) -> WindowedTrace {
    let per_data = trace
        .iter_data()
        .map(|(_, rs)| {
            rs.windows()
                .map(|w| WindowRefs::from_pairs(w.iter().filter_map(|r| f(r.proc, r.count))))
                .collect()
        })
        .collect();
    WindowedTrace::from_parts(trace.grid(), per_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;

    fn sample() -> WindowedTrace {
        let g = Grid::new(2, 2);
        WindowedTrace::from_parts(
            g,
            vec![
                vec![
                    WindowRefs::from_pairs([(ProcId(0), 2)]),
                    WindowRefs::from_pairs([(ProcId(3), 1)]),
                ],
                vec![WindowRefs::from_pairs([(ProcId(1), 5)]), WindowRefs::new()],
            ],
        )
    }

    #[test]
    fn scaling_multiplies_volume() {
        let t = sample();
        let s = scale_volumes(&t, 3);
        assert_eq!(s.total_volume(), t.total_volume() * 3);
        assert_eq!(s.refs(DataId(0)).window(0).volume_at(ProcId(0)), 6);
        assert_eq!(s.num_windows(), t.num_windows());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        scale_volumes(&sample(), 0);
    }

    #[test]
    fn restriction_keeps_shape() {
        let t = sample();
        let r = restrict_data(&t, |d| d == DataId(1));
        assert_eq!(r.num_data(), 2);
        assert!(r.refs(DataId(0)).is_never_referenced());
        assert_eq!(r.refs(DataId(1)).total_volume(), 5);
    }

    #[test]
    fn remap_transposes_grid() {
        let g = Grid::new(2, 2);
        let t = sample();
        // mirror across the main diagonal: (x,y) -> (y,x)
        let m = remap_procs(&t, |p| {
            let pt = g.point_of(p);
            g.proc_xy(pt.y, pt.x)
        });
        // ProcId(1) = (1,0) maps to (0,1) = ProcId(2)
        assert_eq!(m.refs(DataId(1)).window(0).volume_at(ProcId(2)), 5);
        assert_eq!(m.total_volume(), t.total_volume());
    }

    #[test]
    fn reverse_round_trips() {
        let t = sample();
        let r = reverse_windows(&t);
        assert_eq!(r.refs(DataId(0)).window(0).volume_at(ProcId(3)), 1);
        assert_eq!(reverse_windows(&r), t);
    }
}
