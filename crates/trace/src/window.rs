//! Windowed reference strings — the canonical scheduler input.
//!
//! * [`WindowRefs`] is the paper's *processor reference string with respect
//!   to a datum in one execution window*: the multiset of processors
//!   requiring that datum, stored as a sorted, aggregated `(proc, count)`
//!   list.
//! * [`DataRefString`] is one datum's reference string across all windows.
//! * [`WindowedTrace`] holds the full application: every datum's reference
//!   string over a common window sequence on one grid.

use crate::ids::DataId;
use pim_array::grid::{Grid, ProcId};
use serde::{Deserialize, Serialize};

/// One aggregated reference: `proc` requires the datum `count` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ref {
    /// The referencing processor.
    pub proc: ProcId,
    /// Total reference volume from that processor within the window.
    pub count: u32,
}

/// The processor reference string for one datum in one execution window:
/// sorted by processor id, aggregated (each processor appears at most once,
/// with positive count).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowRefs {
    refs: Vec<Ref>,
}

impl WindowRefs {
    /// Empty reference string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw `(proc, count)` pairs, aggregating duplicates and
    /// dropping zero counts.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ProcId, u32)>) -> Self {
        let mut w = WindowRefs::new();
        for (p, n) in pairs {
            w.add(p, n);
        }
        w
    }

    /// Add `count` references from `proc` (no-op when `count == 0`).
    pub fn add(&mut self, proc: ProcId, count: u32) {
        if count == 0 {
            return;
        }
        match self.refs.binary_search_by_key(&proc, |r| r.proc) {
            Ok(i) => self.refs[i].count += count,
            Err(i) => self.refs.insert(i, Ref { proc, count }),
        }
    }

    /// True when no processor references the datum in this window.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Number of *distinct* referencing processors.
    pub fn num_procs(&self) -> usize {
        self.refs.len()
    }

    /// Total reference volume (sum of counts).
    pub fn total_volume(&self) -> u64 {
        self.refs.iter().map(|r| r.count as u64).sum()
    }

    /// Volume contributed by a specific processor (0 when absent).
    pub fn volume_at(&self, proc: ProcId) -> u32 {
        self.refs
            .binary_search_by_key(&proc, |r| r.proc)
            .map(|i| self.refs[i].count)
            .unwrap_or(0)
    }

    /// Iterate the aggregated references in ascending processor order.
    pub fn iter(&self) -> impl Iterator<Item = Ref> + '_ {
        self.refs.iter().copied()
    }

    /// Merge another window's references into this one (used when grouping
    /// consecutive execution windows, Section 4 of the paper).
    pub fn merge(&mut self, other: &WindowRefs) {
        for r in other.iter() {
            self.add(r.proc, r.count);
        }
    }

    /// The union of several windows' references as one new string.
    pub fn merged<'a>(windows: impl IntoIterator<Item = &'a WindowRefs>) -> WindowRefs {
        let mut out = WindowRefs::new();
        for w in windows {
            out.merge(w);
        }
        out
    }
}

/// One datum's reference string across every execution window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataRefString {
    windows: Vec<WindowRefs>,
}

impl DataRefString {
    /// Build from per-window reference strings.
    pub fn new(windows: Vec<WindowRefs>) -> Self {
        assert!(
            !windows.is_empty(),
            "a reference string needs at least one window"
        );
        DataRefString { windows }
    }

    /// Number of execution windows.
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// The reference string in window `w`.
    pub fn window(&self, w: usize) -> &WindowRefs {
        &self.windows[w]
    }

    /// Iterate over all windows in order.
    pub fn windows(&self) -> impl Iterator<Item = &WindowRefs> {
        self.windows.iter()
    }

    /// All windows merged into one — what SCDS sees.
    pub fn merged_all(&self) -> WindowRefs {
        WindowRefs::merged(self.windows.iter())
    }

    /// Merge the half-open window range `lo..hi` into one string (grouping).
    pub fn merged_range(&self, lo: usize, hi: usize) -> WindowRefs {
        assert!(lo < hi && hi <= self.windows.len(), "bad range {lo}..{hi}");
        WindowRefs::merged(self.windows[lo..hi].iter())
    }

    /// Total reference volume across all windows.
    pub fn total_volume(&self) -> u64 {
        self.windows.iter().map(WindowRefs::total_volume).sum()
    }

    /// True when the datum is never referenced.
    pub fn is_never_referenced(&self) -> bool {
        self.windows.iter().all(WindowRefs::is_empty)
    }

    /// A new reference string whose windows are the merges given by
    /// `groups`, a partition of `0..num_windows` into consecutive,
    /// non-empty ranges. Used after Algorithm 3 decides a grouping.
    ///
    /// # Panics
    /// Panics if `groups` is not a partition into consecutive ranges.
    pub fn regrouped(&self, groups: &[core::ops::Range<usize>]) -> DataRefString {
        let mut expect = 0usize;
        let mut windows = Vec::with_capacity(groups.len());
        for g in groups {
            assert_eq!(g.start, expect, "groups must be consecutive");
            assert!(g.end > g.start, "groups must be non-empty");
            windows.push(self.merged_range(g.start, g.end));
            expect = g.end;
        }
        assert_eq!(expect, self.windows.len(), "groups must cover all windows");
        DataRefString::new(windows)
    }
}

/// The full windowed application trace: one [`DataRefString`] per datum,
/// all over the same window sequence on the same grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedTrace {
    grid: Grid,
    num_windows: usize,
    data: Vec<DataRefString>,
}

impl WindowedTrace {
    /// Assemble from per-datum, per-window reference strings. Every datum
    /// must have the same number of windows (at least one).
    pub fn from_parts(grid: Grid, per_data: Vec<Vec<WindowRefs>>) -> Self {
        let num_windows = per_data.first().map_or(1, Vec::len).max(1);
        let data: Vec<DataRefString> = per_data
            .into_iter()
            .map(|mut w| {
                if w.is_empty() {
                    w.push(WindowRefs::new());
                }
                assert_eq!(w.len(), num_windows, "ragged window counts");
                DataRefString::new(w)
            })
            .collect();
        WindowedTrace {
            grid,
            num_windows,
            data,
        }
    }

    /// The processor array this trace targets.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of execution windows (same for every datum).
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Number of data items.
    pub fn num_data(&self) -> usize {
        self.data.len()
    }

    /// Reference string of one datum.
    pub fn refs(&self, d: DataId) -> &DataRefString {
        &self.data[d.index()]
    }

    /// Iterate `(DataId, &DataRefString)` in ascending id order.
    pub fn iter_data(&self) -> impl Iterator<Item = (DataId, &DataRefString)> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, r)| (DataId(i as u32), r))
    }

    /// Total reference volume of the application.
    pub fn total_volume(&self) -> u64 {
        self.data.iter().map(DataRefString::total_volume).sum()
    }

    /// Merge adjacent windows so that `factor` consecutive windows become
    /// one (coarser windowing of the same trace). The last window absorbs
    /// any remainder.
    pub fn coarsen(&self, factor: usize) -> WindowedTrace {
        assert!(factor > 0, "coarsen factor must be positive");
        let nw = self.num_windows.div_ceil(factor).max(1);
        let per_data = self
            .data
            .iter()
            .map(|rs| {
                (0..nw)
                    .map(|w| {
                        let lo = w * factor;
                        let hi = ((w + 1) * factor).min(self.num_windows);
                        rs.merged_range(lo, hi)
                    })
                    .collect()
            })
            .collect();
        WindowedTrace::from_parts(self.grid, per_data)
    }

    /// Collapse the whole trace to a single window (what SCDS effectively
    /// schedules against).
    pub fn collapsed(&self) -> WindowedTrace {
        self.coarsen(self.num_windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn window_refs_aggregate_and_sort() {
        let w = WindowRefs::from_pairs([(ProcId(5), 2), (ProcId(1), 1), (ProcId(5), 3)]);
        let v: Vec<_> = w.iter().collect();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].proc, ProcId(1));
        assert_eq!(v[1].proc, ProcId(5));
        assert_eq!(w.volume_at(ProcId(5)), 5);
        assert_eq!(w.volume_at(ProcId(0)), 0);
        assert_eq!(w.total_volume(), 6);
        assert_eq!(w.num_procs(), 2);
    }

    #[test]
    fn zero_counts_dropped() {
        let w = WindowRefs::from_pairs([(ProcId(3), 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn merge_windows() {
        let a = WindowRefs::from_pairs([(ProcId(0), 1), (ProcId(2), 2)]);
        let b = WindowRefs::from_pairs([(ProcId(2), 3), (ProcId(4), 1)]);
        let m = WindowRefs::merged([&a, &b]);
        assert_eq!(m.volume_at(ProcId(2)), 5);
        assert_eq!(m.total_volume(), 7);
    }

    #[test]
    fn data_ref_string_ranges() {
        let rs = DataRefString::new(vec![
            WindowRefs::from_pairs([(ProcId(0), 1)]),
            WindowRefs::from_pairs([(ProcId(1), 2)]),
            WindowRefs::from_pairs([(ProcId(0), 4)]),
        ]);
        assert_eq!(rs.num_windows(), 3);
        assert_eq!(rs.total_volume(), 7);
        assert_eq!(rs.merged_all().volume_at(ProcId(0)), 5);
        assert_eq!(rs.merged_range(0, 2).total_volume(), 3);
        assert!(!rs.is_never_referenced());
    }

    #[test]
    fn regroup_partitions() {
        let rs = DataRefString::new(vec![
            WindowRefs::from_pairs([(ProcId(0), 1)]),
            WindowRefs::from_pairs([(ProcId(1), 1)]),
            WindowRefs::from_pairs([(ProcId(2), 1)]),
        ]);
        let grouped = rs.regrouped(&[0..2, 2..3]);
        assert_eq!(grouped.num_windows(), 2);
        assert_eq!(grouped.window(0).total_volume(), 2);
        assert_eq!(grouped.window(1).total_volume(), 1);
    }

    #[test]
    #[should_panic(expected = "cover all windows")]
    fn regroup_must_cover() {
        let rs = DataRefString::new(vec![WindowRefs::new(), WindowRefs::new()]);
        #[allow(clippy::single_range_in_vec_init)] // a one-range partition is the test's point
        rs.regrouped(&[0..1]);
    }

    #[test]
    fn windowed_trace_coarsen() {
        let per_data = vec![vec![
            WindowRefs::from_pairs([(ProcId(0), 1)]),
            WindowRefs::from_pairs([(ProcId(1), 1)]),
            WindowRefs::from_pairs([(ProcId(2), 1)]),
            WindowRefs::from_pairs([(ProcId(3), 1)]),
            WindowRefs::from_pairs([(ProcId(4), 1)]),
        ]];
        let t = WindowedTrace::from_parts(g(), per_data);
        let c = t.coarsen(2);
        assert_eq!(c.num_windows(), 3);
        assert_eq!(c.refs(DataId(0)).window(2).total_volume(), 1);
        let one = t.collapsed();
        assert_eq!(one.num_windows(), 1);
        assert_eq!(one.refs(DataId(0)).window(0).total_volume(), 5);
        assert_eq!(one.total_volume(), t.total_volume());
    }

    #[test]
    fn from_parts_pads_empty_data() {
        let t = WindowedTrace::from_parts(g(), vec![vec![]]);
        assert_eq!(t.num_windows(), 1);
        assert!(t.refs(DataId(0)).window(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_windows_panic() {
        WindowedTrace::from_parts(
            g(),
            vec![
                vec![WindowRefs::new()],
                vec![WindowRefs::new(), WindowRefs::new()],
            ],
        );
    }
}
