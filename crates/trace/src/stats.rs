//! Descriptive statistics over traces.
//!
//! The paper observes that data movement pays off "especially for the
//! benchmarks with complicated data reference patterns". These statistics
//! quantify "complicated": how many distinct processors touch a datum, how
//! spread-out they are, and how much the hot set shifts between windows.

use crate::ids::DataId;
use crate::window::{WindowRefs, WindowedTrace};
use pim_array::grid::Grid;
use serde::{Deserialize, Serialize};

/// Summary statistics of one windowed trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of data items.
    pub num_data: usize,
    /// Number of execution windows.
    pub num_windows: usize,
    /// Total reference volume.
    pub total_volume: u64,
    /// Number of data items never referenced at all.
    pub never_referenced: usize,
    /// Mean distinct referencing processors per (datum, window) with any
    /// references.
    pub mean_procs_per_window: f64,
    /// Mean spatial spread: average volume-weighted distance of a window's
    /// references from the window's volume centroid-nearest processor.
    pub mean_spread: f64,
    /// Mean inter-window drift: average distance between the weighted
    /// centroids of consecutive non-empty windows of the same datum. High
    /// drift is what makes multiple-center scheduling win.
    pub mean_drift: f64,
}

/// Volume-weighted centroid of a reference string in continuous grid
/// coordinates, or `None` when empty.
pub fn centroid(grid: &Grid, refs: &WindowRefs) -> Option<(f64, f64)> {
    let vol = refs.total_volume();
    if vol == 0 {
        return None;
    }
    let (mut sx, mut sy) = (0f64, 0f64);
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        sx += r.count as f64 * p.x as f64;
        sy += r.count as f64 * p.y as f64;
    }
    Some((sx / vol as f64, sy / vol as f64))
}

/// Mean volume-weighted L1 distance of references from the centroid.
pub fn spread(grid: &Grid, refs: &WindowRefs) -> f64 {
    let Some((cx, cy)) = centroid(grid, refs) else {
        return 0.0;
    };
    let vol = refs.total_volume() as f64;
    let mut acc = 0f64;
    for r in refs.iter() {
        let p = grid.point_of(r.proc);
        acc += r.count as f64 * ((p.x as f64 - cx).abs() + (p.y as f64 - cy).abs());
    }
    acc / vol
}

/// Compute [`TraceStats`] for a trace.
pub fn trace_stats(trace: &WindowedTrace) -> TraceStats {
    let grid = trace.grid();
    let mut never = 0usize;
    let mut windows_with_refs = 0u64;
    let mut procs_acc = 0u64;
    let mut spread_acc = 0f64;
    let mut drift_acc = 0f64;
    let mut drift_n = 0u64;

    for (_, rs) in trace.iter_data() {
        if rs.is_never_referenced() {
            never += 1;
            continue;
        }
        let mut prev_centroid: Option<(f64, f64)> = None;
        for w in rs.windows() {
            if w.is_empty() {
                continue;
            }
            windows_with_refs += 1;
            procs_acc += w.num_procs() as u64;
            spread_acc += spread(&grid, w);
            let c = centroid(&grid, w).expect("non-empty window has centroid");
            if let Some(pc) = prev_centroid {
                drift_acc += (c.0 - pc.0).abs() + (c.1 - pc.1).abs();
                drift_n += 1;
            }
            prev_centroid = Some(c);
        }
    }

    TraceStats {
        num_data: trace.num_data(),
        num_windows: trace.num_windows(),
        total_volume: trace.total_volume(),
        never_referenced: never,
        mean_procs_per_window: if windows_with_refs > 0 {
            procs_acc as f64 / windows_with_refs as f64
        } else {
            0.0
        },
        mean_spread: if windows_with_refs > 0 {
            spread_acc / windows_with_refs as f64
        } else {
            0.0
        },
        mean_drift: if drift_n > 0 {
            drift_acc / drift_n as f64
        } else {
            0.0
        },
    }
}

/// Per-datum reference volume histogram (index = datum id).
pub fn volume_per_data(trace: &WindowedTrace) -> Vec<u64> {
    trace.iter_data().map(|(_, rs)| rs.total_volume()).collect()
}

/// Per-window total reference volume (the application's activity series).
pub fn volume_per_window(trace: &WindowedTrace) -> Vec<u64> {
    let mut out = vec![0u64; trace.num_windows()];
    for (_, rs) in trace.iter_data() {
        for (w, refs) in rs.windows().enumerate() {
            out[w] += refs.total_volume();
        }
    }
    out
}

/// Shannon entropy (bits) of the per-datum volume distribution. Low
/// entropy = a few hot data dominate (the regime where good placement of
/// a handful of items wins); the maximum is `log2(num_data)` for a
/// perfectly uniform trace.
pub fn volume_entropy(trace: &WindowedTrace) -> f64 {
    let vols = volume_per_data(trace);
    let total: u64 = vols.iter().sum();
    if total == 0 {
        return 0.0;
    }
    -vols
        .iter()
        .filter(|&&v| v > 0)
        .map(|&v| {
            let p = v as f64 / total as f64;
            p * p.log2()
        })
        .sum::<f64>()
}

/// Gini coefficient of the per-datum volume distribution: 0 = perfectly
/// uniform, → 1 = all references on one datum.
pub fn volume_gini(trace: &WindowedTrace) -> f64 {
    let mut vols = volume_per_data(trace);
    let total: u64 = vols.iter().sum();
    let n = vols.len();
    if total == 0 || n == 0 {
        return 0.0;
    }
    vols.sort_unstable();
    // Gini = (2·Σ i·x_i) / (n·Σ x) − (n + 1)/n  with 1-based ranks i
    let weighted: u128 = vols
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u128 + 1) * v as u128)
        .sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// The most referenced datum and its volume, or `None` for an empty trace.
pub fn hottest_data(trace: &WindowedTrace) -> Option<(DataId, u64)> {
    trace
        .iter_data()
        .map(|(d, rs)| (d, rs.total_volume()))
        .max_by_key(|&(_, v)| v)
        .filter(|&(_, v)| v > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowRefs;
    use pim_array::grid::ProcId;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn centroid_weighted() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(2, 0), 1)]);
        assert_eq!(centroid(&grid, &refs), Some((1.0, 0.0)));
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3), (grid.proc_xy(2, 0), 1)]);
        assert_eq!(centroid(&grid, &refs), Some((0.5, 0.0)));
        assert_eq!(centroid(&grid, &WindowRefs::new()), None);
    }

    #[test]
    fn spread_zero_for_point_mass() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(2, 2), 9)]);
        assert_eq!(spread(&grid, &refs), 0.0);
        assert_eq!(spread(&grid, &WindowRefs::new()), 0.0);
    }

    #[test]
    fn stats_on_small_trace() {
        let grid = g();
        let per_data = vec![
            vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 0), 1)]),
            ],
            vec![WindowRefs::new(), WindowRefs::new()],
        ];
        let t = WindowedTrace::from_parts(grid, per_data);
        let s = trace_stats(&t);
        assert_eq!(s.num_data, 2);
        assert_eq!(s.num_windows, 2);
        assert_eq!(s.total_volume, 2);
        assert_eq!(s.never_referenced, 1);
        assert_eq!(s.mean_procs_per_window, 1.0);
        assert_eq!(s.mean_spread, 0.0);
        assert_eq!(s.mean_drift, 3.0); // centroid moved (0,0) -> (3,0)
    }

    #[test]
    fn hottest_and_histogram() {
        let grid = g();
        let per_data = vec![
            vec![WindowRefs::from_pairs([(ProcId(0), 2)])],
            vec![WindowRefs::from_pairs([(ProcId(1), 7)])],
            vec![WindowRefs::new()],
        ];
        let t = WindowedTrace::from_parts(grid, per_data);
        assert_eq!(volume_per_data(&t), vec![2, 7, 0]);
        assert_eq!(hottest_data(&t), Some((DataId(1), 7)));
    }

    #[test]
    fn activity_series() {
        let grid = g();
        let per_data = vec![
            vec![
                WindowRefs::from_pairs([(ProcId(0), 2)]),
                WindowRefs::from_pairs([(ProcId(1), 1)]),
            ],
            vec![WindowRefs::from_pairs([(ProcId(2), 3)]), WindowRefs::new()],
        ];
        let t = WindowedTrace::from_parts(grid, per_data);
        assert_eq!(volume_per_window(&t), vec![5, 1]);
    }

    #[test]
    fn entropy_bounds() {
        let grid = g();
        // uniform over 4 data → entropy = 2 bits
        let uniform = WindowedTrace::from_parts(
            grid,
            (0..4)
                .map(|i| vec![WindowRefs::from_pairs([(ProcId(i), 5)])])
                .collect(),
        );
        assert!((volume_entropy(&uniform) - 2.0).abs() < 1e-9);
        // one hot datum → entropy 0
        let hot = WindowedTrace::from_parts(
            grid,
            vec![
                vec![WindowRefs::from_pairs([(ProcId(0), 9)])],
                vec![WindowRefs::new()],
            ],
        );
        assert_eq!(volume_entropy(&hot), 0.0);
        // empty trace → 0
        let empty = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]]);
        assert_eq!(volume_entropy(&empty), 0.0);
    }

    #[test]
    fn gini_bounds() {
        let grid = g();
        let uniform = WindowedTrace::from_parts(
            grid,
            (0..4)
                .map(|i| vec![WindowRefs::from_pairs([(ProcId(i), 5)])])
                .collect(),
        );
        assert!(volume_gini(&uniform).abs() < 1e-9);
        let skewed = WindowedTrace::from_parts(
            grid,
            vec![
                vec![WindowRefs::from_pairs([(ProcId(0), 100)])],
                vec![WindowRefs::new()],
                vec![WindowRefs::new()],
                vec![WindowRefs::new()],
            ],
        );
        // one of four data holds everything → Gini = (n−1)/n = 0.75
        assert!((volume_gini(&skewed) - 0.75).abs() < 1e-9);
        let empty = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]]);
        assert_eq!(volume_gini(&empty), 0.0);
    }

    #[test]
    fn hottest_none_when_empty() {
        let t = WindowedTrace::from_parts(g(), vec![vec![WindowRefs::new()]]);
        assert_eq!(hottest_data(&t), None);
        let s = trace_stats(&t);
        assert_eq!(s.mean_drift, 0.0);
        assert_eq!(s.mean_procs_per_window, 0.0);
    }
}
