//! Raw per-step access traces.
//!
//! Workload kernels emit a sequence of *execution steps*; each step records
//! which processor touched which datum, and how many times. Steps are later
//! bucketed into execution windows ([`crate::window`]), which is the
//! granularity the paper's schedulers operate at.

use crate::ids::DataId;
use crate::window::{WindowRefs, WindowedTrace};
use pim_array::grid::{Grid, ProcId};
use serde::{Deserialize, Serialize};

/// One access: processor `proc` references datum `data` `count` times
/// during a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// The referencing processor.
    pub proc: ProcId,
    /// The referenced datum.
    pub data: DataId,
    /// Number of references (data volume in the paper's cost model).
    pub count: u32,
}

/// One parallel execution step: the accesses all processors perform during
/// it. Order within a step carries no meaning (the paper's model charges
/// per-reference distance, not latency).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStep {
    /// Accesses performed in this step.
    pub accesses: Vec<Access>,
}

impl ExecStep {
    /// Total reference volume in this step.
    pub fn total_refs(&self) -> u64 {
        self.accesses.iter().map(|a| a.count as u64).sum()
    }
}

/// A complete raw trace: the machine it ran on, the number of distinct data
/// items, and the step sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepTrace {
    /// The processor array the trace was collected on.
    pub grid: Grid,
    /// Number of distinct data items; all `DataId`s are `< num_data`.
    pub num_data: u32,
    /// The execution steps in program order.
    pub steps: Vec<ExecStep>,
}

impl StepTrace {
    /// An empty trace for `grid` over `num_data` data items.
    pub fn empty(grid: Grid, num_data: u32) -> Self {
        StepTrace {
            grid,
            num_data,
            steps: Vec::new(),
        }
    }

    /// Number of execution steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total reference volume across all steps.
    pub fn total_refs(&self) -> u64 {
        self.steps.iter().map(ExecStep::total_refs).sum()
    }

    /// Bucket steps into execution windows of `steps_per_window` consecutive
    /// steps each (the last window may be shorter). This is the windowing
    /// used throughout the paper's experiments; `steps_per_window` is the
    /// window-size knob studied in Section 4.
    ///
    /// # Panics
    /// Panics if `steps_per_window == 0`.
    pub fn window_fixed(&self, steps_per_window: usize) -> WindowedTrace {
        assert!(steps_per_window > 0, "window size must be positive");
        let num_windows = self.steps.len().div_ceil(steps_per_window).max(1);
        self.window_by(
            |step_idx| (step_idx / steps_per_window).min(num_windows - 1),
            num_windows,
        )
    }

    /// Bucket steps into windows with an arbitrary assignment
    /// `step index → window index`. Window indices must cover
    /// `0..num_windows` monotonically (non-decreasing), matching the
    /// paper's definition of windows as *consecutive* step groups.
    ///
    /// # Panics
    /// Panics if the assignment is non-monotone or out of range.
    pub fn window_by(&self, assign: impl Fn(usize) -> usize, num_windows: usize) -> WindowedTrace {
        assert!(num_windows > 0, "need at least one window");
        let mut per_data: Vec<Vec<WindowRefs>> =
            vec![vec![WindowRefs::default(); num_windows]; self.num_data as usize];
        let mut prev_w = 0usize;
        for (i, step) in self.steps.iter().enumerate() {
            let w = assign(i);
            assert!(w < num_windows, "window index {w} out of range");
            assert!(w >= prev_w, "window assignment must be monotone");
            prev_w = w;
            for a in &step.accesses {
                assert!(
                    a.data.index() < self.num_data as usize,
                    "datum {} out of range",
                    a.data
                );
                per_data[a.data.index()][w].add(a.proc, a.count);
            }
        }
        WindowedTrace::from_parts(self.grid, per_data)
    }

    /// Concatenate another trace after this one (the paper's combined
    /// benchmarks, e.g. "benchmark 1 and CODE"). Both traces must target
    /// the same grid; the datum id spaces are assumed shared (the combined
    /// program operates on the same arrays).
    ///
    /// # Panics
    /// Panics if the grids differ.
    pub fn concat(mut self, other: &StepTrace) -> StepTrace {
        assert_eq!(
            self.grid, other.grid,
            "cannot concat traces from different grids"
        );
        self.num_data = self.num_data.max(other.num_data);
        self.steps.extend(other.steps.iter().cloned());
        self
    }

    /// The same trace with steps in reverse program order (used by the
    /// paper's benchmark 5: "CODE and the code in the reverse execution
    /// order of the CODE").
    pub fn reversed(&self) -> StepTrace {
        StepTrace {
            grid: self.grid,
            num_data: self.num_data,
            steps: self.steps.iter().rev().cloned().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    fn mk(accs: &[(u32, u32, u32)]) -> ExecStep {
        ExecStep {
            accesses: accs
                .iter()
                .map(|&(p, d, n)| Access {
                    proc: ProcId(p),
                    data: DataId(d),
                    count: n,
                })
                .collect(),
        }
    }

    #[test]
    fn totals() {
        let t = StepTrace {
            grid: g(),
            num_data: 2,
            steps: vec![mk(&[(0, 0, 2), (1, 1, 3)]), mk(&[(2, 0, 1)])],
        };
        assert_eq!(t.num_steps(), 2);
        assert_eq!(t.total_refs(), 6);
        assert_eq!(t.steps[0].total_refs(), 5);
    }

    #[test]
    fn fixed_windowing_buckets_steps() {
        let t = StepTrace {
            grid: g(),
            num_data: 1,
            steps: vec![
                mk(&[(0, 0, 1)]),
                mk(&[(1, 0, 1)]),
                mk(&[(2, 0, 1)]),
                mk(&[(3, 0, 1)]),
                mk(&[(4, 0, 1)]),
            ],
        };
        let w = t.window_fixed(2);
        assert_eq!(w.num_windows(), 3);
        let rs = w.refs(DataId(0));
        assert_eq!(rs.window(0).total_volume(), 2);
        assert_eq!(rs.window(1).total_volume(), 2);
        assert_eq!(rs.window(2).total_volume(), 1);
    }

    #[test]
    fn windowing_aggregates_duplicate_procs() {
        let t = StepTrace {
            grid: g(),
            num_data: 1,
            steps: vec![mk(&[(5, 0, 2)]), mk(&[(5, 0, 3)])],
        };
        let w = t.window_fixed(2);
        let refs = w.refs(DataId(0)).window(0);
        assert_eq!(refs.iter().count(), 1);
        assert_eq!(refs.volume_at(ProcId(5)), 5);
    }

    #[test]
    fn empty_trace_yields_one_empty_window() {
        let t = StepTrace::empty(g(), 3);
        let w = t.window_fixed(4);
        assert_eq!(w.num_windows(), 1);
        assert_eq!(w.num_data(), 3);
        assert!(w.refs(DataId(1)).window(0).is_empty());
    }

    #[test]
    fn concat_and_reverse() {
        let a = StepTrace {
            grid: g(),
            num_data: 1,
            steps: vec![mk(&[(0, 0, 1)])],
        };
        let b = StepTrace {
            grid: g(),
            num_data: 2,
            steps: vec![mk(&[(1, 1, 1)]), mk(&[(2, 0, 1)])],
        };
        let c = a.clone().concat(&b);
        assert_eq!(c.num_steps(), 3);
        assert_eq!(c.num_data, 2);
        let r = c.reversed();
        assert_eq!(r.steps[0], mk(&[(2, 0, 1)]));
        assert_eq!(r.steps[2], mk(&[(0, 0, 1)]));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_size_panics() {
        StepTrace::empty(g(), 1).window_fixed(0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_assignment_panics() {
        let t = StepTrace {
            grid: g(),
            num_data: 1,
            steps: vec![mk(&[(0, 0, 1)]), mk(&[(1, 0, 1)])],
        };
        t.window_by(|i| 1 - i, 2);
    }

    #[test]
    #[should_panic(expected = "different grids")]
    fn concat_grid_mismatch_panics() {
        let a = StepTrace::empty(Grid::new(4, 4), 1);
        let b = StepTrace::empty(Grid::new(2, 2), 1);
        let _ = a.concat(&b);
    }
}
