#![warn(missing_docs)]
//! # pim-trace
//!
//! Execution traces for PIM data scheduling.
//!
//! The paper drives its algorithms from *reference strings* rather than
//! loop-dependence analysis: for every datum, the sequence of processors
//! that touch it, bucketed into *execution windows* (groups of consecutive
//! parallel execution steps). This crate owns that data model:
//!
//! * [`ids`] — dense datum identifiers.
//! * [`step`] — raw per-step access traces as emitted by workload kernels.
//! * [`window`] — windowed (bucketed) reference strings: the canonical
//!   scheduler input, plus re-windowing utilities for window-size studies.
//! * [`flat`] — flat structure-of-arrays (CSR) trace layout for big
//!   instances, plus a streaming text loader and the [`flat::FlatView`]
//!   accessor trait every flat scheduler consumes.
//! * [`binfmt`] — versioned little-endian binary container (`.pimb`) for
//!   flat traces: whole-file encode/decode plus a zero-copy memory-mapped
//!   view, with checksum and structural validation.
//! * [`edit`] — churn deltas over a flat trace: per-datum overlay spans,
//!   dirty tracking, and a trace version for incremental rescheduling.
//! * [`dag`] — optional task precedence DAGs over a trace's windows
//!   (validated ownership partition + JSON round-trip).
//! * [`json`] — the shared hand-rolled JSON parser and string escaper
//!   behind every JSON surface (DAG files, churn deltas, `pim-serve`
//!   requests); the vendored serde shim has no serializer.
//! * [`builder`] — ergonomic trace construction.
//! * [`stats`] — descriptive statistics (reference locality, spread).
//! * [`encode`] — compact binary encoding (magic + version framing) for
//!   storing traces on disk.
//! * [`validate`] — structural invariants checked at crate boundaries.
//!
//! ## Example
//!
//! ```
//! use pim_array::grid::Grid;
//! use pim_trace::builder::TraceBuilder;
//! use pim_trace::ids::DataId;
//!
//! let grid = Grid::new(4, 4);
//! let mut b = TraceBuilder::new(grid, 2);
//! b.step().access(grid.proc_xy(0, 0), DataId(0));
//! b.step().access(grid.proc_xy(3, 3), DataId(0)).access_n(grid.proc_xy(1, 2), DataId(1), 4);
//! let trace = b.finish();
//! let windowed = trace.window_fixed(1); // one step per window
//! assert_eq!(windowed.num_windows(), 2);
//! ```

pub mod adaptive;
pub mod binfmt;
pub mod builder;
pub mod dag;
pub mod edit;
pub mod encode;
pub mod flat;
pub mod ids;
pub mod json;
pub mod perproc;
pub mod stats;
pub mod step;
pub mod transform;
pub mod validate;
pub mod window;

pub use binfmt::{BinError, BinTrace};
pub use builder::TraceBuilder;
pub use dag::{DagError, Task, TaskDag};
pub use edit::{DeltaJsonError, DirtyKind, DirtySummary, EditOp, EditableTrace, TraceDelta};
pub use flat::{FlatRecord, FlatRef, FlatTrace, FlatTraceError, FlatView};
pub use ids::DataId;
pub use step::{Access, ExecStep, StepTrace};
pub use window::{DataRefString, Ref, WindowRefs, WindowedTrace};
