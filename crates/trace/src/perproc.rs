//! Per-processor data reference strings — the paper's Definition 2.
//!
//! The scheduler-facing view ([`crate::window`]) is datum-major; this
//! module provides the transposed, processor-major view: for each
//! processor and window, which data it references and how often. It backs
//! locality diagnostics (what fraction of a processor's references its own
//! memory could serve) and the per-processor working-set statistics used
//! when sizing local memories.

use crate::ids::DataId;
use crate::window::WindowedTrace;
use pim_array::grid::ProcId;
use serde::{Deserialize, Serialize};

/// One processor's references within one window: sorted, aggregated
/// `(datum, count)` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcWindowRefs {
    refs: Vec<(DataId, u32)>,
}

impl ProcWindowRefs {
    /// Number of distinct data referenced.
    pub fn num_data(&self) -> usize {
        self.refs.len()
    }

    /// Total reference volume.
    pub fn total_volume(&self) -> u64 {
        self.refs.iter().map(|&(_, n)| n as u64).sum()
    }

    /// Volume for one datum (0 when absent).
    pub fn volume_of(&self, d: DataId) -> u32 {
        self.refs
            .binary_search_by_key(&d, |&(x, _)| x)
            .map(|i| self.refs[i].1)
            .unwrap_or(0)
    }

    /// Iterate `(datum, count)` in ascending datum order.
    pub fn iter(&self) -> impl Iterator<Item = (DataId, u32)> + '_ {
        self.refs.iter().copied()
    }

    fn add(&mut self, d: DataId, n: u32) {
        match self.refs.binary_search_by_key(&d, |&(x, _)| x) {
            Ok(i) => self.refs[i].1 += n,
            Err(i) => self.refs.insert(i, (d, n)),
        }
    }
}

/// The processor-major view of a windowed trace.
///
/// ```
/// use pim_array::grid::{Grid, ProcId};
/// use pim_trace::ids::DataId;
/// use pim_trace::perproc::ProcView;
/// use pim_trace::window::{WindowRefs, WindowedTrace};
///
/// let grid = Grid::new(2, 2);
/// let trace = WindowedTrace::from_parts(
///     grid,
///     vec![vec![WindowRefs::from_pairs([(ProcId(2), 5)])]],
/// );
/// let view = ProcView::build(&trace);
/// assert_eq!(view.refs(ProcId(2), 0).volume_of(DataId(0)), 5);
/// assert_eq!(view.proc_volume(ProcId(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcView {
    num_windows: usize,
    /// `per_proc[p][w]`.
    per_proc: Vec<Vec<ProcWindowRefs>>,
}

impl ProcView {
    /// Transpose a windowed trace into the processor-major view.
    pub fn build(trace: &WindowedTrace) -> Self {
        let nprocs = trace.grid().num_procs();
        let nw = trace.num_windows();
        let mut per_proc = vec![vec![ProcWindowRefs::default(); nw]; nprocs];
        for (d, rs) in trace.iter_data() {
            for (w, refs) in rs.windows().enumerate() {
                for r in refs.iter() {
                    per_proc[r.proc.index()][w].add(d, r.count);
                }
            }
        }
        ProcView {
            num_windows: nw,
            per_proc,
        }
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// One processor's references in one window.
    pub fn refs(&self, p: ProcId, w: usize) -> &ProcWindowRefs {
        &self.per_proc[p.index()][w]
    }

    /// A processor's total reference volume across the run.
    pub fn proc_volume(&self, p: ProcId) -> u64 {
        self.per_proc[p.index()]
            .iter()
            .map(ProcWindowRefs::total_volume)
            .sum()
    }

    /// The largest per-window working set (distinct data) of any processor
    /// — a lower bound on the local memory each processor needs to serve
    /// all of its *own* references locally.
    pub fn max_working_set(&self) -> usize {
        self.per_proc
            .iter()
            .flatten()
            .map(ProcWindowRefs::num_data)
            .max()
            .unwrap_or(0)
    }

    /// Volume-weighted load imbalance: the busiest processor's volume over
    /// the mean (1.0 = even).
    pub fn load_imbalance(&self) -> f64 {
        let vols: Vec<u64> = (0..self.per_proc.len())
            .map(|i| self.proc_volume(ProcId(i as u32)))
            .collect();
        let total: u64 = vols.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / vols.len() as f64;
        *vols.iter().max().expect("non-empty") as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{WindowRefs, WindowedTrace};
    use pim_array::grid::Grid;

    fn sample() -> WindowedTrace {
        let g = Grid::new(2, 2);
        WindowedTrace::from_parts(
            g,
            vec![
                vec![
                    WindowRefs::from_pairs([(ProcId(0), 2), (ProcId(3), 1)]),
                    WindowRefs::from_pairs([(ProcId(0), 1)]),
                ],
                vec![WindowRefs::from_pairs([(ProcId(0), 4)]), WindowRefs::new()],
            ],
        )
    }

    #[test]
    fn transpose_is_consistent() {
        let t = sample();
        let v = ProcView::build(&t);
        assert_eq!(v.num_windows(), 2);
        // proc 0, window 0: datum 0 ×2 and datum 1 ×4
        let r = v.refs(ProcId(0), 0);
        assert_eq!(r.num_data(), 2);
        assert_eq!(r.volume_of(DataId(0)), 2);
        assert_eq!(r.volume_of(DataId(1)), 4);
        assert_eq!(r.total_volume(), 6);
        // proc 3, window 0: datum 0 only
        assert_eq!(v.refs(ProcId(3), 0).volume_of(DataId(0)), 1);
        assert_eq!(v.refs(ProcId(3), 0).volume_of(DataId(1)), 0);
        // total volume preserved
        let total: u64 = (0..4).map(|p| v.proc_volume(ProcId(p))).sum();
        assert_eq!(total, t.total_volume());
    }

    #[test]
    fn working_set_and_imbalance() {
        let t = sample();
        let v = ProcView::build(&t);
        assert_eq!(v.max_working_set(), 2);
        // proc 0 carries 7 of 8 volume units
        assert!(v.load_imbalance() > 3.0);
    }

    #[test]
    fn empty_trace() {
        let g = Grid::new(2, 2);
        let t = WindowedTrace::from_parts(g, vec![vec![WindowRefs::new()]]);
        let v = ProcView::build(&t);
        assert_eq!(v.max_working_set(), 0);
        assert_eq!(v.load_imbalance(), 0.0);
        assert_eq!(v.refs(ProcId(1), 0).iter().count(), 0);
    }
}
