//! Human-readable schedule explanations.
//!
//! A schedule is a matrix of processor ids — opaque when debugging why a
//! cost went up. [`explain_data`] narrates one datum's life: where it
//! lives in each window, what each window's references cost from there,
//! what each move cost, and how far the window sat from its local optimum.
//! [`summarize`] aggregates the whole schedule into the handful of numbers
//! a person actually scans. Both back the CLI's `explain` output.

use crate::cost::{cost_at, optimal_center};
use crate::schedule::Schedule;
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;

/// One window of a datum's story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowExplanation {
    /// Window index.
    pub window: usize,
    /// Where the datum lives.
    pub center: (u32, u32),
    /// Reference cost served from there.
    pub reference_cost: u64,
    /// Cost of the move *into* this window (0 for window 0 or no move).
    pub move_cost: u64,
    /// How much cheaper the window's local optimal center would have been
    /// (0 = the schedule sits on the local optimum).
    pub regret: u64,
}

/// Narrate one datum's schedule.
pub fn explain_data(
    trace: &WindowedTrace,
    schedule: &Schedule,
    d: DataId,
) -> Vec<WindowExplanation> {
    let grid = trace.grid();
    let rs = trace.refs(d);
    let mut out = Vec::with_capacity(rs.num_windows());
    for (w, refs) in rs.windows().enumerate() {
        let center = schedule.center(d, w);
        let reference_cost = cost_at(&grid, refs, center);
        let move_cost = if w == 0 {
            0
        } else {
            grid.dist(schedule.center(d, w - 1), center)
        };
        let regret = if refs.is_empty() {
            0
        } else {
            reference_cost - optimal_center(&grid, refs).1
        };
        let p = grid.point_of(center);
        out.push(WindowExplanation {
            window: w,
            center: (p.x, p.y),
            reference_cost,
            move_cost,
            regret,
        });
    }
    out
}

/// Render one datum's explanation as text.
pub fn render_data(trace: &WindowedTrace, schedule: &Schedule, d: DataId) -> String {
    let mut out = format!("{d}:\n");
    for e in explain_data(trace, schedule, d) {
        out.push_str(&format!(
            "  w{:<3} at ({},{})  ref {:<5} move {:<4}{}\n",
            e.window,
            e.center.0,
            e.center.1,
            e.reference_cost,
            e.move_cost,
            if e.regret > 0 {
                format!(" (local optimum would save {})", e.regret)
            } else {
                String::new()
            }
        ));
    }
    out
}

/// Whole-schedule summary numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleSummary {
    /// Total cost.
    pub total: u64,
    /// Total movement component.
    pub movement: u64,
    /// Number of moves.
    pub moves: u64,
    /// Sum of per-window regrets (distance from per-window optima); zero
    /// for LOMCDS by construction, positive when movement-awareness traded
    /// local optimality away.
    pub total_regret: u64,
    /// The datum with the highest individual cost.
    pub costliest_data: DataId,
    /// That datum's cost.
    pub costliest_cost: u64,
}

/// Summarize a schedule against its trace.
pub fn summarize(trace: &WindowedTrace, schedule: &Schedule) -> ScheduleSummary {
    let cost = schedule.evaluate(trace);
    let mut total_regret = 0u64;
    let mut worst = (DataId(0), 0u64);
    for d in 0..trace.num_data() {
        let d = DataId(d as u32);
        let per = schedule.evaluate_data(trace, d).total();
        if per > worst.1 {
            worst = (d, per);
        }
        for e in explain_data(trace, schedule, d) {
            total_regret += e.regret;
        }
    }
    ScheduleSummary {
        total: cost.total(),
        movement: cost.movement,
        moves: schedule.num_moves(),
        total_regret,
        costliest_data: worst.0,
        costliest_cost: worst.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, MemoryPolicy, Method};
    use pim_array::grid::Grid;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn sample() -> WindowedTrace {
        let grid = Grid::new(4, 4);
        WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 5)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 0), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 5)]),
            ]],
        )
    }

    #[test]
    fn gomcds_trades_regret_for_movement() {
        let trace = sample();
        let s = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
        let story = explain_data(&trace, &s, DataId(0));
        // GOMCDS stays at (0,0): window 1 has regret 3, no moves anywhere
        assert_eq!(story[0].regret, 0);
        assert_eq!(story[1].regret, 3);
        assert_eq!(story.iter().map(|e| e.move_cost).sum::<u64>(), 0);
        let sum = summarize(&trace, &s);
        assert_eq!(sum.total_regret, 3);
        assert_eq!(sum.moves, 0);
        assert_eq!(sum.costliest_data, DataId(0));
        assert_eq!(sum.costliest_cost, sum.total);
    }

    #[test]
    fn lomcds_has_zero_regret() {
        let trace = sample();
        let s = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);
        let sum = summarize(&trace, &s);
        assert_eq!(sum.total_regret, 0, "LOMCDS sits on every local optimum");
        assert!(sum.moves > 0);
    }

    #[test]
    fn explanation_costs_reconcile_with_evaluate() {
        let trace = sample();
        for m in [Method::Scds, Method::Lomcds, Method::Gomcds] {
            let s = schedule(m, &trace, MemoryPolicy::Unbounded);
            let story = explain_data(&trace, &s, DataId(0));
            let total: u64 = story.iter().map(|e| e.reference_cost + e.move_cost).sum();
            assert_eq!(total, s.evaluate(&trace).total(), "{m}");
        }
    }

    #[test]
    fn render_shows_moves_and_regret() {
        let trace = sample();
        let s = schedule(Method::Lomcds, &trace, MemoryPolicy::Unbounded);
        let text = render_data(&trace, &s, DataId(0));
        assert!(text.contains("D0:"));
        assert!(text.contains("w0"));
        assert!(text.contains("(0,0)"));
        let s2 = schedule(Method::Gomcds, &trace, MemoryPolicy::Unbounded);
        let text2 = render_data(&trace, &s2, DataId(0));
        assert!(text2.contains("local optimum would save 3"));
    }
}
