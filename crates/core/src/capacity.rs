//! The paper's *processor list* mechanism for memory-constrained placement.
//!
//! > "the process list is constructed for each data, containing a list of
//! > processors. It is sorted in the ascending order of the communication
//! > cost computed by assuming the data are assigned to each processor.
//! > ... Assign data i to the first available processor in the processor
//! > list."
//!
//! Ties are broken by ascending processor id, which makes every scheduler
//! in this crate deterministic.

use crate::cost::cost_table;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::MemoryMap;
use pim_trace::window::WindowRefs;

/// Processors sorted by ascending placement cost for one datum (ties by
/// ascending id). Index 0 is the optimal center.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessorList {
    procs: Vec<ProcId>,
    costs: Vec<u64>,
}

impl ProcessorList {
    /// Build the list for a reference string.
    pub fn build(grid: &Grid, refs: &WindowRefs) -> Self {
        let mut costs = Vec::new();
        cost_table(grid, refs, &mut costs);
        Self::from_cost_table(&costs)
    }

    /// Build from a precomputed cost table (`table[p] = cost at p`).
    pub fn from_cost_table(table: &[u64]) -> Self {
        let mut procs: Vec<ProcId> = (0..table.len() as u32).map(ProcId).collect();
        procs.sort_by_key(|p| (table[p.index()], p.0));
        let costs = procs.iter().map(|p| table[p.index()]).collect();
        ProcessorList { procs, costs }
    }

    /// The optimal (first) processor.
    pub fn best(&self) -> ProcId {
        self.procs[0]
    }

    /// Number of processors in the list (always the full grid).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// Whether the list is empty (never true for a valid grid).
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Iterate `(proc, cost)` in ascending cost order.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, u64)> + '_ {
        self.procs.iter().copied().zip(self.costs.iter().copied())
    }

    /// The first processor in the list with free memory; the paper's
    /// "first available processor". Returns `None` only when *every*
    /// processor is full.
    pub fn first_available(&self, mem: &MemoryMap) -> Option<ProcId> {
        self.procs.iter().copied().find(|&p| mem.has_room(p))
    }

    /// First available processor, also claiming its slot.
    pub fn assign(&self, mem: &mut MemoryMap) -> Option<ProcId> {
        self.assign_ranked(mem).map(|(p, _)| p)
    }

    /// Like [`assign`](ProcessorList::assign), but also reports the
    /// chosen processor's rank in the list — the datum's *capacity
    /// displacement*: 0 means it landed on [`best`](ProcessorList::best),
    /// `k` means the `k` cheaper processors were all full.
    pub fn assign_ranked(&self, mem: &mut MemoryMap) -> Option<(ProcId, usize)> {
        let (rank, &p) = self
            .procs
            .iter()
            .enumerate()
            .find(|&(_, &p)| mem.has_room(p))?;
        mem.allocate(p).ok()?;
        Some((p, rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::memory::MemorySpec;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn list_is_sorted_by_cost_then_id() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(1, 1), 1)]);
        let list = ProcessorList::build(&grid, &refs);
        assert_eq!(list.best(), grid.proc_xy(1, 1));
        assert_eq!(list.len(), 16);
        let pairs: Vec<_> = list.iter().collect();
        // non-decreasing cost
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
            if w[0].1 == w[1].1 {
                assert!(w[0].0 .0 < w[1].0 .0, "ties broken by id");
            }
        }
        // distance-1 neighbours come right after the center
        assert_eq!(pairs[1].1, 1);
        assert_eq!(pairs[4].1, 1);
        assert_eq!(pairs[5].1, 2);
    }

    #[test]
    fn first_available_skips_full() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]);
        let list = ProcessorList::build(&grid, &refs);
        let mut mem = MemoryMap::new(&grid, MemorySpec::uniform(1));
        assert_eq!(list.assign(&mut mem), Some(grid.proc_xy(0, 0)));
        // optimal now full; next cheapest is a distance-1 neighbour with
        // the lowest id: (1,0) has id 1, (0,1) has id 4.
        assert_eq!(list.assign(&mut mem), Some(grid.proc_xy(1, 0)));
        assert_eq!(list.assign(&mut mem), Some(grid.proc_xy(0, 1)));
    }

    #[test]
    fn none_when_everything_full() {
        let grid = Grid::new(2, 1);
        let list = ProcessorList::build(&grid, &WindowRefs::new());
        let mut mem = MemoryMap::new(&grid, MemorySpec::uniform(1));
        assert!(list.assign(&mut mem).is_some());
        assert!(list.assign(&mut mem).is_some());
        assert_eq!(list.assign(&mut mem), None);
    }

    #[test]
    fn assign_ranked_reports_displacement() {
        let grid = g();
        let refs = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]);
        let list = ProcessorList::build(&grid, &refs);
        let mut mem = MemoryMap::new(&grid, MemorySpec::uniform(1));
        assert_eq!(list.assign_ranked(&mut mem), Some((grid.proc_xy(0, 0), 0)));
        // The optimal center is full now: next datum lands one rank down.
        assert_eq!(list.assign_ranked(&mut mem), Some((grid.proc_xy(1, 0), 1)));
        assert_eq!(list.assign_ranked(&mut mem), Some((grid.proc_xy(0, 1), 2)));
    }

    #[test]
    fn from_cost_table_direct() {
        let list = ProcessorList::from_cost_table(&[5, 2, 2, 9]);
        let order: Vec<u32> = list.iter().map(|(p, _)| p.0).collect();
        assert_eq!(order, vec![1, 2, 0, 3]);
        assert!(!list.is_empty());
    }
}
