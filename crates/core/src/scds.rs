//! Single-Center Data Scheduling (paper Algorithm 1).
//!
//! All execution windows are merged into one; each datum gets the single
//! center minimizing its total reference cost, and never moves. Memory
//! conflicts are resolved with the processor list (first available
//! processor in ascending cost order), processing data in ascending id
//! order — the paper's "foreach data i do".

use crate::cache::CostCache;
use crate::capacity::ProcessorList;
use crate::cost::cost_table;
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;

/// Compute the SCDS schedule.
///
/// # Panics
/// Panics if the total memory of the array cannot hold one copy of every
/// datum (`spec.capacity_per_proc × num_procs < num_data`). Use the
/// [`crate::Run`] pipeline (or [`scds_schedule_cached`]) for a typed
/// [`SchedError`] instead.
pub fn scds_schedule(trace: &WindowedTrace, spec: MemorySpec) -> Schedule {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    scds_schedule_cached(trace, spec, &cache, &mut ws).unwrap_or_else(|e| panic!("{e}"))
}

/// [`scds_schedule`] served from a shared per-trace cost cache: each
/// datum's merged-window cost table is a single whole-execution range
/// query — one pass over the raw references straight into the axis
/// projections, with no merged list materialized and no prefix-table
/// build (the cache stays lazy for this single-query-per-datum shape).
///
/// Returns [`SchedError::CapacityExhausted`] when the memory spec cannot
/// hold every datum.
pub fn scds_schedule_cached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    cache: &CostCache,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    ensure_feasible(&grid, spec, trace.num_data())?;
    let metrics = ws.metrics.clone();
    let mut mem = MemoryMap::new(&grid, spec);
    let mut placement = Vec::with_capacity(trace.num_data());
    for d in 0..trace.num_data() {
        cache
            .datum(DataId(d as u32))
            .full_table(&mut ws.axes, &mut ws.table);
        let list = ProcessorList::from_cost_table(&ws.table);
        let (p, rank) = list
            .assign_ranked(&mut mem)
            .ok_or_else(|| exhausted(DataId(d as u32), None))?;
        metrics.record_placement(rank);
        placement.push(p);
    }
    Ok(Schedule::static_placement(
        grid,
        placement,
        trace.num_windows(),
    ))
}

/// Two-phase parallel SCDS, bit-identical to the sequential
/// [`scds_schedule_cached`]: phase 1 derives every datum's merged-window
/// processor list in parallel (pure); phase 2 replays the ascending-id
/// capacity assignment sequentially over those lists — the same lists in
/// the same order give the same placement as the sequential run.
pub fn scds_schedule_parallel(
    trace: &WindowedTrace,
    spec: MemorySpec,
    cache: &CostCache<'_>,
    pool: pim_par::Pool,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    ensure_feasible(&grid, spec, trace.num_data())?;
    let metrics = ws.metrics.clone();
    let ids: Vec<_> = trace.iter_data().map(|(d, _)| d).collect();
    let lists = {
        let _t = metrics.phase("SCDS/phase1-lists");
        pim_par::parallel_map_with_chunked(
            pool,
            &ids,
            pim_par::auto_chunk(ids.len(), pool.threads()),
            Workspace::new,
            |ws, _, &d| {
                cache.datum(d).full_table(&mut ws.axes, &mut ws.table);
                ProcessorList::from_cost_table(&ws.table)
            },
        )
    };
    let _t = metrics.phase("SCDS/phase2-replay");
    let mut mem = MemoryMap::new(&grid, spec);
    let mut placement = Vec::with_capacity(lists.len());
    for (i, list) in lists.iter().enumerate() {
        let (p, rank) = list
            .assign_ranked(&mut mem)
            .ok_or_else(|| exhausted(DataId(i as u32), None))?;
        metrics.record_placement(rank);
        placement.push(p);
    }
    Ok(Schedule::static_placement(
        grid,
        placement,
        trace.num_windows(),
    ))
}

/// Pre-cache reference implementation (merges each reference string and
/// runs [`cost_table`] directly). Bit-identical to [`scds_schedule`];
/// kept for the equivalence property tests and benches.
pub fn scds_schedule_uncached(
    trace: &WindowedTrace,
    spec: MemorySpec,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    ensure_feasible(&grid, spec, trace.num_data())?;
    let mut mem = MemoryMap::new(&grid, spec);
    let mut table = Vec::new();
    let mut placement = Vec::with_capacity(trace.num_data());
    for (d, rs) in trace.iter_data() {
        let merged = rs.merged_all();
        cost_table(&grid, &merged, &mut table);
        let list = ProcessorList::from_cost_table(&table);
        let p = list.assign(&mut mem).ok_or_else(|| exhausted(d, None))?;
        placement.push(p);
    }
    Ok(Schedule::static_placement(
        grid,
        placement,
        trace.num_windows(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::Grid;
    use pim_trace::ids::DataId;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn single_datum_goes_to_merged_median() {
        let grid = g();
        // window 0: heavy at (0,0); window 1: light at (3,3)
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
            ]],
        );
        let s = scds_schedule(&trace, MemorySpec::unbounded());
        assert_eq!(s.center(DataId(0), 0), grid.proc_xy(0, 0));
        assert_eq!(s.center(DataId(0), 1), grid.proc_xy(0, 0));
        assert!(!s.has_movement());
        assert_eq!(s.evaluate(&trace).total(), 6);
    }

    #[test]
    fn capacity_spills_to_next_cheapest() {
        let grid = g();
        // two data both want (1,1)
        let refs = || vec![WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)])];
        let trace = WindowedTrace::from_parts(grid, vec![refs(), refs()]);
        let s = scds_schedule(&trace, MemorySpec::uniform(1));
        assert_eq!(s.center(DataId(0), 0), grid.proc_xy(1, 1));
        // datum 1 spills to the distance-1 neighbour with lowest id: (1,0)
        assert_eq!(s.center(DataId(1), 0), grid.proc_xy(1, 0));
        assert_eq!(s.max_occupancy(), 1);
    }

    #[test]
    fn unreferenced_data_parks_deterministically() {
        let grid = g();
        let trace =
            WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()], vec![WindowRefs::new()]]);
        let s = scds_schedule(&trace, MemorySpec::uniform(1));
        // zero cost everywhere → list sorted by id → data scatter over
        // lowest-id processors
        assert_eq!(s.center(DataId(0), 0), grid.proc_xy(0, 0));
        assert_eq!(s.center(DataId(1), 0), grid.proc_xy(1, 0));
        assert_eq!(s.evaluate(&trace).total(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn infeasible_capacity_panics() {
        let grid = Grid::new(2, 1);
        let trace = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]; 3]);
        scds_schedule(&trace, MemorySpec::uniform(1));
    }

    #[test]
    fn infeasible_capacity_errors_through_cached_entry() {
        let grid = Grid::new(2, 1);
        let trace = WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]; 3]);
        let cache = CostCache::build(&trace);
        let mut ws = Workspace::new();
        let err = scds_schedule_cached(&trace, MemorySpec::uniform(1), &cache, &mut ws)
            .expect_err("3 data cannot fit 2 slots");
        assert!(matches!(err, SchedError::CapacityExhausted { .. }));
    }
}
