//! Local-Optimal Multiple-Center Data Scheduling.
//!
//! Each execution window is optimized in isolation: the datum sits at the
//! window's local optimal center (Algorithm 1 applied per window), moving
//! between windows at run time. Movement cost is *not* considered when
//! choosing centers — that is exactly the weakness GOMCDS fixes.
//!
//! The paper does not specify where a datum lives during windows that never
//! reference it; this implementation keeps it where it already is (zero
//! movement, zero reference cost — no other choice does better), and for
//! empty *leading* windows places it at the first referenced window's
//! center so no pre-use move is needed.

use crate::cache::{CostCache, DatumCostCache};
use crate::capacity::ProcessorList;
use crate::cost::{cost_table, optimal_center};
use crate::error::{ensure_feasible, exhausted, SchedError};
use crate::schedule::Schedule;
use crate::workspace::Workspace;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowedTrace};

/// The unconstrained LOMCDS center sequence for one datum: the local
/// optimal center of every window, with empty windows resolved by
/// carry-forward (and backward fill for leading empties).
pub fn lomcds_centers_unconstrained(grid: &Grid, rs: &DataRefString) -> Vec<ProcId> {
    let nw = rs.num_windows();
    let mut centers: Vec<Option<ProcId>> = vec![None; nw];
    for (w, refs) in rs.windows().enumerate() {
        if !refs.is_empty() {
            centers[w] = Some(optimal_center(grid, refs).0);
        }
    }
    resolve_gaps(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// [`lomcds_centers_unconstrained`] served from a per-datum cost cache and
/// reusable workspace — no reference-string walks, no allocation once warm
/// (beyond the returned vector).
pub fn lomcds_centers_unconstrained_cached(
    cache: &DatumCostCache,
    ws: &mut Workspace,
) -> Vec<ProcId> {
    let nw = cache.num_windows();
    let mut centers: Vec<Option<ProcId>> = vec![None; nw];
    for (w, slot) in centers.iter_mut().enumerate() {
        if !cache.range_is_empty(w, w + 1) {
            *slot = Some(
                cache
                    .optimal_center_range(w, w + 1, &mut ws.axes, &mut ws.table)
                    .0,
            );
        }
    }
    resolve_gaps(&mut centers);
    centers
        .into_iter()
        .map(|c| c.unwrap_or(ProcId(0)))
        .collect()
}

/// Fill `None` slots: carry the previous center forward; leading `None`s
/// take the first known center. All-`None` stays `None` (caller defaults).
pub(crate) fn resolve_gaps_pub(centers: &mut [Option<ProcId>]) {
    resolve_gaps(centers)
}

fn resolve_gaps(centers: &mut [Option<ProcId>]) {
    let first_known = centers.iter().flatten().next().copied();
    let mut prev = first_known;
    for slot in centers.iter_mut() {
        match slot {
            Some(c) => prev = Some(*c),
            None => *slot = prev,
        }
    }
}

/// Compute the LOMCDS schedule under a memory capacity.
///
/// Capacity conflicts are resolved per window in ascending datum order with
/// the processor list: a referenced window falls back through ascending
/// reference cost; an unreferenced window falls back through ascending
/// distance from its anchor (previous actual center), keeping movement
/// minimal.
///
/// # Panics
/// Panics if the array's total memory cannot hold every datum. Use the
/// [`crate::Run`] pipeline (or [`lomcds_schedule_cached`]) for a typed
/// [`SchedError`] instead.
pub fn lomcds_schedule(trace: &WindowedTrace, spec: MemorySpec) -> Schedule {
    let cache = CostCache::build(trace);
    let mut ws = Workspace::new();
    lomcds_schedule_cached(trace, spec, &cache, &mut ws).unwrap_or_else(|e| panic!("{e}"))
}

/// [`lomcds_schedule`] served from a shared per-trace cost cache. Each
/// window is queried once here; the cache serves the first single-window
/// table per datum raw and builds the datum's prefix tables on the second
/// (see `cache.rs`' repeat-customer threshold), so window sweeps over
/// dense strings run in `O(width + height)` per window.
///
/// The capacity loop only ever consults the unconstrained center sequence
/// at window 0 (later windows anchor on the *actual* previous center), and
/// `desired[0]` is by the gap-resolution rule the first referenced
/// window's local center — so only that first anchor is computed per
/// datum, not the full sequence the pre-cache path derives.
pub fn lomcds_schedule_cached(
    trace: &WindowedTrace,
    spec: MemorySpec,
    cache: &CostCache,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let anchors: Vec<ProcId> = (0..trace.num_data())
        .map(|d| first_anchor(cache.datum(DataId(d as u32)), ws))
        .collect();
    lomcds_assign(trace.grid(), trace.num_windows(), spec, cache, ws, &anchors)
}

/// Two-phase parallel LOMCDS, bit-identical to the sequential
/// [`lomcds_schedule_cached`]: phase 1 computes every datum's
/// first anchor in parallel (pure); phase 2 is the unchanged
/// window-major sequential capacity replay.
pub fn lomcds_schedule_parallel(
    trace: &WindowedTrace,
    spec: MemorySpec,
    cache: &CostCache<'_>,
    pool: pim_par::Pool,
    ws: &mut Workspace,
) -> Result<Schedule, SchedError> {
    let metrics = ws.metrics.clone();
    let ids: Vec<_> = trace.iter_data().map(|(d, _)| d).collect();
    let anchors = {
        let _t = metrics.phase("LOMCDS/phase1-anchors");
        pim_par::parallel_map_with_chunked(
            pool,
            &ids,
            pim_par::auto_chunk(ids.len(), pool.threads()),
            Workspace::new,
            |w, _, &d| first_anchor(cache.datum(d), w),
        )
    };
    let _t = metrics.phase("LOMCDS/phase2-replay");
    lomcds_assign(trace.grid(), trace.num_windows(), spec, cache, ws, &anchors)
}

/// The anchor a datum uses at window 0: the local optimal center of its
/// first referenced window (`P0` when it is never referenced) — exactly
/// `lomcds_centers_unconstrained[0]`, since gap resolution backfills
/// leading empties with the first known center.
pub(crate) fn first_anchor(cache: &DatumCostCache, ws: &mut Workspace) -> ProcId {
    for w in 0..cache.num_windows() {
        if !cache.range_is_empty(w, w + 1) {
            return cache
                .optimal_center_range(w, w + 1, &mut ws.axes, &mut ws.table)
                .0;
        }
    }
    ProcId(0)
}

/// Window-major capacity assignment shared by the sequential, two-phase
/// parallel, and flat-trace cached paths. Takes the grid and window count
/// directly so any trace representation backing `cache` can drive it.
pub(crate) fn lomcds_assign(
    grid: Grid,
    nw: usize,
    spec: MemorySpec,
    cache: &CostCache,
    ws: &mut Workspace,
    anchors: &[ProcId],
) -> Result<Schedule, SchedError> {
    lomcds_assign_observed(grid, nw, spec, cache, ws, anchors, &mut |_, _, _| {})
}

/// [`lomcds_assign`] with an observer: `observe(d, w, rank0)` fires once
/// per placement, `rank0` meaning the datum landed on its *unconstrained*
/// desired processor (window median when referenced, anchor when not).
/// The incremental engine's fallback replay records these flags to decide
/// whether future edits may be patched in place; `lomcds_assign` delegates
/// here with a no-op observer so both paths are the same code.
pub(crate) fn lomcds_assign_observed(
    grid: Grid,
    nw: usize,
    spec: MemorySpec,
    cache: &CostCache,
    ws: &mut Workspace,
    anchors: &[ProcId],
    observe: &mut dyn FnMut(DataId, usize, bool),
) -> Result<Schedule, SchedError> {
    let nd = cache.num_data();
    ensure_feasible(&grid, spec, nd)?;
    let metrics = ws.metrics.clone();

    let mut centers = vec![vec![ProcId(0); nw]; nd];
    for w in 0..nw {
        let mut mem = MemoryMap::new(&grid, spec);
        for d in 0..nd {
            let dc = cache.datum(DataId(d as u32));
            let anchor = if w == 0 {
                anchors[d]
            } else {
                centers[d][w - 1]
            };
            let p = if dc.range_is_empty(w, w + 1) {
                let p = nearest_free(&grid, anchor, &mut mem)
                    .ok_or_else(|| exhausted(DataId(d as u32), Some(w)))?;
                observe(DataId(d as u32), w, p == anchor);
                p
            } else {
                // Median-first: the window's weighted-median center is the
                // head of its processor list (lowest-id argmin), so when it
                // still has room `assign_ranked` would return it at rank 0
                // — skip building and sorting the full table. Only a full
                // median (capacity conflict) pays for the list.
                let m = dc.range_median(w, w + 1, &mut ws.axes);
                if mem.has_room(m) {
                    mem.allocate(m)
                        .map_err(|_| exhausted(DataId(d as u32), Some(w)))?;
                    metrics.record_placement(0);
                    observe(DataId(d as u32), w, true);
                    m
                } else {
                    dc.window_table(w, &mut ws.axes, &mut ws.table);
                    let (p, rank) = ProcessorList::from_cost_table(&ws.table)
                        .assign_ranked(&mut mem)
                        .ok_or_else(|| exhausted(DataId(d as u32), Some(w)))?;
                    metrics.record_placement(rank);
                    observe(DataId(d as u32), w, rank == 0);
                    p
                }
            };
            centers[d][w] = p;
        }
    }
    Ok(Schedule::new(grid, centers))
}

/// Pre-cache reference implementation of [`lomcds_schedule`] — walks every
/// window's reference list directly. Bit-identical; kept for the
/// equivalence property tests and benches.
pub fn lomcds_schedule_uncached(
    trace: &WindowedTrace,
    spec: MemorySpec,
) -> Result<Schedule, SchedError> {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    ensure_feasible(&grid, spec, nd)?;

    let desired: Vec<Vec<ProcId>> = (0..nd)
        .map(|d| lomcds_centers_unconstrained(&grid, trace.refs(DataId(d as u32))))
        .collect();

    let mut centers = vec![vec![ProcId(0); nw]; nd];
    let mut table = Vec::new();
    for w in 0..nw {
        let mut mem = MemoryMap::new(&grid, spec);
        for d in 0..nd {
            let refs = trace.refs(DataId(d as u32)).window(w);
            let anchor = if w == 0 {
                desired[d][0]
            } else {
                centers[d][w - 1]
            };
            let p = if refs.is_empty() {
                nearest_free(&grid, anchor, &mut mem)
                    .ok_or_else(|| exhausted(DataId(d as u32), Some(w)))?
            } else {
                cost_table(&grid, refs, &mut table);
                ProcessorList::from_cost_table(&table)
                    .assign(&mut mem)
                    .ok_or_else(|| exhausted(DataId(d as u32), Some(w)))?
            };
            centers[d][w] = p;
        }
    }
    Ok(Schedule::new(grid, centers))
}

/// Claim the free processor nearest to `anchor` (ties by ascending id);
/// `None` when every processor is full.
pub(crate) fn nearest_free(grid: &Grid, anchor: ProcId, mem: &mut MemoryMap) -> Option<ProcId> {
    // The anchor is the unique distance-0 candidate, so when it has room
    // the full (distance, id)-minimum scan below could only return it —
    // answer in O(1). Carry-forward keeps most anchors stable, making this
    // the common case on big instances.
    if mem.has_room(anchor) {
        mem.allocate(anchor).ok()?;
        return Some(anchor);
    }
    let a = grid.point_of(anchor);
    let p = grid
        .procs()
        .filter(|&p| mem.has_room(p))
        .min_by_key(|&p| (grid.point_of(p).l1_dist(a), p.0))?;
    mem.allocate(p).ok()?;
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::window::WindowRefs;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn centers_follow_each_window() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
            ]],
        );
        let s = lomcds_schedule(&trace, MemorySpec::unbounded());
        assert_eq!(s.center(DataId(0), 0), grid.proc_xy(0, 0));
        assert_eq!(s.center(DataId(0), 1), grid.proc_xy(3, 3));
        // ref cost 0, movement 6
        let cost = s.evaluate(&trace);
        assert_eq!(cost.reference, 0);
        assert_eq!(cost.movement, 6);
    }

    #[test]
    fn empty_windows_carry_forward() {
        let grid = g();
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::new(),
                WindowRefs::from_pairs([(grid.proc_xy(2, 2), 1)]),
                WindowRefs::new(),
                WindowRefs::from_pairs([(grid.proc_xy(3, 0), 1)]),
            ]],
        );
        let s = lomcds_schedule(&trace, MemorySpec::unbounded());
        let cs = s.centers_of(DataId(0));
        // leading empty anchors on first referenced center → no pre-move
        assert_eq!(cs[0], grid.proc_xy(2, 2));
        assert_eq!(cs[1], grid.proc_xy(2, 2));
        // trailing empty between refs stays put
        assert_eq!(cs[2], grid.proc_xy(2, 2));
        assert_eq!(cs[3], grid.proc_xy(3, 0));
        assert_eq!(s.evaluate(&trace).movement, 3);
    }

    #[test]
    fn capacity_conflict_in_window_spills() {
        let grid = g();
        let want = |p| vec![WindowRefs::from_pairs([(p, 1)])];
        let trace = WindowedTrace::from_parts(
            grid,
            vec![want(grid.proc_xy(2, 2)), want(grid.proc_xy(2, 2))],
        );
        let s = lomcds_schedule(&trace, MemorySpec::uniform(1));
        assert_eq!(s.center(DataId(0), 0), grid.proc_xy(2, 2));
        assert_ne!(s.center(DataId(1), 0), grid.proc_xy(2, 2));
        // spill lands at distance 1
        assert_eq!(grid.dist(s.center(DataId(1), 0), grid.proc_xy(2, 2)), 1);
        assert_eq!(s.max_occupancy(), 1);
    }

    #[test]
    fn resolve_gaps_behaviour() {
        let mut v = vec![None, Some(ProcId(3)), None, Some(ProcId(5)), None];
        resolve_gaps(&mut v);
        assert_eq!(
            v,
            vec![
                Some(ProcId(3)),
                Some(ProcId(3)),
                Some(ProcId(3)),
                Some(ProcId(5)),
                Some(ProcId(5))
            ]
        );
        let mut all_none: Vec<Option<ProcId>> = vec![None, None];
        resolve_gaps(&mut all_none);
        assert_eq!(all_none, vec![None, None]);
    }

    #[test]
    fn never_referenced_datum_costs_nothing() {
        let grid = g();
        let trace =
            WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new(), WindowRefs::new()]]);
        let s = lomcds_schedule(&trace, MemorySpec::unbounded());
        assert_eq!(s.evaluate(&trace).total(), 0);
        assert!(!s.has_movement());
    }
}
