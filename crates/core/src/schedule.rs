//! Schedules and their evaluation.
//!
//! A [`Schedule`] records, for every datum, its center (storage processor)
//! in every execution window. Evaluation charges:
//!
//! * **reference cost** — for each window, each reference's volume times
//!   the distance from the window's center to the referencing processor;
//! * **movement cost** — the distance between centers of consecutive
//!   windows (one unit volume per datum per move, per the paper's model of
//!   one copy of each datum).
//!
//! Initial placement (the center of window 0) is free: it happens during
//! the pre-execution distribution phase.

use crate::cost::cost_at;
use pim_array::grid::{Grid, ProcId};
use pim_trace::ids::DataId;
use pim_trace::window::WindowedTrace;
use serde::{Deserialize, Serialize};

/// Total communication cost split into its two components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Volume-weighted reference traffic.
    pub reference: u64,
    /// Inter-window data movement traffic.
    pub movement: u64,
}

impl CostBreakdown {
    /// Reference plus movement.
    pub fn total(&self) -> u64 {
        self.reference + self.movement
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: CostBreakdown) {
        self.reference += other.reference;
        self.movement += other.movement;
    }
}

impl core::fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} (ref {}, move {})",
            self.total(),
            self.reference,
            self.movement
        )
    }
}

/// A complete data schedule: `centers[d][w]` is the storage processor of
/// datum `d` during window `w`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    grid: Grid,
    centers: Vec<Vec<ProcId>>,
}

impl Schedule {
    /// Build from per-datum center sequences. Every datum must have the
    /// same (positive) number of windows.
    pub fn new(grid: Grid, centers: Vec<Vec<ProcId>>) -> Self {
        let nw = centers.first().map_or(0, Vec::len);
        assert!(nw > 0 || centers.is_empty(), "schedules need ≥1 window");
        assert!(
            centers.iter().all(|c| c.len() == nw),
            "ragged center sequences"
        );
        Schedule { grid, centers }
    }

    /// A static schedule: datum `d` stays at `placement[d]` in all
    /// `num_windows` windows (baselines, SCDS).
    pub fn static_placement(grid: Grid, placement: Vec<ProcId>, num_windows: usize) -> Self {
        assert!(num_windows > 0, "schedules need ≥1 window");
        let centers = placement
            .into_iter()
            .map(|p| vec![p; num_windows])
            .collect();
        Schedule { grid, centers }
    }

    /// The grid this schedule targets.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of data items.
    pub fn num_data(&self) -> usize {
        self.centers.len()
    }

    /// Number of execution windows.
    pub fn num_windows(&self) -> usize {
        self.centers.first().map_or(0, Vec::len)
    }

    /// Center of datum `d` in window `w`.
    pub fn center(&self, d: DataId, w: usize) -> ProcId {
        self.centers[d.index()][w]
    }

    /// Full center sequence of one datum.
    pub fn centers_of(&self, d: DataId) -> &[ProcId] {
        &self.centers[d.index()]
    }

    /// Replace datum `d`'s full center sequence (incremental re-solves).
    ///
    /// # Panics
    /// Panics when `row.len()` differs from the schedule's window count.
    pub fn set_row(&mut self, d: DataId, row: Vec<ProcId>) {
        assert_eq!(row.len(), self.num_windows(), "row length mismatch");
        self.centers[d.index()] = row;
    }

    /// Overwrite datum `d`'s whole row with one center, in place — the
    /// static-placement shape, without [`set_row`](Self::set_row)'s
    /// per-call allocation (churn rewrites thousands of rows per tick).
    pub fn fill_row(&mut self, d: DataId, center: ProcId) {
        self.centers[d.index()].fill(center);
    }

    /// Grow every datum by one window that repeats its last center — the
    /// unconstrained optimum for a window with no references (staying put
    /// adds zero cost; see the append-extension argument in DESIGN.md §12).
    pub fn append_window_repeat_last(&mut self) {
        for cs in &mut self.centers {
            let last = *cs.last().expect("schedules have ≥1 window");
            cs.push(last);
        }
    }

    /// Whether the schedule ever moves a datum between windows.
    pub fn has_movement(&self) -> bool {
        self.centers
            .iter()
            .any(|cs| cs.windows(2).any(|w| w[0] != w[1]))
    }

    /// Number of individual data moves across the whole execution.
    pub fn num_moves(&self) -> u64 {
        self.centers
            .iter()
            .map(|cs| cs.windows(2).filter(|w| w[0] != w[1]).count() as u64)
            .sum()
    }

    /// Evaluate one datum's cost against its reference string.
    pub fn evaluate_data(&self, trace: &WindowedTrace, d: DataId) -> CostBreakdown {
        self.evaluate_data_weighted(trace, d, 1)
    }

    /// Like [`Self::evaluate_data`] with `move_weight` charged per hop of
    /// movement (the datum's transfer volume; the paper's model is 1).
    pub fn evaluate_data_weighted(
        &self,
        trace: &WindowedTrace,
        d: DataId,
        move_weight: u64,
    ) -> CostBreakdown {
        let refs = trace.refs(d);
        let centers = &self.centers[d.index()];
        assert_eq!(
            refs.num_windows(),
            centers.len(),
            "schedule/trace window mismatch for {d}"
        );
        let mut cost = CostBreakdown::default();
        for (w, window_refs) in refs.windows().enumerate() {
            cost.reference += cost_at(&self.grid, window_refs, centers[w]);
        }
        for pair in centers.windows(2) {
            cost.movement += move_weight * self.grid.dist(pair[0], pair[1]);
        }
        cost
    }

    /// Evaluate with a per-datum movement volume (`volumes[d]` = units
    /// moved per hop when datum `d` migrates) — the paper's "weighted by
    /// the data volume transferred" with heterogeneous data sizes.
    ///
    /// # Panics
    /// Panics when `volumes.len() != num_data` or shapes mismatch.
    pub fn evaluate_volumes(&self, trace: &WindowedTrace, volumes: &[u64]) -> CostBreakdown {
        assert_eq!(trace.grid(), self.grid, "schedule/trace grid mismatch");
        assert_eq!(trace.num_data(), self.num_data(), "data count mismatch");
        assert_eq!(volumes.len(), self.num_data(), "volumes length mismatch");
        let mut total = CostBreakdown::default();
        for d in 0..self.num_data() {
            total.add(self.evaluate_data_weighted(trace, DataId(d as u32), volumes[d]));
        }
        total
    }

    /// Evaluate the whole schedule charging `move_weight` per movement hop.
    pub fn evaluate_weighted(&self, trace: &WindowedTrace, move_weight: u64) -> CostBreakdown {
        assert_eq!(trace.grid(), self.grid, "schedule/trace grid mismatch");
        assert_eq!(trace.num_data(), self.num_data(), "data count mismatch");
        let mut total = CostBreakdown::default();
        for d in 0..self.num_data() {
            total.add(self.evaluate_data_weighted(trace, DataId(d as u32), move_weight));
        }
        total
    }

    /// Evaluate the whole schedule against a trace.
    ///
    /// # Panics
    /// Panics if the trace shape (data count, window count, grid) does not
    /// match the schedule.
    pub fn evaluate(&self, trace: &WindowedTrace) -> CostBreakdown {
        self.evaluate_weighted(trace, 1)
    }

    /// Per-window occupancy: `out[w][p]` = number of data stored on `p`
    /// during window `w`. Used to verify capacity compliance.
    pub fn occupancy(&self) -> Vec<Vec<u32>> {
        let nw = self.num_windows();
        let mut occ = vec![vec![0u32; self.grid.num_procs()]; nw];
        for cs in &self.centers {
            for (w, p) in cs.iter().enumerate() {
                occ[w][p.index()] += 1;
            }
        }
        occ
    }

    /// The highest per-processor occupancy over all windows.
    pub fn max_occupancy(&self) -> u32 {
        self.occupancy()
            .iter()
            .flat_map(|w| w.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Percentage improvement of `ours` over `baseline` (the paper's `%`
/// columns): `(baseline − ours) / baseline × 100`, or 0 when the baseline
/// is free.
pub fn improvement_pct(baseline: u64, ours: u64) -> f64 {
    if baseline == 0 {
        0.0
    } else {
        (baseline as f64 - ours as f64) / baseline as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    fn two_window_trace(grid: Grid) -> WindowedTrace {
        WindowedTrace::from_parts(
            grid,
            vec![vec![
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
            ]],
        )
    }

    #[test]
    fn static_schedule_costs() {
        let grid = g();
        let trace = two_window_trace(grid);
        let s = Schedule::static_placement(grid, vec![grid.proc_xy(0, 0)], 2);
        let cost = s.evaluate(&trace);
        assert_eq!(cost.reference, 6);
        assert_eq!(cost.movement, 0);
        assert_eq!(cost.total(), 6);
        assert!(!s.has_movement());
        assert_eq!(s.num_moves(), 0);
    }

    #[test]
    fn moving_schedule_costs() {
        let grid = g();
        let trace = two_window_trace(grid);
        let s = Schedule::new(grid, vec![vec![grid.proc_xy(0, 0), grid.proc_xy(3, 3)]]);
        let cost = s.evaluate(&trace);
        assert_eq!(cost.reference, 0);
        assert_eq!(cost.movement, 6);
        assert!(s.has_movement());
        assert_eq!(s.num_moves(), 1);
    }

    #[test]
    fn occupancy_counts() {
        let grid = g();
        let s = Schedule::new(
            grid,
            vec![
                vec![ProcId(0), ProcId(1)],
                vec![ProcId(0), ProcId(1)],
                vec![ProcId(5), ProcId(1)],
            ],
        );
        let occ = s.occupancy();
        assert_eq!(occ[0][0], 2);
        assert_eq!(occ[0][5], 1);
        assert_eq!(occ[1][1], 3);
        assert_eq!(s.max_occupancy(), 3);
    }

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100, 70), 30.0);
        assert_eq!(improvement_pct(0, 5), 0.0);
        assert!(improvement_pct(50, 60) < 0.0);
    }

    #[test]
    fn breakdown_display_and_add() {
        let mut a = CostBreakdown {
            reference: 10,
            movement: 2,
        };
        a.add(CostBreakdown {
            reference: 5,
            movement: 1,
        });
        assert_eq!(a.total(), 18);
        assert_eq!(a.to_string(), "18 (ref 15, move 3)");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_schedule_panics() {
        Schedule::new(g(), vec![vec![ProcId(0)], vec![ProcId(0), ProcId(1)]]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn trace_shape_mismatch_panics() {
        let grid = g();
        let trace = two_window_trace(grid);
        let s = Schedule::static_placement(grid, vec![ProcId(0)], 3);
        let _ = s.evaluate(&trace);
    }
}
