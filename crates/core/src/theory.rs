//! Executable statements of the paper's Lemma 1 and Theorems 1–3.
//!
//! The paper omits the proofs (they live in the Notre Dame TR 97-09); here
//! each property is encoded as a checkable predicate and exercised by unit
//! and property tests, which serves both as regression armor for the cost
//! model and as machine-checked evidence for the claims the grouping
//! algorithm relies on:
//!
//! * **Lemma 1 (1-D)** — between the closest pair of local optimal centers
//!   of two windows, the first window's cost increases strictly
//!   monotonically walking toward the second center.
//! * **Theorem 2 (2-D)** — same statement along *any* shortest (monotone)
//!   path on the grid.
//! * **Theorem 3** — merging two consecutive windows whose local optimal
//!   centers are the closest pair cannot reduce total communication cost
//!   (group cost at the merged center vs. separate centers plus one move).

use crate::cost::{cost_at, optimal_centers};
use pim_array::geom::Point;
use pim_array::grid::{Grid, ProcId};
use pim_array::line::Line;
use pim_trace::window::WindowRefs;

/// The closest pair `(c0, c1)` between the local optimal center sets of two
/// windows (ties broken by ascending ids). This is the pair Lemma 1 and
/// Theorems 2–3 quantify over.
pub fn closest_optimal_pair(
    grid: &Grid,
    refs0: &WindowRefs,
    refs1: &WindowRefs,
) -> (ProcId, ProcId) {
    let set0 = optimal_centers(grid, refs0);
    let set1 = optimal_centers(grid, refs1);
    let mut best = (set0[0], set1[0]);
    let mut best_d = u64::MAX;
    for &a in &set0 {
        for &b in &set1 {
            let d = grid.dist(a, b);
            if d < best_d || (d == best_d && (a.0, b.0) < (best.0 .0, best.1 .0)) {
                best = (a, b);
                best_d = d;
            }
        }
    }
    best
}

/// Lemma 1 predicate on the 1-D array: walking from `c0` toward `c1`, the
/// cost of `refs0` strictly increases at every step.
pub fn lemma1_holds(line: &Line, refs0: &[(u32, u32)], c0: u32, c1: u32) -> bool {
    if c0 == c1 {
        return true;
    }
    let step: i64 = if c1 > c0 { 1 } else { -1 };
    let mut prev = line.cost_at(refs0, c0);
    let mut pos = c0 as i64;
    while pos != c1 as i64 {
        pos += step;
        let cur = line.cost_at(refs0, pos as u32);
        if cur <= prev {
            return false;
        }
        prev = cur;
    }
    true
}

/// Theorem 2 predicate: along **every** monotone (shortest) path from
/// `from` to `to`, `cost(refs0, ·)` strictly increases at every step.
///
/// Checked exhaustively over the bounding rectangle: every unit step toward
/// `to` from every lattice point in the box must strictly increase cost.
pub fn theorem2_holds(grid: &Grid, refs0: &WindowRefs, from: ProcId, to: ProcId) -> bool {
    let a = grid.point_of(from);
    let b = grid.point_of(to);
    let xlo = a.x.min(b.x);
    let xhi = a.x.max(b.x);
    let ylo = a.y.min(b.y);
    let yhi = a.y.max(b.y);
    let toward_x: i64 = if b.x >= a.x { 1 } else { -1 };
    let toward_y: i64 = if b.y >= a.y { 1 } else { -1 };

    for y in ylo..=yhi {
        for x in xlo..=xhi {
            let here = Point::new(x, y);
            let c_here = cost_at(grid, refs0, grid.proc_at(here));
            // step in x toward `to`, if not yet aligned
            if x != b.x {
                let nx = (x as i64 + toward_x) as u32;
                let next = Point::new(nx, y);
                if cost_at(grid, refs0, grid.proc_at(next)) <= c_here {
                    return false;
                }
            }
            if y != b.y {
                let ny = (y as i64 + toward_y) as u32;
                let next = Point::new(x, ny);
                if cost_at(grid, refs0, grid.proc_at(next)) <= c_here {
                    return false;
                }
            }
        }
    }
    true
}

/// Theorem 3 quantities: `(grouped, separate)` total costs for two
/// consecutive windows whose centers are the closest optimal pair.
/// `separate` charges each window at its own center plus the move between
/// them; `grouped` charges the merged references at the merged window's
/// optimal center with no move. Theorem 3 asserts `grouped ≥ separate`.
pub fn pair_grouping_costs(grid: &Grid, refs0: &WindowRefs, refs1: &WindowRefs) -> (u64, u64) {
    let (c0, c1) = closest_optimal_pair(grid, refs0, refs1);
    let separate = cost_at(grid, refs0, c0) + cost_at(grid, refs1, c1) + grid.dist(c0, c1);
    let merged = WindowRefs::merged([refs0, refs1]);
    let grouped = crate::cost::optimal_center(grid, &merged).1;
    (grouped, separate)
}

/// Theorem 3 predicate.
pub fn theorem3_holds(grid: &Grid, refs0: &WindowRefs, refs1: &WindowRefs) -> bool {
    let (grouped, separate) = pair_grouping_costs(grid, refs0, refs1);
    grouped >= separate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn closest_pair_basic() {
        let grid = g();
        let r0 = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]);
        let r1 = WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]);
        assert_eq!(
            closest_optimal_pair(&grid, &r0, &r1),
            (grid.proc_xy(0, 0), grid.proc_xy(3, 3))
        );
    }

    #[test]
    fn closest_pair_uses_nearest_of_tied_sets() {
        let grid = g();
        // r0 optimal along the whole segment (0,0)..(3,0)
        let r0 = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(3, 0), 1)]);
        let r1 = WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]);
        let (c0, c1) = closest_optimal_pair(&grid, &r0, &r1);
        assert_eq!(c0, grid.proc_xy(3, 0));
        assert_eq!(c1, grid.proc_xy(3, 3));
    }

    #[test]
    fn lemma1_example() {
        let line = Line::new(10);
        let refs = [(2u32, 3u32), (3, 1)];
        // centers of refs: weighted median at 2; walking toward 8 strictly up
        assert!(lemma1_holds(&line, &refs, 2, 8));
        // starting inside flat optimal region of a symmetric string fails
        let sym = [(2u32, 1u32), (6, 1)];
        assert!(!lemma1_holds(&line, &sym, 2, 6)); // flat between medians
                                                   // but from the closest optimal center (6 is optimal too) it holds
        assert!(lemma1_holds(&line, &sym, 6, 8));
    }

    #[test]
    fn theorem2_from_closest_center() {
        let grid = g();
        let r0 = WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2), (grid.proc_xy(0, 1), 1)]);
        let r1 = WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]);
        let (c0, c1) = closest_optimal_pair(&grid, &r0, &r1);
        assert!(theorem2_holds(&grid, &r0, c0, c1));
    }

    #[test]
    fn theorem2_fails_from_non_closest_center() {
        let grid = g();
        // optimal set of r0 spans (0,0)..(3,0); starting from the far end
        // the path crosses the flat optimal region → not strictly monotone.
        let r0 = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1), (grid.proc_xy(3, 0), 1)]);
        let far_start = grid.proc_xy(0, 0);
        let target = grid.proc_xy(3, 3);
        assert!(!theorem2_holds(&grid, &r0, far_start, target));
    }

    #[test]
    fn theorem3_examples() {
        let grid = g();
        let cases = [
            (
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 3), 1)]),
            ),
            (
                WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2)]),
                WindowRefs::from_pairs([(grid.proc_xy(3, 0), 3)]),
            ),
            (
                WindowRefs::from_pairs([(grid.proc_xy(1, 1), 1), (grid.proc_xy(2, 2), 1)]),
                WindowRefs::from_pairs([(grid.proc_xy(2, 1), 4)]),
            ),
        ];
        for (r0, r1) in cases {
            assert!(theorem3_holds(&grid, &r0, &r1), "{r0:?} vs {r1:?}");
        }
    }

    #[test]
    fn pair_grouping_equality_case() {
        let grid = g();
        // single unit refs: grouping exactly matches separate + move
        let r0 = WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)]);
        let r1 = WindowRefs::from_pairs([(grid.proc_xy(2, 1), 1)]);
        let (grouped, separate) = pair_grouping_costs(&grid, &r0, &r1);
        assert_eq!(grouped, separate);
        assert_eq!(grouped, 3);
    }
}
