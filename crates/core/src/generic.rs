//! Topology-generic scheduling.
//!
//! The main schedulers exploit the 2-D mesh's L1 separability (prefix-sum
//! cost tables, two-pass distance transform). This module provides
//! reference implementations over *any* [`Topology`] — notably the torus
//! ([`pim_array::torus::Torus`]), whose wrap-around links break the open
//! mesh's separability tricks but not the problem structure:
//!
//! * [`cost_table_generic`] — `O(m · r)` per window;
//! * [`optimal_center_generic`] — argmin with the usual lowest-id tie-break;
//! * [`gomcds_path_generic`] — layered DP with `O(m²)` relaxation;
//! * [`scds_generic`] / [`lomcds_generic`] / [`gomcds_generic`] —
//!   unconstrained whole-trace schedulers returning plain center matrices;
//! * [`evaluate_generic`] — cost of a center matrix under the topology.
//!
//! On a `Grid` these produce exactly the same results as the optimized
//! paths (property-tested), which certifies both sides; on a torus they
//! power the `sweep_topology` ablation quantifying what wrap-around links
//! buy the data scheduler.

use pim_array::grid::ProcId;
use pim_array::topology::Topology;
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowRefs, WindowedTrace};

/// `out[p] = Σ volume · dist(p, referencing proc)` for every processor.
pub fn cost_table_generic<T: Topology + ?Sized>(topo: &T, refs: &WindowRefs, out: &mut Vec<u64>) {
    out.clear();
    out.extend((0..topo.num_procs() as u32).map(|k| {
        refs.iter()
            .map(|r| r.count as u64 * topo.dist(ProcId(k), r.proc))
            .sum::<u64>()
    }));
}

/// The minimum-cost processor (ties to the lowest id) and its cost.
pub fn optimal_center_generic<T: Topology + ?Sized>(topo: &T, refs: &WindowRefs) -> (ProcId, u64) {
    let mut table = Vec::new();
    cost_table_generic(topo, refs, &mut table);
    let (idx, &cost) = table
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("topology has processors");
    (ProcId(idx as u32), cost)
}

/// Layered shortest path (GOMCDS) over an arbitrary topology, `O(n·m²)`.
pub fn gomcds_path_generic<T: Topology + ?Sized>(
    topo: &T,
    rs: &DataRefString,
) -> (Vec<ProcId>, u64) {
    let m = topo.num_procs();
    let nw = rs.num_windows();
    let mut dp = vec![vec![0u64; m]; nw];
    let mut node = Vec::new();
    for w in 0..nw {
        cost_table_generic(topo, rs.window(w), &mut node);
        if w == 0 {
            dp[0].copy_from_slice(&node);
        } else {
            for k in 0..m {
                let best = (0..m)
                    .map(|j| dp[w - 1][j] + topo.dist(ProcId(j as u32), ProcId(k as u32)))
                    .min()
                    .expect("non-empty");
                dp[w][k] = best + node[k];
            }
        }
    }
    let (mut k, &best) = dp[nw - 1]
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("non-empty");
    let mut path = vec![ProcId(0); nw];
    path[nw - 1] = ProcId(k as u32);
    for w in (1..nw).rev() {
        cost_table_generic(topo, rs.window(w), &mut node);
        let need = dp[w][k] - node[k];
        let kk = ProcId(k as u32);
        k = (0..m)
            .find(|&j| dp[w - 1][j] + topo.dist(ProcId(j as u32), kk) == need)
            .expect("backtrack predecessor exists");
        path[w - 1] = ProcId(k as u32);
    }
    (path, best)
}

/// SCDS over any topology (unconstrained memory): one merged-window center
/// per datum.
pub fn scds_generic<T: Topology + ?Sized>(topo: &T, trace: &WindowedTrace) -> Vec<Vec<ProcId>> {
    trace
        .iter_data()
        .map(|(_, rs)| {
            let c = optimal_center_generic(topo, &rs.merged_all()).0;
            vec![c; trace.num_windows()]
        })
        .collect()
}

/// LOMCDS over any topology (unconstrained): per-window local optimum,
/// empty windows carrying the previous center.
pub fn lomcds_generic<T: Topology + ?Sized>(topo: &T, trace: &WindowedTrace) -> Vec<Vec<ProcId>> {
    trace
        .iter_data()
        .map(|(_, rs)| {
            let mut centers: Vec<Option<ProcId>> = rs
                .windows()
                .map(|w| (!w.is_empty()).then(|| optimal_center_generic(topo, w).0))
                .collect();
            crate::lomcds::resolve_gaps_pub(&mut centers);
            centers
                .into_iter()
                .map(|c| c.unwrap_or(ProcId(0)))
                .collect()
        })
        .collect()
}

/// GOMCDS over any topology (unconstrained).
pub fn gomcds_generic<T: Topology + ?Sized>(topo: &T, trace: &WindowedTrace) -> Vec<Vec<ProcId>> {
    trace
        .iter_data()
        .map(|(_, rs)| gomcds_path_generic(topo, rs).0)
        .collect()
}

/// Evaluate a center matrix under a topology (reference + movement).
pub fn evaluate_generic<T: Topology + ?Sized>(
    topo: &T,
    trace: &WindowedTrace,
    centers: &[Vec<ProcId>],
) -> u64 {
    assert_eq!(centers.len(), trace.num_data(), "data count mismatch");
    let mut total = 0u64;
    for (d, rs) in trace.iter_data() {
        let cs = &centers[d.index()];
        assert_eq!(cs.len(), rs.num_windows(), "window mismatch for {d}");
        for (w, refs) in rs.windows().enumerate() {
            total += refs
                .iter()
                .map(|r| r.count as u64 * topo.dist(cs[w], r.proc))
                .sum::<u64>();
        }
        for pair in cs.windows(2) {
            total += topo.dist(pair[0], pair[1]);
        }
    }
    total
}

/// Static row-wise-style baseline over any topology: datum `d` on processor
/// `d % m` (the straight-forward striping when no data shape is known).
pub fn striped_generic<T: Topology + ?Sized>(topo: &T, trace: &WindowedTrace) -> Vec<Vec<ProcId>> {
    let m = topo.num_procs() as u32;
    (0..trace.num_data() as u32)
        .map(|d| vec![ProcId(d % m); trace.num_windows()])
        .collect()
}

/// The datum id used by [`evaluate_generic`]'s panic messages.
#[allow(unused)]
fn _doc_anchor(_: DataId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gomcds::{gomcds_path, Solver};
    use pim_array::grid::Grid;
    use pim_array::torus::Torus;

    fn sample_trace(grid: Grid) -> WindowedTrace {
        WindowedTrace::from_parts(
            grid,
            vec![
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(0, 0), 2), (grid.proc_xy(3, 1), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(3, 3), 4)]),
                    WindowRefs::new(),
                    WindowRefs::from_pairs([(grid.proc_xy(1, 2), 2)]),
                ],
                vec![
                    WindowRefs::from_pairs([(grid.proc_xy(2, 0), 1)]),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 3), 3)]),
                    WindowRefs::from_pairs([(grid.proc_xy(2, 0), 1)]),
                    WindowRefs::new(),
                ],
            ],
        )
    }

    #[test]
    fn generic_matches_optimized_on_grid() {
        let grid = Grid::new(4, 4);
        let trace = sample_trace(grid);
        // cost tables
        for (_, rs) in trace.iter_data() {
            for w in rs.windows() {
                let mut generic = Vec::new();
                let mut fast = Vec::new();
                cost_table_generic(&grid, w, &mut generic);
                crate::cost::cost_table(&grid, w, &mut fast);
                assert_eq!(generic, fast);
            }
            // paths
            let (gp, gc) = gomcds_path_generic(&grid, rs);
            let (fp, fc) = gomcds_path(&grid, rs, Solver::DistanceTransform);
            assert_eq!(gc, fc);
            assert_eq!(gp, fp);
        }
        // whole-trace schedulers
        let spec = pim_array::memory::MemorySpec::unbounded();
        let go = crate::gomcds::gomcds_schedule(&trace, spec);
        let centers = gomcds_generic(&grid, &trace);
        assert_eq!(
            evaluate_generic(&grid, &trace, &centers),
            go.evaluate(&trace).total()
        );
        let sc = crate::scds::scds_schedule(&trace, spec);
        assert_eq!(
            evaluate_generic(&grid, &trace, &scds_generic(&grid, &trace)),
            sc.evaluate(&trace).total()
        );
        let lo = crate::lomcds::lomcds_schedule(&trace, spec);
        assert_eq!(
            evaluate_generic(&grid, &trace, &lomcds_generic(&grid, &trace)),
            lo.evaluate(&trace).total()
        );
    }

    #[test]
    fn torus_never_worse_than_mesh() {
        let grid = Grid::new(4, 4);
        let torus = Torus::new(4, 4);
        let trace = sample_trace(grid);
        // torus distances ≤ mesh distances pointwise, so the torus optimum
        // can't be worse
        let mesh = evaluate_generic(&grid, &trace, &gomcds_generic(&grid, &trace));
        let tor = evaluate_generic(&torus, &trace, &gomcds_generic(&torus, &trace));
        assert!(tor <= mesh, "torus {tor} > mesh {mesh}");
    }

    #[test]
    fn generic_ordering_holds_on_torus() {
        let torus = Torus::new(4, 4);
        let grid = Grid::new(4, 4); // only used to build the trace
        let trace = sample_trace(grid);
        let go = evaluate_generic(&torus, &trace, &gomcds_generic(&torus, &trace));
        let lo = evaluate_generic(&torus, &trace, &lomcds_generic(&torus, &trace));
        let sc = evaluate_generic(&torus, &trace, &scds_generic(&torus, &trace));
        let st = evaluate_generic(&torus, &trace, &striped_generic(&torus, &trace));
        assert!(go <= lo && go <= sc && go <= st);
    }

    #[test]
    fn striped_baseline_shape() {
        let grid = Grid::new(2, 2);
        let trace = sample_trace(Grid::new(4, 4));
        let centers = striped_generic(&grid, &trace);
        assert_eq!(centers.len(), 2);
        assert_eq!(centers[1][0], ProcId(1));
        assert!(centers.iter().all(|cs| cs.len() == trace.num_windows()));
    }
}
