//! Read-replication extension (beyond the paper).
//!
//! The paper fixes "one copy of data is allowed in a system". For
//! read-mostly data that leaves traffic on the table: when two distant
//! processor clusters reference the same datum in the same window, a single
//! center must be far from at least one of them every window. This module
//! lifts the restriction to **two** copies per datum (the first
//! diminishing-returns step, and the one that fits the PIM memory budget
//! story):
//!
//! * each window serves every reference from its *nearest* replica;
//! * a replica appearing in window `w+1` at a location not already holding
//!   one is materialized by a copy from the nearest replica of window `w`
//!   (charged at Manhattan distance); dropping a replica is free;
//! * coherence is out of scope — the model is read replication, the same
//!   assumption block-cyclic redistribution work makes for broadcast
//!   operands.
//!
//! The optimizer keeps the GOMCDS path as the primary copy and solves an
//! exact DP for the optional secondary copy *given* the primary: state =
//! secondary location or `None` per window, transitions pay secondary
//! movement (or creation from the primary), rewards are the reference-cost
//! reductions. The datum keeps the secondary only where it pays for
//! itself, so the result is never worse than single-copy GOMCDS (tested).

use crate::cost::cost_at;
use crate::gomcds::{gomcds_path, Solver};
use crate::schedule::CostBreakdown;
use pim_array::grid::{Grid, ProcId};
use pim_array::memory::{MemoryMap, MemorySpec};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowRefs, WindowedTrace};
use serde::{Deserialize, Serialize};

/// A replicated schedule: per datum, per window, one or two replica
/// locations (first entry is the primary copy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedSchedule {
    grid: Grid,
    /// `replicas[d][w]` — primary, plus optional secondary.
    replicas: Vec<Vec<(ProcId, Option<ProcId>)>>,
}

impl ReplicatedSchedule {
    /// The grid this schedule targets.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of data items.
    pub fn num_data(&self) -> usize {
        self.replicas.len()
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        self.replicas.first().map_or(0, Vec::len)
    }

    /// Replicas of datum `d` in window `w`.
    pub fn replicas_of(&self, d: DataId, w: usize) -> (ProcId, Option<ProcId>) {
        self.replicas[d.index()][w]
    }

    /// Total number of (datum, window) slots holding a secondary copy.
    pub fn secondary_slots(&self) -> u64 {
        self.replicas
            .iter()
            .flatten()
            .filter(|(_, s)| s.is_some())
            .count() as u64
    }

    /// Reference cost of serving `refs` from the replica set.
    fn serve_cost(
        grid: &Grid,
        refs: &WindowRefs,
        primary: ProcId,
        secondary: Option<ProcId>,
    ) -> u64 {
        match secondary {
            None => cost_at(grid, refs, primary),
            Some(s) => refs
                .iter()
                .map(|r| {
                    let p = grid.point_of(r.proc);
                    let d = grid
                        .point_of(primary)
                        .l1_dist(p)
                        .min(grid.point_of(s).l1_dist(p));
                    r.count as u64 * d
                })
                .sum(),
        }
    }

    /// Evaluate against a trace: nearest-replica reference cost plus
    /// movement/materialization cost between windows.
    pub fn evaluate(&self, trace: &WindowedTrace) -> CostBreakdown {
        assert_eq!(trace.grid(), self.grid, "grid mismatch");
        assert_eq!(trace.num_data(), self.num_data(), "data count mismatch");
        let grid = &self.grid;
        let mut out = CostBreakdown::default();
        for (d, rs) in trace.iter_data() {
            let seq = &self.replicas[d.index()];
            assert_eq!(seq.len(), rs.num_windows(), "window mismatch for {d}");
            for (w, refs) in rs.windows().enumerate() {
                let (p, s) = seq[w];
                out.reference += Self::serve_cost(grid, refs, p, s);
                if w > 0 {
                    let (pp, ps) = seq[w - 1];
                    // every current replica is materialized from the
                    // nearest previous replica (free if co-located)
                    let from_prev = |loc: ProcId| {
                        let d1 = grid.dist(pp, loc);
                        match ps {
                            Some(q) => d1.min(grid.dist(q, loc)),
                            None => d1,
                        }
                    };
                    out.movement += from_prev(p);
                    if let Some(s) = s {
                        out.movement += from_prev(s);
                    }
                }
            }
        }
        out
    }
}

/// Solve the optimal secondary-copy trajectory for one datum given its
/// fixed primary path. Returns the per-window secondary (or `None`) and
/// the total cost of the two-copy plan.
fn secondary_dp(
    grid: &Grid,
    rs: &DataRefString,
    primary: &[ProcId],
    masks: Option<&[MemoryMap]>,
) -> (Vec<Option<ProcId>>, u64) {
    let m = grid.num_procs();
    let nw = rs.num_windows();
    const NONE: usize = usize::MAX;

    // dp[w][state]: state in 0..m = secondary at proc, state m = none.
    // cost includes primary ref+move costs so the result is the full plan.
    let prim_move = |w: usize| -> u64 {
        if w == 0 {
            0
        } else {
            grid.dist(primary[w - 1], primary[w])
        }
    };
    let available = |w: usize, p: ProcId| -> bool {
        p != primary[w] && masks.is_none_or(|ms| ms[w].has_room(p))
    };

    let node = |w: usize, state: usize| -> u64 {
        let refs = rs.window(w);
        if state == m {
            cost_at(grid, refs, primary[w])
        } else {
            ReplicatedSchedule::serve_cost(grid, refs, primary[w], Some(ProcId(state as u32)))
        }
    };

    let mut dp = vec![vec![u64::MAX; m + 1]; nw];
    let mut parent = vec![vec![NONE; m + 1]; nw];
    for state in 0..=m {
        if state < m && !available(0, ProcId(state as u32)) {
            continue;
        }
        // creating a secondary in window 0 is part of initial distribution
        // (free, like the primary's initial placement)
        dp[0][state] = node(0, state) + prim_move(0);
    }
    for w in 1..nw {
        for state in 0..=m {
            if state < m && !available(w, ProcId(state as u32)) {
                continue;
            }
            let mut best = u64::MAX;
            let mut best_prev = NONE;
            for prev in 0..=m {
                if dp[w - 1][prev] == u64::MAX {
                    continue;
                }
                // cost to have the secondary at `state` this window
                let trans = if state == m {
                    0 // dropping is free
                } else {
                    let loc = ProcId(state as u32);
                    let from_primary = grid.dist(primary[w - 1], loc);
                    if prev == m {
                        from_primary // create from primary copy
                    } else {
                        from_primary.min(grid.dist(ProcId(prev as u32), loc))
                    }
                };
                let cand = dp[w - 1][prev] + trans;
                if cand < best {
                    best = cand;
                    best_prev = prev;
                }
            }
            if best < u64::MAX {
                dp[w][state] = best + node(w, state) + prim_move(w);
                parent[w][state] = best_prev;
            }
        }
    }

    let (mut state, &total) = dp[nw - 1]
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("dp non-empty");
    let mut out = vec![None; nw];
    for w in (0..nw).rev() {
        out[w] = (state != m).then_some(ProcId(state as u32));
        if w > 0 {
            state = parent[w][state];
        }
    }
    (out, total)
}

/// Two-copy scheduling: GOMCDS primary path plus the exact optimal
/// secondary trajectory per datum (kept only when it reduces the datum's
/// cost). Capacity is honoured for both copies.
///
/// ```
/// use pim_array::grid::Grid;
/// use pim_array::memory::MemorySpec;
/// use pim_trace::window::{WindowRefs, WindowedTrace};
/// use pim_sched::replicate::replicated_schedule;
///
/// let grid = Grid::new(4, 4);
/// // opposite corners both hammer the same datum every window
/// let win = || WindowRefs::from_pairs([(grid.proc_xy(0, 0), 4), (grid.proc_xy(3, 3), 4)]);
/// let trace = WindowedTrace::from_parts(grid, vec![vec![win(), win()]]);
/// let repl = replicated_schedule(&trace, MemorySpec::unbounded());
/// assert_eq!(repl.evaluate(&trace).total(), 0); // one copy per corner
/// ```
///
/// # Panics
/// Panics if the array cannot hold one copy of every datum.
pub fn replicated_schedule(trace: &WindowedTrace, spec: MemorySpec) -> ReplicatedSchedule {
    let grid = trace.grid();
    let nd = trace.num_data();
    let nw = trace.num_windows();
    assert!(
        spec.feasible(&grid, nd),
        "memory spec cannot hold {nd} data items on {grid}"
    );
    let bounded = spec.capacity_per_proc != u32::MAX;
    let mut mems: Vec<MemoryMap> = (0..nw).map(|_| MemoryMap::new(&grid, spec)).collect();

    // First pass: primaries for everyone (they must all fit). Identical to
    // plain GOMCDS: data in ascending id order, masked shortest paths.
    let mut primaries: Vec<Vec<ProcId>> = Vec::with_capacity(nd);
    for (_, rs) in trace.iter_data() {
        let path = if bounded {
            resolve_masked(&grid, rs, &mems)
        } else {
            gomcds_path(&grid, rs, Solver::DistanceTransform).0
        };
        if bounded {
            for (w, &p) in path.iter().enumerate() {
                mems[w].allocate(p).expect("masked path avoids full slots");
            }
        }
        primaries.push(path);
    }

    // Second pass: optional secondaries into the remaining slack.
    let mut replicas = Vec::with_capacity(nd);
    for (d, rs) in trace.iter_data() {
        let primary = &primaries[d.index()];
        let single_cost = crate::exhaustive::path_cost(&grid, rs, primary);
        let (secondary, dual_cost) =
            secondary_dp(&grid, rs, primary, bounded.then_some(mems.as_slice()));
        let seq: Vec<(ProcId, Option<ProcId>)> = if dual_cost < single_cost {
            if bounded {
                for (w, s) in secondary.iter().enumerate() {
                    if let Some(s) = s {
                        mems[w]
                            .allocate(*s)
                            .expect("secondary DP masked full slots");
                    }
                }
            }
            primary
                .iter()
                .zip(secondary)
                .map(|(&p, s)| (p, s))
                .collect()
        } else {
            primary.iter().map(|&p| (p, None)).collect()
        };
        replicas.push(seq);
    }
    ReplicatedSchedule { grid, replicas }
}

/// Masked single-copy fallback used when the unconstrained primary path
/// collides with occupancy.
fn resolve_masked(grid: &Grid, rs: &DataRefString, mems: &[MemoryMap]) -> Vec<ProcId> {
    crate::gomcds::solve_masked_path(grid, rs, mems)
        .expect("every window retains a free slot for the primary")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_trace::window::WindowedTrace;

    fn grid() -> Grid {
        Grid::new(4, 4)
    }

    /// Two distant clusters hammer the same datum every window — the case
    /// replication exists for.
    fn twin_hotspot_trace() -> WindowedTrace {
        let g = grid();
        let win = || WindowRefs::from_pairs([(g.proc_xy(0, 0), 4), (g.proc_xy(3, 3), 4)]);
        WindowedTrace::from_parts(g, vec![vec![win(), win(), win()]])
    }

    #[test]
    fn replication_wins_on_twin_hotspots() {
        let trace = twin_hotspot_trace();
        let single = crate::gomcds::gomcds_schedule(&trace, MemorySpec::unbounded())
            .evaluate(&trace)
            .total();
        let repl = replicated_schedule(&trace, MemorySpec::unbounded());
        let dual = repl.evaluate(&trace).total();
        assert!(
            dual < single,
            "replication {dual} should beat single copy {single}"
        );
        // both corners hold a copy in every window → zero reference cost
        assert_eq!(dual, 0);
        assert_eq!(repl.secondary_slots(), 3);
    }

    #[test]
    fn never_worse_than_single_copy() {
        let g = grid();
        let traces = vec![
            twin_hotspot_trace(),
            WindowedTrace::from_parts(
                g,
                vec![vec![
                    WindowRefs::from_pairs([(g.proc_xy(1, 1), 2)]),
                    WindowRefs::from_pairs([(g.proc_xy(2, 2), 1)]),
                ]],
            ),
            WindowedTrace::from_parts(g, vec![vec![WindowRefs::new(), WindowRefs::new()]]),
        ];
        for trace in traces {
            let single = crate::gomcds::gomcds_schedule(&trace, MemorySpec::unbounded())
                .evaluate(&trace)
                .total();
            let dual = replicated_schedule(&trace, MemorySpec::unbounded())
                .evaluate(&trace)
                .total();
            assert!(dual <= single, "{dual} > {single}");
        }
    }

    #[test]
    fn single_ref_pattern_gets_no_secondary() {
        let g = grid();
        let trace = WindowedTrace::from_parts(
            g,
            vec![vec![
                WindowRefs::from_pairs([(g.proc_xy(1, 1), 3)]),
                WindowRefs::from_pairs([(g.proc_xy(1, 1), 3)]),
            ]],
        );
        let repl = replicated_schedule(&trace, MemorySpec::unbounded());
        assert_eq!(repl.secondary_slots(), 0);
        assert_eq!(repl.evaluate(&trace).total(), 0);
    }

    #[test]
    fn capacity_limits_replication() {
        let g = Grid::new(2, 1);
        // two data, capacity 1: no slack for secondaries at all
        let win = || WindowRefs::from_pairs([(g.proc_xy(0, 0), 1), (g.proc_xy(1, 0), 1)]);
        let trace = WindowedTrace::from_parts(g, vec![vec![win()], vec![win()]]);
        let repl = replicated_schedule(&trace, MemorySpec::uniform(1));
        assert_eq!(repl.secondary_slots(), 0);
        // occupancy: each proc holds exactly one datum
        let (p0, s0) = repl.replicas_of(DataId(0), 0);
        let (p1, s1) = repl.replicas_of(DataId(1), 0);
        assert_ne!(p0, p1);
        assert!(s0.is_none() && s1.is_none());
    }

    #[test]
    fn evaluate_movement_accounts_materialization() {
        let g = grid();
        // hand-built schedule: secondary appears in window 1 at (3,3)
        let sched = ReplicatedSchedule {
            grid: g,
            replicas: vec![vec![
                (g.proc_xy(0, 0), None),
                (g.proc_xy(0, 0), Some(g.proc_xy(3, 3))),
            ]],
        };
        let trace = WindowedTrace::from_parts(g, vec![vec![WindowRefs::new(), WindowRefs::new()]]);
        let cost = sched.evaluate(&trace);
        assert_eq!(cost.movement, 6); // copy from (0,0) to (3,3)
        assert_eq!(cost.reference, 0);
    }
}
