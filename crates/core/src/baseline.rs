//! Straight-forward static data distributions — the paper's baseline.
//!
//! The experiments compare every scheduler against "the straight-forward
//! method which assigns each data element to the corresponding processor in
//! a row-wise fashion". These baselines know the *shape* of the data array
//! (`rows × cols`) and place element `(i, j)` by a static [`Layout`],
//! never moving it.

use crate::schedule::Schedule;
use pim_array::layout::Layout;
use pim_trace::window::WindowedTrace;

/// Static schedule distributing a `rows × cols` data array by `layout`.
///
/// Datum ids must follow the row-major convention of
/// [`pim_trace::ids::matrix_elem`]; data beyond `rows*cols` (if any) are
/// placed cyclically.
///
/// # Panics
/// Panics if the trace has fewer data items than the array has elements.
pub fn layout_schedule(trace: &WindowedTrace, rows: u32, cols: u32, layout: Layout) -> Schedule {
    let grid = trace.grid();
    let n = (rows * cols) as usize;
    assert!(
        trace.num_data() >= n,
        "trace has {} data but array is {rows}x{cols}",
        trace.num_data()
    );
    let placement = (0..trace.num_data() as u32)
        .map(|e| {
            if (e as usize) < n {
                layout.owner_of_elem(&grid, rows, cols, e)
            } else {
                pim_array::grid::ProcId(e % grid.num_procs() as u32)
            }
        })
        .collect();
    Schedule::static_placement(grid, placement, trace.num_windows())
}

/// The paper's straight-forward (S.F.) baseline: row-wise distribution.
pub fn straightforward_schedule(trace: &WindowedTrace, rows: u32, cols: u32) -> Schedule {
    layout_schedule(trace, rows, cols, Layout::RowWise)
}

/// A uniformly random static placement (seeded), the sanity-check floor
/// used by the ablation benches.
pub fn random_schedule(trace: &WindowedTrace, seed: u64) -> Schedule {
    let grid = trace.grid();
    // xorshift64* — deterministic, dependency-free
    let mut state = seed.wrapping_mul(2685821657736338717).max(1);
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(2685821657736338717)
    };
    let m = grid.num_procs() as u64;
    let placement = (0..trace.num_data())
        .map(|_| pim_array::grid::ProcId((next() % m) as u32))
        .collect();
    Schedule::static_placement(grid, placement, trace.num_windows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_array::grid::{Grid, ProcId};
    use pim_trace::ids::DataId;
    use pim_trace::window::{WindowRefs, WindowedTrace};

    fn trace_of(grid: Grid, n: usize) -> WindowedTrace {
        WindowedTrace::from_parts(grid, vec![vec![WindowRefs::new()]; n])
    }

    #[test]
    fn row_wise_matches_layout() {
        let grid = Grid::new(4, 4);
        let t = trace_of(grid, 64);
        let s = straightforward_schedule(&t, 8, 8);
        for e in 0..64u32 {
            assert_eq!(
                s.center(DataId(e), 0),
                Layout::RowWise.owner_of_elem(&grid, 8, 8, e)
            );
        }
        assert!(!s.has_movement());
    }

    #[test]
    fn extra_data_placed_cyclically() {
        let grid = Grid::new(2, 2);
        let t = trace_of(grid, 6);
        let s = layout_schedule(&t, 2, 2, Layout::RowWise);
        assert_eq!(s.center(DataId(4), 0), ProcId(0));
        assert_eq!(s.center(DataId(5), 0), ProcId(1));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let grid = Grid::new(4, 4);
        let t = trace_of(grid, 32);
        let a = random_schedule(&t, 42);
        let b = random_schedule(&t, 42);
        let c = random_schedule(&t, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.centers_of(DataId(0)).iter().all(|p| p.index() < 16));
    }

    #[test]
    #[should_panic(expected = "trace has")]
    fn too_few_data_panics() {
        let grid = Grid::new(2, 2);
        let t = trace_of(grid, 3);
        layout_schedule(&t, 2, 2, Layout::RowWise);
    }
}
