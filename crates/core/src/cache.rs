//! Shared per-trace cost-table cache.
//!
//! Every scheduler keeps re-deriving the same quantity from the raw
//! reference strings: the axis-projected reference weights of a window
//! *range*. SCDS needs them for the merged whole execution, LOMCDS per
//! window, GOMCDS per window twice (DP forward pass and backtrack), and
//! grouping for `O(n)` different candidate ranges per greedy step. Each
//! derivation walks the `(proc, count)` lists again.
//!
//! Because the L1 cost table is separable (see [`crate::cost`]) and the
//! axis projection is *linear* in the reference counts, the projections of
//! a window range are just differences of per-window prefix sums. A
//! [`DatumCostCache`] can therefore store, per datum:
//!
//! ```text
//! px[w][x] = Σ_{w' < w} Σ_{refs in window w' at column x} count
//! py[w][y] = …same for rows…
//! vol[w]   = Σ_{w' < w} total volume of window w'
//! ```
//!
//! built in one `O(nw·(width+height) + total refs)` pass. Afterwards the
//! cost table of *any* window range `lo..hi` costs
//! `O(width + height + m)` — independent of how many references the range
//! holds — via two subtractions per axis slot and the standard two-sweep
//! `axis_costs` recurrence in [`crate::cost`].
//!
//! The prefix tables are built **lazily, on a query that needs them**.
//! Whole-execution queries are always served by projecting the raw
//! references directly — exactly one pass over the refs involved, which is
//! never more work than the prefix build itself — so SCDS (one full table
//! per datum) pays nothing for tables it would never amortize. A *strict
//! multi-window sub-range* query — the shape Algorithm 3 grouping issues
//! `O(n)` times per datum — triggers the one-time prefix build immediately.
//! Single-window queries are served raw until the datum has answered more
//! of them than one full window sweep could issue
//! (`num_windows + SINGLE_WINDOW_SWEEP_SLACK`); the next one triggers
//! the build. The point: a window-sweeping scheduler (LOMCDS, GOMCDS)
//! reads each window exactly once, so across the whole sweep the raw path
//! walks every reference exactly once — the same total work as the prefix
//! build itself, minus the build's row copies and allocations. Building
//! mid-sweep can therefore only lose (measurably so on the paper table's
//! sparse instances). Only a *re-scan* — more single-window queries than
//! windows, as issued by iterated refinement or repeated capacity replays
//! — amortizes the build, and that is exactly when it fires. The slack
//! keeps one extra probe (e.g. LOMCDS' first-anchor lookup before its
//! sweep) build-free.
//!
//! The arithmetic is identical either way: axis weights are sums of `u64`
//! counts (associative and exact), so raw projection, prefix subtraction,
//! and [`crate::cost::cost_table`] on the merged range all produce
//! bit-identical tables (property-tested in `tests/cache_equivalence.rs`).
//!
//! Laziness also parallelizes for free: [`DatumCostCache`] guards its
//! tables with a [`OnceLock`], so when a worker pool partitions data
//! across threads (see [`crate::context::SchedContext::parallel_pool`]),
//! each datum's tables are built on the worker that first needs them —
//! the build runs on the pool without any coordination. [`CostCache::warm`]
//! forces the same build eagerly across a pool when a caller wants the
//! cost out of the measured region.

use crate::cost::{argmin_table, AxisScratch};
use pim_array::grid::{Grid, ProcId};
use pim_metrics::CacheStats;
use pim_trace::flat::{FlatRef, FlatTrace};
use pim_trace::ids::DataId;
use pim_trace::window::{DataRefString, WindowedTrace};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Extra raw single-window serves allowed beyond one per window before a
/// single-window query triggers the prefix build (see the module docs for
/// the rationale): a datum builds its tables on single-window query
/// `num_windows + SINGLE_WINDOW_SWEEP_SLACK + 1`.
const SINGLE_WINDOW_SWEEP_SLACK: u32 = 1;

/// Where a datum's raw references live: the nested per-window
/// representation, one contiguous window-major slice of a [`FlatTrace`],
/// or a shared (`Arc`-owned) flat source that outlives any borrow — the
/// form the incremental engine uses so it can rebind a datum's span after
/// an edit without the cache borrowing the trace. All orderings iterate
/// references identically (window-major, ascending processor id) and all
/// served quantities are exact `u64` sums, so the backing choice can never
/// change a table bit.
#[derive(Debug, Clone)]
enum RefSource<'r> {
    /// Nested per-window reference string.
    Windowed(&'r DataRefString),
    /// One datum's span of a [`FlatTrace`], sorted by (window, proc).
    Flat(&'r [FlatRef]),
    /// One datum of a shared flat trace (span looked up per query).
    SharedTrace(Arc<FlatTrace>, DataId),
    /// A shared standalone span in [`FlatTrace`] canonical order (the
    /// overlay form `pim_trace::edit::EditableTrace` produces).
    SharedSpan(Arc<[FlatRef]>),
}

impl RefSource<'_> {
    /// The window-major flat slice behind every non-`Windowed` variant.
    fn flat(&self) -> Option<&[FlatRef]> {
        match self {
            RefSource::Windowed(_) => None,
            RefSource::Flat(refs) => Some(refs),
            RefSource::SharedTrace(trace, d) => Some(trace.span(*d)),
            RefSource::SharedSpan(refs) => Some(refs),
        }
    }
}

/// The axis-weight prefix sums of one datum, built lazily on first use.
#[derive(Debug, Clone)]
struct PrefixTables {
    /// `(nw+1) × width` row-major prefix sums of x-projected weights.
    px: Vec<u64>,
    /// `(nw+1) × height` row-major prefix sums of y-projected weights.
    py: Vec<u64>,
    /// `nw+1` prefix sums of window volumes.
    vol: Vec<u64>,
}

/// Cached axis projections of one datum's reference string: cheap raw
/// projection for one-shot queries, lazily built prefix sums for
/// arbitrary sub-ranges and repeated window sweeps.
#[derive(Debug)]
pub struct DatumCostCache<'r> {
    grid: Grid,
    num_windows: usize,
    src: RefSource<'r>,
    tables: OnceLock<PrefixTables>,
    /// Count of raw-served single-window queries, driving the
    /// [`SINGLE_WINDOW_PREFIX_THRESHOLD`] build trigger. Atomic because
    /// caches are queried concurrently from worker pools; the count only
    /// decides *when* tables appear, never what they contain, so relaxed
    /// racing cannot change a served bit.
    raw_singles: AtomicU32,
    /// Observability counters shared with a [`pim_metrics::Metrics`] sink;
    /// `None` (the default) skips counting entirely. Counting never feeds
    /// back into any served table, so metrics cannot change a schedule.
    stats: Option<Arc<CacheStats>>,
}

impl Clone for DatumCostCache<'_> {
    fn clone(&self) -> Self {
        DatumCostCache {
            grid: self.grid,
            num_windows: self.num_windows,
            src: self.src.clone(),
            tables: self.tables.clone(),
            raw_singles: AtomicU32::new(self.raw_singles.load(Ordering::Relaxed)),
            stats: self.stats.clone(),
        }
    }
}

impl<'r> DatumCostCache<'r> {
    /// Wrap one datum's reference string. `O(1)` — no tables are built
    /// until a query needs them (see the module docs for which do).
    pub fn build(grid: &Grid, rs: &'r DataRefString) -> Self {
        Self::from_source(grid, RefSource::Windowed(rs), rs.num_windows())
    }

    /// Wrap one datum's span of a [`FlatTrace`] (window-major, ascending
    /// processor order — the layout [`FlatTrace`] guarantees). Serves the
    /// exact same tables as [`DatumCostCache::build`] on the equivalent
    /// nested string.
    pub fn build_flat(grid: &Grid, refs: &'r [FlatRef], num_windows: usize) -> Self {
        Self::from_source(grid, RefSource::Flat(refs), num_windows)
    }

    /// Wrap one datum of a shared flat trace. Borrow-free (`'static`):
    /// the cache co-owns the trace, so a caller holding the same `Arc`
    /// may keep editing an overlay beside it — the form the incremental
    /// engine builds its initial cache in.
    pub fn build_shared_trace(grid: &Grid, trace: Arc<FlatTrace>, d: DataId) -> DatumCostCache<'r> {
        let nw = trace.num_windows();
        Self::from_source(grid, RefSource::SharedTrace(trace, d), nw)
    }

    /// Wrap a shared standalone span in [`FlatTrace`] canonical order
    /// (window-major `(window, y, x)`, duplicates aggregated) — the
    /// overlay form `pim_trace::edit::EditableTrace` produces for edited
    /// data.
    pub fn build_shared_span(
        grid: &Grid,
        refs: Arc<[FlatRef]>,
        num_windows: usize,
    ) -> DatumCostCache<'r> {
        Self::from_source(grid, RefSource::SharedSpan(refs), num_windows)
    }

    fn from_source(grid: &Grid, src: RefSource<'r>, num_windows: usize) -> Self {
        DatumCostCache {
            grid: *grid,
            num_windows,
            src,
            tables: OnceLock::new(),
            raw_singles: AtomicU32::new(0),
            stats: None,
        }
    }

    /// Datum `d`'s references within windows `lo..hi` of the flat span
    /// (binary search on the sorted window ids).
    fn flat_range(refs: &[FlatRef], lo: usize, hi: usize) -> &[FlatRef] {
        let a = refs.partition_point(|r| (r.window as usize) < lo);
        let b = refs.partition_point(|r| (r.window as usize) < hi);
        &refs[a..b]
    }

    /// Install shared cache counters (from an enabled metrics sink).
    pub fn set_stats(&mut self, stats: Arc<CacheStats>) {
        self.stats = Some(stats);
    }

    /// The prefix tables, building them on first call (one pass over the
    /// reference string). Safe and deterministic under concurrent callers:
    /// the build is pure and [`OnceLock`] publishes exactly one result.
    fn tables(&self) -> &PrefixTables {
        self.tables.get_or_init(|| {
            if let Some(stats) = &self.stats {
                stats.prefix_builds.fetch_add(1, Ordering::Relaxed);
            }
            let w = self.grid.width() as usize;
            let h = self.grid.height() as usize;
            let nw = self.num_windows;
            let mut px = vec![0u64; (nw + 1) * w];
            let mut py = vec![0u64; (nw + 1) * h];
            let mut vol = vec![0u64; nw + 1];
            let flat = self.src.flat();
            let mut flat_next = 0usize;
            for wi in 0..nw {
                let (prev_x, row_x) = px[wi * w..(wi + 2) * w].split_at_mut(w);
                row_x.copy_from_slice(prev_x);
                let (prev_y, row_y) = py[wi * h..(wi + 2) * h].split_at_mut(h);
                row_y.copy_from_slice(prev_y);
                vol[wi + 1] = vol[wi];
                match (flat, &self.src) {
                    (Some(refs), _) => {
                        while let Some(r) = refs.get(flat_next) {
                            if r.window as usize != wi {
                                break;
                            }
                            row_x[r.x as usize] += r.count as u64;
                            row_y[r.y as usize] += r.count as u64;
                            vol[wi + 1] += r.count as u64;
                            flat_next += 1;
                        }
                    }
                    (None, RefSource::Windowed(rs)) => {
                        for r in rs.window(wi).iter() {
                            let p = self.grid.point_of(r.proc);
                            row_x[p.x as usize] += r.count as u64;
                            row_y[p.y as usize] += r.count as u64;
                            vol[wi + 1] += r.count as u64;
                        }
                    }
                    (None, _) => unreachable!("every non-windowed source is flat"),
                }
            }
            PrefixTables { px, py, vol }
        })
    }

    /// Force the prefix-table build now (used to warm caches on a pool).
    pub fn ensure_tables(&self) {
        let _ = self.tables();
    }

    /// Drop any built prefix tables and reset the lazy-build counter.
    /// The datum becomes an *invalidation unit*: an incremental engine
    /// calls this (via [`DatumCostCache::rebind_span`]) for exactly the
    /// data an edit rewrote, leaving every other datum's tables intact.
    pub fn invalidate(&mut self) {
        if self.tables.get().is_some() {
            if let Some(stats) = &self.stats {
                stats.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.tables = OnceLock::new();
        self.raw_singles = AtomicU32::new(0);
    }

    /// Rebind to a rewritten shared span (canonical order) covering
    /// `num_windows` windows, invalidating any built tables.
    pub fn rebind_span(&mut self, refs: Arc<[FlatRef]>, num_windows: usize) {
        self.src = RefSource::SharedSpan(refs);
        self.num_windows = num_windows;
        self.invalidate();
    }

    /// Rebind to a shared span that *extends* the current one: every
    /// reference in pre-existing windows is unchanged and new references
    /// live only in windows `>= self.num_windows()`. Built prefix tables
    /// are extended in place (new rows appended) instead of rebuilt.
    pub fn extend_span(&mut self, refs: Arc<[FlatRef]>, num_windows: usize) {
        debug_assert!(num_windows >= self.num_windows);
        let old_nw = self.num_windows;
        self.src = RefSource::SharedSpan(refs);
        self.num_windows = num_windows;
        self.extend_tables(old_nw);
    }

    /// Grow the window count without touching the source: the appended
    /// windows hold no references to this datum (the caller's contract —
    /// data referenced by an append get [`DatumCostCache::extend_span`]
    /// instead). Built prefix tables gain copy-forward rows in place.
    pub fn extend_windows(&mut self, num_windows: usize) {
        debug_assert!(num_windows >= self.num_windows);
        let old_nw = self.num_windows;
        self.num_windows = num_windows;
        self.extend_tables(old_nw);
    }

    /// Append prefix rows for windows `old_nw..self.num_windows` to
    /// already-built tables (no-op while still lazy — the eventual build
    /// covers the new count). Row `wi+1` = row `wi` + refs of window `wi`,
    /// exactly what a from-scratch build would compute.
    fn extend_tables(&mut self, old_nw: usize) {
        let nw = self.num_windows;
        if nw == old_nw {
            return;
        }
        let w = self.grid.width() as usize;
        let h = self.grid.height() as usize;
        let refs = self.src.flat();
        let Some(t) = self.tables.get_mut() else {
            return;
        };
        if let Some(stats) = &self.stats {
            stats.prefix_extends.fetch_add(1, Ordering::Relaxed);
        }
        t.px.resize((nw + 1) * w, 0);
        t.py.resize((nw + 1) * h, 0);
        t.vol.resize(nw + 1, 0);
        let refs = refs.expect("extendable sources are flat");
        let mut next = refs.partition_point(|r| (r.window as usize) < old_nw);
        for wi in old_nw..nw {
            let (prev_x, row_x) = t.px[wi * w..(wi + 2) * w].split_at_mut(w);
            row_x.copy_from_slice(prev_x);
            let (prev_y, row_y) = t.py[wi * h..(wi + 2) * h].split_at_mut(h);
            row_y.copy_from_slice(prev_y);
            t.vol[wi + 1] = t.vol[wi];
            while let Some(r) = refs.get(next) {
                if r.window as usize != wi {
                    break;
                }
                row_x[r.x as usize] += r.count as u64;
                row_y[r.y as usize] += r.count as u64;
                t.vol[wi + 1] += r.count as u64;
                next += 1;
            }
        }
    }

    /// Number of execution windows the cache covers.
    pub fn num_windows(&self) -> usize {
        self.num_windows
    }

    /// Total reference volume of windows `lo..hi`.
    pub fn range_volume(&self, lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi <= self.num_windows);
        if let Some(t) = self.tables.get() {
            return t.vol[hi] - t.vol[lo];
        }
        match hi - lo {
            0 => 0,
            1 => self.raw_volume(lo, hi),
            _ if lo == 0 && hi == self.num_windows => self.raw_volume(lo, hi),
            _ => {
                let t = self.tables();
                t.vol[hi] - t.vol[lo]
            }
        }
    }

    /// Range volume by walking the raw references of `lo..hi`.
    fn raw_volume(&self, lo: usize, hi: usize) -> u64 {
        match (&self.src, self.src.flat()) {
            (RefSource::Windowed(rs), _) => {
                if lo == 0 && hi == self.num_windows {
                    rs.total_volume()
                } else {
                    (lo..hi).map(|w| rs.window(w).total_volume()).sum()
                }
            }
            (_, Some(refs)) => Self::flat_range(refs, lo, hi)
                .iter()
                .map(|r| r.count as u64)
                .sum(),
            (_, None) => unreachable!("every non-windowed source is flat"),
        }
    }

    /// True when no processor references the datum in windows `lo..hi`.
    pub fn range_is_empty(&self, lo: usize, hi: usize) -> bool {
        self.range_volume(lo, hi) == 0
    }

    /// Cost table of the merged window range `lo..hi`: writes
    /// `out[p] = cost_at(grid, merged(lo..hi), p)` for every processor in
    /// `O(width + height + m)` once tables exist (plus the raw refs of the
    /// range on the lazy paths — see the module docs).
    pub fn range_table(&self, lo: usize, hi: usize, axes: &mut AxisScratch, out: &mut Vec<u64>) {
        assert!(lo <= hi && hi <= self.num_windows, "bad range {lo}..{hi}");
        if let Some(t) = self.tables.get() {
            return self.serve_from_prefix(t, lo, hi, axes, out);
        }
        // No tables yet: the whole execution always projects the raw refs
        // directly (one pass, never worse than a prefix build). A single
        // window does too — until more singles have been served than one
        // full window sweep issues, the signature of a re-scanning caller.
        // A strict multi-window sub-range builds the tables at once.
        let single = hi - lo == 1;
        if single && self.num_windows > 1 {
            let prior = self.raw_singles.fetch_add(1, Ordering::Relaxed);
            if prior >= self.num_windows as u32 + SINGLE_WINDOW_SWEEP_SLACK {
                let t = self.tables();
                return self.serve_from_prefix(t, lo, hi, axes, out);
            }
        }
        if single || (lo == 0 && hi == self.num_windows) {
            if let Some(stats) = &self.stats {
                stats.raw_serves.fetch_add(1, Ordering::Relaxed);
            }
            self.fill_weights_raw(lo, hi, axes);
            axes.sweep_into(&self.grid, out);
        } else {
            let t = self.tables();
            self.serve_from_prefix(t, lo, hi, axes, out);
        }
    }

    /// Project the raw references of `lo..hi` onto the axis weights.
    fn fill_weights_raw(&self, lo: usize, hi: usize, axes: &mut AxisScratch) {
        axes.reset_weights(&self.grid);
        match (&self.src, self.src.flat()) {
            (RefSource::Windowed(rs), _) => {
                for w in lo..hi {
                    for r in rs.window(w).iter() {
                        let p = self.grid.point_of(r.proc);
                        axes.wx[p.x as usize] += r.count as u64;
                        axes.wy[p.y as usize] += r.count as u64;
                    }
                }
            }
            (_, Some(refs)) => {
                for r in Self::flat_range(refs, lo, hi) {
                    axes.wx[r.x as usize] += r.count as u64;
                    axes.wy[r.y as usize] += r.count as u64;
                }
            }
            (_, None) => unreachable!("every non-windowed source is flat"),
        }
    }

    /// Fill the axis weights of `lo..hi` by prefix subtraction.
    fn fill_weights_prefix(&self, t: &PrefixTables, lo: usize, hi: usize, axes: &mut AxisScratch) {
        let w = self.grid.width() as usize;
        let h = self.grid.height() as usize;
        axes.reset_weights(&self.grid);
        for x in 0..w {
            axes.wx[x] = t.px[hi * w + x] - t.px[lo * w + x];
        }
        for y in 0..h {
            axes.wy[y] = t.py[hi * h + y] - t.py[lo * h + y];
        }
    }

    fn serve_from_prefix(
        &self,
        t: &PrefixTables,
        lo: usize,
        hi: usize,
        axes: &mut AxisScratch,
        out: &mut Vec<u64>,
    ) {
        if let Some(stats) = &self.stats {
            stats.prefix_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.fill_weights_prefix(t, lo, hi, axes);
        axes.sweep_into(&self.grid, out);
    }

    /// Cost table of a single window (`range_table(w, w+1)`).
    pub fn window_table(&self, w: usize, axes: &mut AxisScratch, out: &mut Vec<u64>) {
        self.range_table(w, w + 1, axes, out);
    }

    /// Cost table of the whole execution merged — what SCDS schedules on.
    pub fn full_table(&self, axes: &mut AxisScratch, out: &mut Vec<u64>) {
        self.range_table(0, self.num_windows, axes, out);
    }

    /// The cost-table argmin (lowest-id tie-break) of the merged range
    /// `lo..hi` **without building the table**: the per-axis weighted
    /// medians, in `O(width + height + refs in range)` — or
    /// `O(width + height)` once prefix tables exist. Never triggers a
    /// prefix build and does not advance the single-window build counter;
    /// equal to `argmin_table(range_table(lo, hi)).0` by the median
    /// decomposition (pinned in `tests/cache_equivalence.rs`).
    pub fn range_median(&self, lo: usize, hi: usize, axes: &mut AxisScratch) -> ProcId {
        assert!(lo <= hi && hi <= self.num_windows, "bad range {lo}..{hi}");
        match self.tables.get() {
            Some(t) => self.fill_weights_prefix(t, lo, hi, axes),
            None => self.fill_weights_raw(lo, hi, axes),
        }
        let w = self.grid.width() as usize;
        let h = self.grid.height() as usize;
        let mx = crate::median::dense_weighted_median(&axes.wx[..w]);
        let my = crate::median::dense_weighted_median(&axes.wy[..h]);
        self.grid.proc_xy(mx, my)
    }

    /// Local optimal center (lowest-id argmin) and its cost for the merged
    /// range `lo..hi`.
    pub fn optimal_center_range(
        &self,
        lo: usize,
        hi: usize,
        axes: &mut AxisScratch,
        table: &mut Vec<u64>,
    ) -> (ProcId, u64) {
        self.range_table(lo, hi, axes, table);
        argmin_table(table)
    }
}

/// Per-trace cache: one [`DatumCostCache`] per datum. Build once, share
/// across every scheduling method run on the trace (`compare_methods` does
/// exactly this). Construction is `O(num_data)`; each datum's prefix
/// tables appear lazily when a scheduler first issues a query needing
/// them.
#[derive(Debug, Clone)]
pub struct CostCache<'t> {
    data: Vec<DatumCostCache<'t>>,
}

impl<'t> CostCache<'t> {
    /// Wrap every datum of the trace (no per-datum work yet).
    pub fn build(trace: &'t WindowedTrace) -> Self {
        let grid = trace.grid();
        CostCache {
            data: trace
                .iter_data()
                .map(|(_, rs)| DatumCostCache::build(&grid, rs))
                .collect(),
        }
    }

    /// Wrap every datum of a flat trace. Serves bit-identical tables to
    /// [`CostCache::build`] on the equivalent nested trace
    /// (property-tested in `tests/cache_equivalence.rs`), while datum
    /// spans stay contiguous slices of one shared `refs` array.
    pub fn build_flat<V: pim_trace::flat::FlatView + ?Sized>(flat: &'t V) -> Self {
        let grid = flat.grid();
        let nw = flat.num_windows();
        CostCache {
            data: (0..flat.num_data())
                .map(|d| DatumCostCache::build_flat(&grid, flat.span(DataId(d as u32)), nw))
                .collect(),
        }
    }

    /// Wrap every datum of a shared flat trace. Borrow-free (usable as
    /// `CostCache<'static>`): each datum co-owns the trace through the
    /// `Arc`, so the caller can keep an editable overlay beside the cache
    /// and [rebind](DatumCostCache::rebind_span) edited data one by one.
    pub fn build_shared(trace: &Arc<FlatTrace>) -> Self {
        let grid = trace.grid();
        CostCache {
            data: (0..trace.num_data())
                .map(|d| {
                    DatumCostCache::build_shared_trace(&grid, Arc::clone(trace), DataId(d as u32))
                })
                .collect(),
        }
    }

    /// The cache of one datum.
    pub fn datum(&self, d: DataId) -> &DatumCostCache<'t> {
        &self.data[d.index()]
    }

    /// Mutable access to one datum's cache, for per-datum invalidation
    /// and append extension by the incremental engine.
    pub fn datum_mut(&mut self, d: DataId) -> &mut DatumCostCache<'t> {
        &mut self.data[d.index()]
    }

    /// Install shared cache counters into every datum's cache (from an
    /// enabled metrics sink).
    pub fn set_stats(&mut self, stats: &Arc<CacheStats>) {
        for d in &mut self.data {
            d.set_stats(Arc::clone(stats));
        }
    }

    /// Number of cached data items.
    pub fn num_data(&self) -> usize {
        self.data.len()
    }

    /// Build every datum's prefix tables now, fanned out over `pool`.
    /// Scheduling never *requires* this — lazy builds land on whichever
    /// worker first queries a datum — but warming keeps the build cost out
    /// of a measured or latency-sensitive region.
    pub fn warm(&self, pool: pim_par::Pool) {
        let ids: Vec<usize> = (0..self.data.len()).collect();
        pim_par::parallel_map_with(pool, &ids, || (), |_, _, &i| self.data[i].ensure_tables());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_table, optimal_center};
    use pim_trace::window::WindowRefs;

    fn sample_rs(grid: &Grid) -> DataRefString {
        DataRefString::new(vec![
            WindowRefs::from_pairs([(grid.proc_xy(0, 0), 3), (grid.proc_xy(3, 2), 1)]),
            WindowRefs::new(),
            WindowRefs::from_pairs([(grid.proc_xy(2, 1), 5)]),
            WindowRefs::from_pairs([(grid.proc_xy(1, 2), 2), (grid.proc_xy(2, 1), 1)]),
        ])
    }

    #[test]
    fn range_tables_match_merged_cost_tables() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        let mut axes = AxisScratch::default();
        let (mut cached, mut direct) = (Vec::new(), Vec::new());
        for lo in 0..rs.num_windows() {
            for hi in lo + 1..=rs.num_windows() {
                cache.range_table(lo, hi, &mut axes, &mut cached);
                cost_table(&grid, &rs.merged_range(lo, hi), &mut direct);
                assert_eq!(cached, direct, "range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn lazy_raw_and_prefix_paths_agree() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        // `fresh` serves raw (no multi-window sub-range query yet);
        // `warmed` serves the same queries from prefix subtraction.
        let fresh = DatumCostCache::build(&grid, &rs);
        let warmed = DatumCostCache::build(&grid, &rs);
        warmed.ensure_tables();
        let mut axes = AxisScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for w in 0..rs.num_windows() {
            fresh.window_table(w, &mut axes, &mut a);
            warmed.window_table(w, &mut axes, &mut b);
            assert_eq!(a, b, "window {w}");
        }
        fresh.full_table(&mut axes, &mut a);
        warmed.full_table(&mut axes, &mut b);
        assert_eq!(a, b, "full table");
        assert_eq!(fresh.range_volume(0, 4), warmed.range_volume(0, 4));
        assert_eq!(fresh.range_volume(2, 3), warmed.range_volume(2, 3));
    }

    #[test]
    fn multi_window_subrange_triggers_one_build() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        assert!(cache.tables.get().is_none(), "starts lazy");
        let mut axes = AxisScratch::default();
        let mut out = Vec::new();
        cache.window_table(1, &mut axes, &mut out);
        cache.full_table(&mut axes, &mut out);
        assert!(
            cache.tables.get().is_none(),
            "single-window and full queries stay raw"
        );
        cache.range_table(1, 3, &mut axes, &mut out);
        assert!(cache.tables.get().is_some(), "sub-range builds tables");
    }

    #[test]
    fn single_window_rescan_triggers_build_after_full_sweep() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid); // 4 windows
        let cache = DatumCostCache::build(&grid, &rs);
        let mut axes = AxisScratch::default();
        let mut out = Vec::new();
        // One full sweep plus the slack probe stays raw...
        for q in 0..rs.num_windows() + SINGLE_WINDOW_SWEEP_SLACK as usize {
            cache.window_table(q % rs.num_windows(), &mut axes, &mut out);
            assert!(cache.tables.get().is_none(), "query {q} must serve raw");
        }
        // ...and the next single-window query builds the tables.
        cache.window_table(0, &mut axes, &mut out);
        assert!(cache.tables.get().is_some(), "re-scan builds tables");
    }

    #[test]
    fn empty_and_volume_queries() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        assert!(cache.range_is_empty(1, 2));
        assert!(!cache.range_is_empty(0, 2));
        assert_eq!(cache.range_volume(0, 4), rs.total_volume());
        assert_eq!(cache.range_volume(2, 3), 5);
        assert_eq!(cache.num_windows(), 4);
    }

    #[test]
    fn optimal_center_range_matches_uncached() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let cache = DatumCostCache::build(&grid, &rs);
        let mut axes = AxisScratch::default();
        let mut table = Vec::new();
        for (lo, hi) in [(0, 1), (0, 4), (2, 4), (3, 4)] {
            let cached = cache.optimal_center_range(lo, hi, &mut axes, &mut table);
            let direct = optimal_center(&grid, &rs.merged_range(lo, hi));
            assert_eq!(cached, direct, "range {lo}..{hi}");
        }
    }

    #[test]
    fn counters_track_every_serve_path() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid);
        let mut cache = DatumCostCache::build(&grid, &rs);
        let stats = Arc::new(CacheStats::default());
        cache.set_stats(Arc::clone(&stats));
        let mut axes = AxisScratch::default();
        let mut out = Vec::new();
        cache.window_table(0, &mut axes, &mut out); // raw
        cache.full_table(&mut axes, &mut out); // raw
        cache.range_table(1, 3, &mut axes, &mut out); // build + prefix hit
        cache.window_table(0, &mut axes, &mut out); // tables exist → hit
        assert_eq!(stats.raw_serves.load(Ordering::Relaxed), 2);
        assert_eq!(stats.prefix_builds.load(Ordering::Relaxed), 1);
        assert_eq!(stats.prefix_hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn shared_sources_rebind_and_extend() {
        use pim_trace::flat::FlatRecord;
        let grid = Grid::new(4, 3);
        let rec = |d: u32, w: u32, p: u32, c: u32| FlatRecord {
            datum: DataId(d),
            window: w,
            proc: ProcId(p),
            count: c,
        };
        let flat = Arc::new(
            FlatTrace::from_records(
                grid,
                2,
                1,
                vec![rec(0, 0, 0, 3), rec(0, 1, 6, 5), rec(0, 1, 10, 2)],
            )
            .unwrap(),
        );
        let mut cache = DatumCostCache::build_shared_trace(&grid, Arc::clone(&flat), DataId(0));
        let stats = Arc::new(CacheStats::default());
        cache.set_stats(Arc::clone(&stats));
        cache.ensure_tables();
        assert_eq!(cache.range_volume(0, 2), 10);

        // Append-extension: new window's refs extend the built tables in
        // place, matching a from-scratch build on the extended span.
        let mut extended: Vec<FlatRef> = flat.span(DataId(0)).to_vec();
        extended.push(FlatRef {
            window: 2,
            x: 1,
            y: 1,
            count: 7,
        });
        cache.extend_span(Arc::from(extended.clone()), 3);
        assert_eq!(stats.prefix_extends.load(Ordering::Relaxed), 1);
        assert_eq!(stats.invalidations.load(Ordering::Relaxed), 0);
        let oracle = DatumCostCache::build_shared_span(&grid, Arc::from(extended), 3);
        oracle.ensure_tables();
        let mut axes = AxisScratch::default();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for lo in 0..3 {
            for hi in lo + 1..=3 {
                cache.range_table(lo, hi, &mut axes, &mut a);
                oracle.range_table(lo, hi, &mut axes, &mut b);
                assert_eq!(a, b, "range {lo}..{hi}");
                assert_eq!(cache.range_volume(lo, hi), oracle.range_volume(lo, hi));
            }
        }

        // Rewrite: rebinding invalidates, then rebuilds lazily.
        let rewritten: Arc<[FlatRef]> = Arc::from(vec![FlatRef {
            window: 0,
            x: 2,
            y: 2,
            count: 1,
        }]);
        cache.rebind_span(Arc::clone(&rewritten), 3);
        assert_eq!(stats.invalidations.load(Ordering::Relaxed), 1);
        assert!(cache.tables.get().is_none(), "rebind drops tables");
        assert_eq!(cache.range_volume(0, 3), 1);
    }

    #[test]
    fn extend_windows_copies_rows_forward() {
        let grid = Grid::new(4, 3);
        let rs = sample_rs(&grid); // 4 windows
        let span: Vec<FlatRef> = (0..rs.num_windows())
            .flat_map(|w| {
                rs.window(w).iter().map(move |r| {
                    let p = grid.point_of(r.proc);
                    FlatRef {
                        window: w as u32,
                        x: p.x,
                        y: p.y,
                        count: r.count,
                    }
                })
            })
            .collect();
        let mut cache = DatumCostCache::build_shared_span(&grid, Arc::from(span), 4);
        cache.ensure_tables();
        cache.extend_windows(6);
        assert_eq!(cache.num_windows(), 6);
        assert_eq!(cache.range_volume(4, 6), 0);
        assert_eq!(cache.range_volume(0, 6), rs.total_volume());
        let mut axes = AxisScratch::default();
        let (mut full, mut old) = (Vec::new(), Vec::new());
        cache.range_table(0, 6, &mut axes, &mut full);
        cache.range_table(0, 4, &mut axes, &mut old);
        assert_eq!(full, old, "empty appended windows add no cost");
    }

    #[test]
    fn trace_cache_indexes_by_datum() {
        let grid = Grid::new(4, 3);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![
                vec![WindowRefs::from_pairs([(grid.proc_xy(0, 0), 1)])],
                vec![WindowRefs::from_pairs([(grid.proc_xy(3, 2), 7)])],
            ],
        );
        let cache = CostCache::build(&trace);
        assert_eq!(cache.num_data(), 2);
        assert_eq!(cache.datum(DataId(1)).range_volume(0, 1), 7);
    }

    #[test]
    fn warm_builds_every_datum() {
        let grid = Grid::new(4, 3);
        let trace = WindowedTrace::from_parts(
            grid,
            vec![vec![WindowRefs::from_pairs([(grid.proc_xy(1, 1), 2)]); 3]; 4],
        );
        let cache = CostCache::build(&trace);
        cache.warm(pim_par::Pool::with_threads(2));
        for d in 0..4 {
            assert!(cache.datum(DataId(d)).tables.get().is_some());
        }
    }
}
